//! Quickstart: characterize the core, run the median benchmark under the
//! statistical fault-injection model C near the STA limit, and print the
//! paper's four metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use sfi_core::experiment::{run_experiment, FaultModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn main() {
    // Build a scaled-down case study so the example runs in seconds; use
    // `CaseStudyConfig::paper()` for the full 32-bit core.
    println!("characterizing the execution-stage datapath ...");
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 128,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let sta = study.sta_limit_mhz(0.7);
    println!("static timing limit @ 0.7 V: {sta:.1} MHz");

    let bench = MedianBenchmark::new(129, 42);
    for overscale in [0.95, 1.05, 1.15, 1.3] {
        let point = OperatingPoint::new(sta * overscale, 0.7).with_noise_sigma_mv(10.0);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 10, 7);
        println!(
            "f = {:7.1} MHz ({:+5.1}% vs STA): finished {:5.1}%  correct {:5.1}%  FI rate {:7.2}/kCycle  rel. error {:5.1}%",
            point.freq_mhz(),
            100.0 * (overscale - 1.0),
            100.0 * summary.finished_fraction(),
            100.0 * summary.correct_fraction(),
            summary.mean_fi_rate(),
            100.0 * summary.mean_output_error().max(0.0)
        );
    }
}
