//! Writing your own kernel: build a small dot-product program with the
//! label-based program builder, run it on the ISS, and study how timing
//! errors affect it under frequency over-scaling.
//!
//! Run with `cargo run --release --example custom_kernel`.

use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::{Core, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Reg};

fn main() {
    // A 32-element dot product: out = sum(a[i] * b[i]).
    let n = 32usize;
    let a_vals: Vec<u32> = (0..n as u32).map(|i| 3 * i + 1).collect();
    let b_vals: Vec<u32> = (0..n as u32).map(|i| 7 * i + 2).collect();
    let golden: u32 = a_vals
        .iter()
        .zip(&b_vals)
        .map(|(&x, &y)| x.wrapping_mul(y))
        .sum();

    let mut p = ProgramBuilder::new();
    let (a_base, b_base, count, i, acc) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    let (ptr, va, vb, prod) = (Reg(6), Reg(7), Reg(8), Reg(9));
    p.push(Instruction::Addi {
        rd: a_base,
        ra: Reg(0),
        imm: 0,
    });
    p.push(Instruction::Addi {
        rd: b_base,
        ra: Reg(0),
        imm: (4 * n) as i16,
    });
    p.push(Instruction::Addi {
        rd: count,
        ra: Reg(0),
        imm: n as i16,
    });
    p.push(Instruction::Addi {
        rd: i,
        ra: Reg(0),
        imm: 0,
    });
    p.push(Instruction::Addi {
        rd: acc,
        ra: Reg(0),
        imm: 0,
    });
    let head = p.label();
    p.push(Instruction::Slli {
        rd: ptr,
        ra: i,
        shamt: 2,
    });
    p.push(Instruction::Add {
        rd: ptr,
        ra: ptr,
        rb: a_base,
    });
    p.push(Instruction::Lwz {
        rd: va,
        ra: ptr,
        offset: 0,
    });
    p.push(Instruction::Slli {
        rd: ptr,
        ra: i,
        shamt: 2,
    });
    p.push(Instruction::Add {
        rd: ptr,
        ra: ptr,
        rb: b_base,
    });
    p.push(Instruction::Lwz {
        rd: vb,
        ra: ptr,
        offset: 0,
    });
    p.push(Instruction::Mul {
        rd: prod,
        ra: va,
        rb: vb,
    });
    p.push(Instruction::Add {
        rd: acc,
        ra: acc,
        rb: prod,
    });
    p.push(Instruction::Addi {
        rd: i,
        ra: i,
        imm: 1,
    });
    p.push(Instruction::Sfltu { ra: i, rb: count });
    p.branch_if_flag(head);
    p.push(Instruction::Sw {
        ra: Reg(0),
        rb: acc,
        offset: (8 * n) as i16,
    });
    let program = p.build();
    println!(
        "dot-product kernel: {} instructions\n{}",
        program.len(),
        program.listing()
    );

    // Fault-free run.
    let mut core = Core::new(program.clone(), 3 * n + 8);
    core.memory_mut().write_block(0, &a_vals).expect("dmem");
    core.memory_mut()
        .write_block((4 * n) as u32, &b_vals)
        .expect("dmem");
    let outcome = core.run(&RunConfig::default());
    let result = core
        .memory()
        .load_word((8 * n) as u32)
        .expect("output word");
    println!("fault-free: {outcome:?}, result = {result} (golden {golden})");
    assert_eq!(result, golden);

    // Over-scaled runs with the statistical model C.
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 96,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let sta = study.sta_limit_mhz(0.7);
    for overscale in [1.0, 1.1, 1.25] {
        let point = OperatingPoint::new(sta * overscale, 0.7).with_noise_sigma_mv(10.0);
        let mut injector = study.model_c(point, 99);
        let mut core = Core::new(program.clone(), 3 * n + 8);
        core.memory_mut().write_block(0, &a_vals).expect("dmem");
        core.memory_mut()
            .write_block((4 * n) as u32, &b_vals)
            .expect("dmem");
        let outcome = core.run_with_injector(&RunConfig::default(), &mut injector);
        let result = core.memory().load_word((8 * n) as u32).unwrap_or(0);
        println!(
            "f = {:6.1} MHz: finished = {}, faults = {:3}, result = {result} (golden {golden})",
            point.freq_mhz(),
            outcome.finished(),
            core.stats().injected_faults
        );
    }
}
