//! Point-of-first-failure sweep: locate, for every benchmark of the paper's
//! suite, the frequency at which it first stops producing fully correct
//! results, and report the gain over the static timing limit.
//!
//! Run with `cargo run --release --example poff_sweep`.

use sfi_core::experiment::{
    frequency_grid, frequency_sweep, overscaling_gain, point_of_first_failure, FaultModel,
};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::paper_suite;

fn main() {
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 128,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz  (noise sigma = 10 mV, model C)\n");
    println!("{:<16} {:>12} {:>14}", "benchmark", "PoFF [MHz]", "gain over STA");

    let point = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0);
    for bench in paper_suite(5) {
        let freqs = frequency_grid(sta * 0.95, sta * 1.4, 10);
        let sweep = frequency_sweep(
            &study,
            bench.as_ref(),
            FaultModel::StatisticalDta,
            point,
            &freqs,
            5,
            3,
        );
        match point_of_first_failure(&sweep) {
            Some(poff) => println!(
                "{:<16} {:>12.1} {:>+13.1}%",
                bench.name(),
                poff,
                100.0 * overscaling_gain(poff, sta)
            ),
            None => println!("{:<16} {:>12} {:>14}", bench.name(), "> sweep end", "-"),
        }
    }
}
