//! Point-of-first-failure sweep: locate, for every benchmark of the paper's
//! suite, the frequency at which it first stops producing fully correct
//! results, and report the gain over the static timing limit.
//!
//! Instead of burning a full Monte-Carlo cell on every point of a fixed
//! frequency grid, this uses the campaign engine's adaptive PoFF search:
//! bisection on the failure transition, which reaches the same resolution
//! with a fraction of the cells (printed in the last column).
//!
//! Run with `cargo run --release --example poff_sweep`.

use sfi_campaign::{adaptive_poff, CampaignEngine, PoffSearch};
use sfi_core::experiment::{overscaling_gain, FaultModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::paper_suite;

fn main() {
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 128,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let engine = CampaignEngine::new();
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz  (noise sigma = 10 mV, model C)");
    println!(
        "campaign engine: {} worker thread(s), bisection PoFF search\n",
        engine.threads()
    );
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "benchmark", "PoFF [MHz]", "gain over STA", "cells used", "grid equiv"
    );

    let point = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0);
    let search = PoffSearch::new(sta * 0.95, sta * 1.4, sta * 0.05, 5);
    for bench in paper_suite(5) {
        let name = bench.name();
        let outcome = adaptive_poff(
            &engine,
            &study,
            bench.into(),
            FaultModel::StatisticalDta,
            point,
            search,
            3,
        );
        match outcome.poff_mhz {
            Some(poff) => println!(
                "{:<16} {:>12.1} {:>+13.1}% {:>12} {:>12}",
                name,
                poff,
                100.0 * overscaling_gain(poff, sta),
                outcome.cells_evaluated,
                search.grid_equivalent_cells()
            ),
            None => println!(
                "{:<16} {:>12} {:>14} {:>12} {:>12}",
                name,
                "> search end",
                "-",
                outcome.cells_evaluated,
                search.grid_equivalent_cells()
            ),
        }
    }
}
