//! Workload zoo: run every kernel of the extended suite — the paper's four
//! benchmarks plus FFT, FIR, CRC32 and the bitonic sorting network —
//! fault-free for a property table, then push the four new kernels through
//! a statistical fault-injection campaign at an over-scaled clock.
//!
//! Run with `cargo run --release --example workload_zoo`.

use sfi_campaign::{CampaignEngine, CampaignSpec, CellSpec, TrialBudget};
use sfi_core::experiment::FaultModel;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::{Core, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::extended_suite;

fn main() {
    // Fault-free property table (Table 1 extended): one direct ISS run per
    // kernel, no characterization needed.
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}  output error metric",
        "benchmark", "compute", "control", "mul/kcyc", "kernel cyc"
    );
    for bench in extended_suite(1) {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let outcome = core.run(&RunConfig::default());
        assert!(outcome.finished(), "{}: {outcome:?}", bench.name());
        assert_eq!(
            bench.output_error(core.memory()),
            0.0,
            "{} must be exact fault-free",
            bench.name()
        );
        let stats = core.stats();
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>10.1} {:>12}  {}",
            bench.name(),
            100.0 * stats.compute_fraction(),
            100.0 * stats.control_fraction(),
            stats.multiplications as f64 * 1000.0 / stats.cycles as f64,
            stats.cycles,
            bench.error_metric()
        );
    }

    // A small model-C campaign over the four new kernels near the STA
    // limit.  Scaled-down case study so the example runs in seconds.
    println!();
    println!("characterizing the execution-stage datapath ...");
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 128,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let sta = study.sta_limit_mhz(0.7);
    println!("static timing limit @ 0.7 V: {sta:.1} MHz");

    let mut spec = CampaignSpec::new("workload_zoo", 7);
    let zoo: Vec<usize> = extended_suite(1)
        .into_iter()
        .filter(|b| ["fft", "fir", "crc32", "bitonic_sort"].contains(&b.name()))
        .map(|b| spec.add_shared_benchmark(b.into()))
        .collect();
    for &b in &zoo {
        for overscale in [1.02, 1.12] {
            spec.add_cell(CellSpec {
                benchmark: b,
                model: FaultModel::StatisticalDta,
                point: OperatingPoint::new(sta * overscale, 0.7).with_noise_sigma_mv(10.0),
                budget: TrialBudget::fixed(8),
            });
        }
    }
    let result = CampaignEngine::new().run(&study, &spec);
    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "f/STA", "finished", "correct", "mean error"
    );
    for (cell, spec_cell) in result.cells.iter().zip(spec.cells()) {
        let bench = &spec.benchmarks()[spec_cell.benchmark];
        println!(
            "{:<16} {:>9.2}x {:>9.1}% {:>9.1}% {:>12.4}",
            bench.name(),
            spec_cell.point.freq_mhz() / sta,
            100.0 * cell.stats.finished_fraction(),
            100.0 * cell.stats.correct_fraction(),
            cell.stats.mean_output_error().unwrap_or(f64::NAN),
        );
    }
}
