//! Serve-mode quickstart: start a daemon in-process, query it like a
//! remote client would, and shut it down.
//!
//! ```bash
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same flow works across processes with the `sfi-serve` and
//! `sfi-client` binaries; this example keeps everything in one process so
//! it is runnable anywhere.  The wire protocol the client speaks is
//! documented frame by frame in `docs/PROTOCOL.md`.

use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_serve::client::Client;
use sfi_serve::jobs::Priority;
use sfi_serve::protocol::PoffRequest;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};

fn main() {
    // 1. Start the daemon on an ephemeral loopback port with two
    //    scheduler slots, so two submitted jobs run concurrently, each on
    //    half of the worker-thread budget.  With a cache directory
    //    configured, a second start of the same configuration would skip
    //    the gate-level DTA rebuild entirely.
    let cache_dir = std::env::temp_dir().join("sfi-serve-quickstart-cache");
    let server = Server::start(ServeConfig {
        cache_dir: Some(cache_dir),
        max_concurrent_jobs: 2,
        max_queued_per_client: Some(8),
        result_cap_bytes: Some(1 << 20),
        ..ServeConfig::fast_for_tests()
    })
    .expect("daemon starts");
    println!("daemon listening on {}", server.local_addr());

    // 2. Connect and introspect.
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");
    println!(
        "protocol v{}; STA limit {:.1} MHz @ {} V; characterization {}",
        info.v,
        info.sta_limit_mhz,
        info.nominal_vdd,
        if info.characterization_cache_hit {
            "restored from cache"
        } else {
            "computed (cache now warm)"
        }
    );
    println!(
        "scheduler: {} slot(s) × {} thread(s), queued quota {:?}, result cap {:?} bytes",
        info.max_concurrent_jobs,
        info.threads_per_job,
        info.max_queued_per_client,
        info.result_cap_bytes
    );

    // 3. Submit a small campaign: the median kernel at three over-scaled
    //    frequencies under the statistical DTA model.
    let mut def = CampaignDef::new("quickstart", 7);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.1, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: info.sta_limit_mhz * overscale,
            vdd: info.nominal_vdd,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(10),
        });
    }
    let ticket = client.submit(&def).expect("accepted");
    println!(
        "job {} submitted ({} cells, {} priority)",
        ticket.job,
        ticket.total_cells,
        ticket.priority.as_str()
    );

    // A second, high-priority submission under an explicit client id:
    // with a free slot it starts immediately; were the daemon saturated
    // with low-priority work, it would preempt instead of waiting.
    let mut urgent = CampaignDef::new("urgent", 11);
    let crc = urgent.add_benchmark(BenchmarkDef::Crc32 { words: 32, seed: 3 });
    urgent.cells.push(CellDef {
        benchmark: crc,
        model: FaultModel::StatisticalDta,
        freq_mhz: info.sta_limit_mhz * 1.05,
        vdd: info.nominal_vdd,
        noise_sigma_mv: 10.0,
        budget: BudgetDef::fixed(5),
    });
    let urgent_ticket = client
        .submit_with(&urgent, Priority::High, Some("quickstart"))
        .expect("accepted");
    let urgent_status = client.wait(urgent_ticket.job).expect("terminal");
    println!(
        "high-priority job {} finished: {} ({} trials, {} preemption(s))",
        urgent_status.job,
        urgent_status.state.as_str(),
        urgent_status.executed_trials,
        urgent_status.preemptions
    );

    // 4. Stream the first job's per-cell results as the engine finishes
    //    them.
    let state = client
        .stream(ticket.job, |cell| {
            let index = cell.get("cell").and_then(Json::as_u64).unwrap_or(0);
            let trials = cell
                .get("trials")
                .and_then(Json::as_arr)
                .map(<[Json]>::len)
                .unwrap_or(0);
            let correct = cell
                .get("trials")
                .and_then(Json::as_arr)
                .map(|trials| {
                    trials
                        .iter()
                        .filter(|t| {
                            t.as_arr().and_then(|f| f.get(1)).and_then(Json::as_bool) == Some(true)
                        })
                        .count()
                })
                .unwrap_or(0);
            println!("  cell {index}: {correct}/{trials} correct");
        })
        .expect("streams");
    println!("job finished: {state}");

    // 5. One-shot PoFF bisection query — "at what frequency does the
    //    median kernel start failing?"
    let reply = client
        .poff(&PoffRequest {
            benchmark: BenchmarkDef::Median {
                values: 21,
                seed: 3,
            },
            model: FaultModel::StatisticalDta,
            vdd: info.nominal_vdd,
            noise_sigma_mv: 10.0,
            lo_mhz: info.sta_limit_mhz * 0.9,
            hi_mhz: info.sta_limit_mhz * 1.4,
            resolution_mhz: info.sta_limit_mhz * 0.02,
            trials: 10,
            seed: 11,
        })
        .expect("poff");
    match reply.poff_mhz {
        Some(freq) => println!(
            "PoFF: {:.1} MHz ({} cells evaluated instead of a full grid)",
            freq, reply.cells_evaluated
        ),
        None => println!("no failure found in the searched range"),
    }

    // 6. Graceful shutdown: the daemon flushes its state and exits.
    client.shutdown().expect("bye");
    server.join();
    println!("daemon shut down cleanly");
}
