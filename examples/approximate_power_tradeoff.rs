//! Approximate-computing trade-off: how much core power can be saved by
//! under-volting (at a fixed clock) if some output-quality degradation of
//! the median kernel is acceptable — the analysis of the paper's Fig. 7.
//!
//! Run with `cargo run --release --example approximate_power_tradeoff`.

use sfi_core::experiment::{run_experiment, FaultModel};
use sfi_core::power::{equivalent_voltage_for_gain, PowerModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn main() {
    let study = CaseStudy::build(CaseStudyConfig {
        alu_width: 16,
        cycles_per_op: 128,
        voltages: vec![0.7],
        ..CaseStudyConfig::paper()
    });
    let power = PowerModel::paper_28nm();
    let bench = MedianBenchmark::new(129, 9);
    let sta = study.sta_limit_mhz(0.7);

    println!("median kernel, model C, 10 mV supply noise, clock fixed at {sta:.0} MHz");
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "gain", "equiv. Vdd", "norm. power", "avg rel. error"
    );
    for i in 0..8 {
        let gain = 1.0 + 0.04 * i as f64;
        let point = OperatingPoint::new(sta * gain, 0.7).with_noise_sigma_mv(10.0);
        let summary = run_experiment(&study, &bench, FaultModel::StatisticalDta, point, 8, 21);
        let finished = summary.finished_fraction();
        let err = finished * summary.mean_output_error().max(0.0) + (1.0 - finished);
        let vdd = equivalent_voltage_for_gain(study.vdd_delay_curve(), 0.7, gain);
        println!(
            "{:>8.2} {:>11.3} V {:>14.3} {:>15.1}%",
            gain,
            vdd,
            power.normalized_power(vdd, sta),
            100.0 * err
        );
    }
}
