//! Facade crate of the statistical-fault-injection workspace.
//!
//! Re-exports every sub-crate under one roof so downstream users (and the
//! examples and integration tests in this package) can depend on a single
//! crate:
//!
//! * [`isa`] / [`cpu`] — the instruction set and the cycle-accurate ISS,
//! * [`asm`] / [`verify`] — the text-assembly front end and the static
//!   analyzer that gates submitted guest programs,
//! * [`netlist`] / [`timing`] — the gate-level datapath and its timing
//!   characterization,
//! * [`fault`] — the paper's fault-injection models A, B, B+ and C,
//! * [`kernels`] — the benchmark suite,
//! * [`core`] — the one-shot experiment flow (case study, experiments,
//!   sweeps, power model),
//! * [`campaign`] — the parallel, resumable Monte-Carlo campaign engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sfi_asm as asm;
pub use sfi_campaign as campaign;
pub use sfi_core as core;
pub use sfi_cpu as cpu;
pub use sfi_fault as fault;
pub use sfi_isa as isa;
pub use sfi_kernels as kernels;
pub use sfi_netlist as netlist;
pub use sfi_timing as timing;
pub use sfi_verify as verify;
