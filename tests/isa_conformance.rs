//! Markdown-driven ISA conformance suite.
//!
//! The tables under `docs/conformance/*.md` are the executable
//! specification of the instruction set: each row gives a fragment of
//! text assembly, its expected encoding, an optional architectural
//! pre-state and the expected post-state after running it on the
//! cycle-accurate core.  This harness parses every table, assembles the
//! `asm` column with `sfi_asm`, checks the encoding bit-for-bit in both
//! directions (`to_words` and `Program::from_words`), executes the
//! program and checks every `expect` assignment.
//!
//! The row format is documented in `docs/conformance/README.md`; the
//! completeness tests at the bottom guarantee that every mnemonic and
//! every `InstructionKind` of the ISA appears in at least one row, so a
//! new instruction cannot be added without also specifying it here.

use sfi_cpu::{Core, RunConfig, RunOutcome};
use sfi_isa::{InstructionKind, Program, Reg, MNEMONICS};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Data memory, in words, every conformance row runs with.
const DMEM_WORDS: usize = 16;
/// Watchdog budget: generous for straight-line rows, small enough that
/// the deliberate-infinite-loop rows finish quickly.
const MAX_CYCLES: u64 = 10_000;
/// Pipeline-refill penalty charged per taken branch or jump (the model
/// default, spelled out here because `cycles=` expectations depend on it).
const BRANCH_PENALTY: u64 = 2;

fn conformance_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/conformance")
}

/// One `key=value` assignment from a `setup` or `expect` cell.
#[derive(Debug, Clone)]
enum Assign {
    Reg(u8, u32),
    Flag(bool),
    Mem(u32, u32),
    Pc(u32),
    Cycles(u64),
    Outcome(String),
}

#[derive(Debug)]
struct Row {
    /// `file.md:line` of the table row, for failure messages.
    at: String,
    asm: String,
    words: Vec<u32>,
    setup: Vec<Assign>,
    expect: Vec<Assign>,
}

/// Parses a decimal, `0x` hexadecimal or negative-decimal integer into
/// its 32-bit two's-complement bit pattern.
fn parse_u32(text: &str) -> Result<u32, String> {
    let parse = |t: &str| -> Result<u64, String> {
        if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad hex '{text}'"))
        } else {
            t.parse().map_err(|_| format!("bad integer '{text}'"))
        }
    };
    if let Some(rest) = text.strip_prefix('-') {
        let magnitude = parse(rest)?;
        if magnitude > 1 << 31 {
            return Err(format!("'{text}' does not fit in 32 bits"));
        }
        Ok((magnitude as u32).wrapping_neg())
    } else {
        let value = parse(text)?;
        u32::try_from(value).map_err(|_| format!("'{text}' does not fit in 32 bits"))
    }
}

fn parse_assign(item: &str, is_expect: bool) -> Result<Assign, String> {
    let (key, value) = item
        .split_once('=')
        .ok_or_else(|| format!("'{item}' is not a key=value assignment"))?;
    if let Some(index) = key.strip_prefix("mem[").and_then(|k| k.strip_suffix(']')) {
        return Ok(Assign::Mem(parse_u32(index)?, parse_u32(value)?));
    }
    if let Some(n) = key.strip_prefix('r') {
        if let Ok(n) = n.parse::<u8>() {
            if n >= 32 {
                return Err(format!("register r{n} out of range"));
            }
            return Ok(Assign::Reg(n, parse_u32(value)?));
        }
    }
    match key {
        "flag" => match value {
            "0" => Ok(Assign::Flag(false)),
            "1" => Ok(Assign::Flag(true)),
            other => Err(format!("flag must be 0 or 1, got '{other}'")),
        },
        "pc" if is_expect => Ok(Assign::Pc(parse_u32(value)?)),
        "cycles" if is_expect => value
            .parse()
            .map(Assign::Cycles)
            .map_err(|_| format!("bad cycle count '{value}'")),
        "outcome" if is_expect => match value {
            "finished" | "watchdog" | "memory_fault" | "invalid_pc" => {
                Ok(Assign::Outcome(value.to_string()))
            }
            other => Err(format!("unknown outcome '{other}'")),
        },
        other => Err(format!("unknown key '{other}'")),
    }
}

/// Strips a backtick-quoted cell down to its content.
fn unquote(cell: &str) -> Result<&str, String> {
    let cell = cell.trim();
    cell.strip_prefix('`')
        .and_then(|c| c.strip_suffix('`'))
        .ok_or_else(|| format!("cell '{cell}' must be backtick-quoted"))
}

fn parse_state_cell(cell: &str, is_expect: bool) -> Result<Vec<Assign>, String> {
    let cell = cell.trim();
    if cell.is_empty() || cell == "—" || cell == "-" {
        return Ok(Vec::new());
    }
    unquote(cell)?
        .split_whitespace()
        .map(|item| parse_assign(item, is_expect))
        .collect()
}

/// Extracts the conformance rows of one markdown file.
fn parse_file(path: &Path) -> Vec<Row> {
    let name = path.file_name().unwrap().to_string_lossy().to_string();
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
    let mut rows = Vec::new();
    for (index, line) in source.lines().enumerate() {
        let at = format!("{name}:{}", index + 1);
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        // Header and separator rows of the table itself.
        if cells.first() == Some(&"asm")
            || cells.iter().all(|c| c.chars().all(|ch| "-: ".contains(ch)))
        {
            continue;
        }
        assert_eq!(
            cells.len(),
            4,
            "{at}: expected | asm | words | setup | expect |"
        );
        let asm = unquote(cells[0])
            .unwrap_or_else(|e| panic!("{at}: {e}"))
            .split(" / ")
            .collect::<Vec<_>>()
            .join("\n");
        let words = unquote(cells[1])
            .unwrap_or_else(|e| panic!("{at}: {e}"))
            .split_whitespace()
            .map(|w| parse_u32(w).unwrap_or_else(|e| panic!("{at}: {e}")))
            .collect();
        let setup = parse_state_cell(cells[2], false).unwrap_or_else(|e| panic!("{at}: {e}"));
        let expect = parse_state_cell(cells[3], true).unwrap_or_else(|e| panic!("{at}: {e}"));
        rows.push(Row {
            at,
            asm: format!("{asm}\n"),
            words,
            setup,
            expect,
        });
    }
    rows
}

/// Loads every table under `docs/conformance/`, requiring each file to
/// contribute at least one row.
fn all_rows() -> Vec<Row> {
    let dir = conformance_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "md"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 5,
        "expected the README plus at least four class tables in {}",
        dir.display()
    );
    let mut rows = Vec::new();
    for path in &paths {
        let file_rows = parse_file(path);
        assert!(
            !file_rows.is_empty(),
            "{} contains no conformance rows — table format drift?",
            path.display()
        );
        rows.extend(file_rows);
    }
    rows
}

/// Assembles and encodes one row, checking the `words` column in both
/// directions.  Returns the program.
fn check_encoding(row: &Row) -> Program {
    let assembly = sfi_asm::assemble(&row.asm).unwrap_or_else(|e| {
        panic!(
            "{}: does not assemble:\n{}",
            row.at,
            e.render("row", &row.asm)
        )
    });
    let words = assembly.program.to_words();
    assert_eq!(
        words,
        row.words,
        "{}: encoding mismatch for `{}` (expected the table's words column)",
        row.at,
        row.asm.trim()
    );
    let decoded = Program::from_words(&row.words)
        .unwrap_or_else(|e| panic!("{}: words column does not decode: {e}", row.at));
    assert_eq!(
        decoded, assembly.program,
        "{}: decode(words) disagrees with the assembled program",
        row.at
    );
    assembly.program
}

/// Runs one row's program and checks every `expect` assignment.
fn check_execution(row: &Row, program: &Program) {
    let mut core = Core::new(program.clone(), DMEM_WORDS);
    for assign in &row.setup {
        match *assign {
            Assign::Reg(n, value) => core.state_mut().set_reg(Reg(n), value),
            Assign::Flag(value) => core.state_mut().flag = value,
            Assign::Mem(index, value) => core
                .memory_mut()
                .store_word(4 * index, value)
                .unwrap_or_else(|e| panic!("{}: setup mem[{index}]: {e:?}", row.at)),
            _ => unreachable!("setup cells only parse registers, flag and memory"),
        }
    }
    let outcome = core.run(&RunConfig {
        max_cycles: MAX_CYCLES,
        fi_window: None,
        branch_penalty: BRANCH_PENALTY,
    });
    let mut outcome_checked = false;
    for assign in &row.expect {
        match assign {
            Assign::Reg(n, value) => assert_eq!(
                core.state().reg(Reg(*n)),
                *value,
                "{}: r{n} after `{}`",
                row.at,
                row.asm.trim()
            ),
            Assign::Flag(value) => assert_eq!(
                core.state().flag,
                *value,
                "{}: flag after `{}`",
                row.at,
                row.asm.trim()
            ),
            Assign::Mem(index, value) => {
                let got = core
                    .memory()
                    .load_word(4 * index)
                    .unwrap_or_else(|e| panic!("{}: expect mem[{index}]: {e:?}", row.at));
                assert_eq!(
                    got,
                    *value,
                    "{}: mem[{index}] after `{}`",
                    row.at,
                    row.asm.trim()
                );
            }
            Assign::Pc(value) => assert_eq!(
                core.state().pc,
                *value,
                "{}: final pc after `{}`",
                row.at,
                row.asm.trim()
            ),
            Assign::Cycles(value) => assert_eq!(
                outcome.cycles(),
                *value,
                "{}: cycle count after `{}`",
                row.at,
                row.asm.trim()
            ),
            Assign::Outcome(name) => {
                outcome_checked = true;
                let got = match outcome {
                    RunOutcome::Finished { .. } => "finished",
                    RunOutcome::Watchdog { .. } => "watchdog",
                    RunOutcome::MemoryFault { .. } => "memory_fault",
                    RunOutcome::InvalidPc { .. } => "invalid_pc",
                };
                assert_eq!(got, name, "{}: outcome of `{}`", row.at, row.asm.trim());
            }
        }
    }
    if !outcome_checked {
        assert!(
            outcome.finished(),
            "{}: `{}` must finish normally (add outcome=... to expect otherwise), got {outcome:?}",
            row.at,
            row.asm.trim()
        );
    }
}

#[test]
fn every_conformance_row_assembles_encodes_and_executes_as_specified() {
    let rows = all_rows();
    assert!(
        rows.len() >= 40,
        "suspiciously few conformance rows: {}",
        rows.len()
    );
    for row in &rows {
        let program = check_encoding(row);
        check_execution(row, &program);
    }
}

#[test]
fn every_mnemonic_appears_in_at_least_one_conformance_row() {
    let mut seen = BTreeSet::new();
    for row in &all_rows() {
        let program = check_encoding(row);
        for instruction in program.instructions() {
            seen.insert(instruction.mnemonic());
        }
    }
    let missing: Vec<&str> = MNEMONICS
        .iter()
        .copied()
        .filter(|m| !seen.contains(m))
        .collect();
    assert!(
        missing.is_empty(),
        "instructions with no conformance row: {missing:?}"
    );
}

#[test]
fn every_instruction_kind_appears_in_at_least_one_conformance_row() {
    let mut seen = BTreeSet::new();
    for row in &all_rows() {
        let program = check_encoding(row);
        for instruction in program.instructions() {
            seen.insert(format!("{:?}", instruction.kind()));
        }
    }
    for kind in [
        InstructionKind::Alu,
        InstructionKind::Load,
        InstructionKind::Store,
        InstructionKind::Branch,
        InstructionKind::Jump,
        InstructionKind::Nop,
    ] {
        assert!(
            seen.contains(&format!("{kind:?}")),
            "no conformance row covers InstructionKind::{kind:?}"
        );
    }
}
