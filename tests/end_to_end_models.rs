//! End-to-end comparison of the four fault models on the median benchmark,
//! reproducing the qualitative claims of the paper.

use sfi_core::experiment::{
    frequency_grid, frequency_sweep, point_of_first_failure, run_experiment, FaultModel,
};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn study() -> CaseStudy {
    CaseStudy::build(CaseStudyConfig::fast_for_tests())
}

#[test]
fn model_b_fails_hard_right_above_the_sta_limit() {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let sta = study.sta_limit_mhz(0.7);
    let just_above = OperatingPoint::new(sta * 1.01, 0.7);
    let summary = run_experiment(
        &study,
        &bench,
        FaultModel::StaPeriodViolation,
        just_above,
        2,
        1,
    );
    // Fig. 1(a): the FI rate jumps to a very high value immediately and the
    // program cannot produce a correct result any more.
    assert!(summary.mean_fi_rate() > 100.0);
    assert_eq!(summary.correct_fraction(), 0.0);
}

#[test]
fn model_c_has_a_graceful_transition_region_where_b_plus_has_none() {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let sta = study.sta_limit_mhz(0.7);
    let base = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0);
    let freqs = frequency_grid(sta * 1.0, sta * 1.3, 4);

    let sweep_c = frequency_sweep(
        &study,
        &bench,
        FaultModel::StatisticalDta,
        base,
        &freqs,
        4,
        3,
    );
    let sweep_bp = frequency_sweep(&study, &bench, FaultModel::StaWithNoise, base, &freqs, 4, 3);

    // Model C keeps producing fully correct executions at the STA limit in
    // a substantial fraction of the trials (supply noise only occasionally
    // hits the critical cycles) — a graceful transition region exists.
    let c_poff = point_of_first_failure(&sweep_c);
    assert!(
        c_poff.is_none_or(|p| p >= sta),
        "model C must not fail below the STA limit (PoFF {c_poff:?}, STA {sta})"
    );
    let c_at_limit = sweep_c[0].summary.correct_fraction();
    let bp_at_limit = sweep_bp[0].summary.correct_fraction();
    assert!(
        c_at_limit > 0.0,
        "model C keeps some fully correct runs at the STA limit"
    );
    // Model B+ collapses at (or essentially at) the STA limit: every cycle
    // with a supply droop violates the worst-case path of every ALU
    // instruction, so no run stays fully correct.
    assert!(bp_at_limit < 1.0);
    assert!(
        c_at_limit >= bp_at_limit,
        "model C is no more pessimistic than B+ at the limit"
    );
}

#[test]
fn model_a_injects_independent_of_frequency() {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let slow = OperatingPoint::new(100.0, 0.7);
    let fast = OperatingPoint::new(2000.0, 0.7);
    let summary_slow = run_experiment(
        &study,
        &bench,
        FaultModel::FixedProbability(1e-3),
        slow,
        3,
        9,
    );
    let summary_fast = run_experiment(
        &study,
        &bench,
        FaultModel::FixedProbability(1e-3),
        fast,
        3,
        9,
    );
    // The FI rate has no link to the operating conditions (the paper's core
    // criticism of model A).
    assert!(summary_slow.mean_fi_rate() > 0.0);
    assert!(
        (summary_slow.mean_fi_rate() - summary_fast.mean_fi_rate()).abs()
            < 0.5 * summary_slow.mean_fi_rate()
    );
}

#[test]
fn noise_moves_the_first_failures_below_the_sta_limit() {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let sta = study.sta_limit_mhz(0.7);
    let point_quiet = OperatingPoint::new(sta * 0.995, 0.7);
    let point_noisy = OperatingPoint::new(sta * 0.995, 0.7).with_noise_sigma_mv(25.0);
    let quiet = run_experiment(
        &study,
        &bench,
        FaultModel::StatisticalDta,
        point_quiet,
        3,
        11,
    );
    let noisy = run_experiment(
        &study,
        &bench,
        FaultModel::StatisticalDta,
        point_noisy,
        3,
        11,
    );
    assert_eq!(
        quiet.mean_fi_rate(),
        0.0,
        "no faults just below the STA limit without noise"
    );
    assert!(
        noisy.mean_fi_rate() > 0.0,
        "25 mV supply noise causes faults below the STA limit"
    );
}
