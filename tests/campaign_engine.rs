//! Integration tests of the parallel campaign engine: determinism across
//! thread counts, actual concurrency, adaptive early stopping, checkpoint
//! resume and the adaptive PoFF search.

use sfi_campaign::{
    adaptive_poff, CampaignEngine, CampaignSpec, CellSpec, PoffSearch, StopRule, TrialBudget,
};
use sfi_core::experiment::{run_experiment, FaultModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::Memory;
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;
use sfi_kernels::Benchmark;
use std::ops::Range;
use std::time::{Duration, Instant};

fn fast_study() -> CaseStudy {
    CaseStudy::build(CaseStudyConfig::fast_for_tests())
}

/// Bitwise trial equality: crashed runs carry `output_error = NaN`, which
/// derived `PartialEq` would treat as unequal even for identical trials.
fn trials_identical(a: &[sfi_core::TrialResult], b: &[sfi_core::TrialResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.finished == y.finished
                && x.correct == y.correct
                && x.output_error.to_bits() == y.output_error.to_bits()
                && x.fi_rate_per_kcycle.to_bits() == y.fi_rate_per_kcycle.to_bits()
                && x.cycles == y.cycles
        })
}

/// A campaign spanning the whole failure transition: correct, mixed and
/// broken cells, with both fixed and adaptive budgets.
fn transition_spec(study: &CaseStudy, trials: usize) -> CampaignSpec {
    let sta = study.sta_limit_mhz(0.7);
    let mut spec = CampaignSpec::new("transition", 42);
    let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
    for (i, overscale) in [0.95, 1.1, 1.25, 1.6].iter().enumerate() {
        let point = OperatingPoint::new(sta * overscale, 0.7).with_noise_sigma_mv(10.0);
        let budget = if i % 2 == 0 {
            TrialBudget::fixed(trials)
        } else {
            TrialBudget::adaptive(trials, trials * 4, trials, StopRule::correct_within(0.22))
        };
        spec.add_cell(CellSpec {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            point,
            budget,
        });
    }
    spec
}

#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    let study = fast_study();
    let spec = transition_spec(&study, 8);
    let sequential = CampaignEngine::sequential().run(&study, &spec);
    for threads in [2, 4, 8] {
        let parallel = CampaignEngine::new()
            .with_threads(threads)
            .run(&study, &spec);
        assert_eq!(parallel.cells.len(), sequential.cells.len());
        for (p, s) in parallel.cells.iter().zip(&sequential.cells) {
            assert!(
                trials_identical(&p.trials, &s.trials),
                "cell {} differs with {threads} threads",
                p.cell
            );
            assert_eq!(p.stats, s.stats);
            assert_eq!(p.stopped_early, s.stopped_early);
        }
    }
}

#[test]
fn single_cell_campaign_matches_run_experiment() {
    let study = fast_study();
    let sta = study.sta_limit_mhz(0.7);
    let point = OperatingPoint::new(sta * 1.2, 0.7).with_noise_sigma_mv(10.0);
    let mut spec = CampaignSpec::new("one-cell", 123);
    let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
    spec.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::StatisticalDta,
        point,
        budget: TrialBudget::fixed(6),
    });
    let campaign = CampaignEngine::new().with_threads(4).run(&study, &spec);
    let oneshot = run_experiment(
        &study,
        &MedianBenchmark::new(21, 3),
        FaultModel::StatisticalDta,
        point,
        6,
        123,
    );
    assert!(
        trials_identical(&campaign.summary(0).trials, &oneshot.trials),
        "campaign cell 0 must equal the one-shot API"
    );
}

/// A median benchmark whose initialization sleeps, making trial overlap
/// observable even on a single CPU.
struct SlowBenchmark(MedianBenchmark);

impl Benchmark for SlowBenchmark {
    fn name(&self) -> &'static str {
        "slow_median"
    }
    fn program(&self) -> &sfi_isa::Program {
        self.0.program()
    }
    fn fi_window(&self) -> Range<u32> {
        self.0.fi_window()
    }
    fn dmem_words(&self) -> usize {
        self.0.dmem_words()
    }
    fn initialize(&self, memory: &mut Memory) {
        std::thread::sleep(Duration::from_millis(5));
        self.0.initialize(memory);
    }
    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        self.0.try_output_error(memory)
    }
    fn error_metric(&self) -> &'static str {
        self.0.error_metric()
    }
}

#[test]
fn campaign_trials_run_concurrently() {
    let study = fast_study();
    let sta = study.sta_limit_mhz(0.7);
    let build_spec = || {
        let mut spec = CampaignSpec::new("concurrency", 7);
        let slow = spec.add_benchmark(SlowBenchmark(MedianBenchmark::new(21, 3)));
        // 4 cells × 8 trials, as the acceptance criterion demands.
        let points: Vec<OperatingPoint> = [0.9, 0.95, 1.0, 1.05]
            .iter()
            .map(|o| OperatingPoint::new(sta * o, 0.7))
            .collect();
        spec.add_grid(
            &[slow],
            &[FaultModel::StatisticalDta],
            &points,
            TrialBudget::fixed(8),
        );
        spec
    };

    let spec = build_spec();
    let start = Instant::now();
    let sequential = CampaignEngine::sequential().run(&study, &spec);
    let sequential_elapsed = start.elapsed();

    let start = Instant::now();
    let parallel = CampaignEngine::new().with_threads(8).run(&study, &spec);
    let parallel_elapsed = start.elapsed();

    assert_eq!(parallel.metrics.executed_trials, 32);
    assert!(
        parallel.metrics.worker_threads_used >= 2,
        "expected multiple workers to execute trials, got {:?}",
        parallel.metrics
    );
    assert!(
        parallel.metrics.max_concurrent_trials >= 2,
        "expected overlapping trials, got {:?}",
        parallel.metrics
    );
    assert_eq!(sequential.metrics.worker_threads_used, 1);
    // 32 trials sleep 5 ms each: the sequential run is bounded below by
    // 160 ms while 8 workers overlap the sleeps.
    assert!(
        parallel_elapsed < sequential_elapsed.mul_f64(0.75),
        "parallel {parallel_elapsed:?} not faster than sequential {sequential_elapsed:?}"
    );
    // Concurrency must not change results.
    for (p, s) in parallel.cells.iter().zip(&sequential.cells) {
        assert!(trials_identical(&p.trials, &s.trials));
    }
}

#[test]
fn adaptive_budget_stops_certain_cells_early() {
    let study = fast_study();
    let sta = study.sta_limit_mhz(0.7);
    let mut spec = CampaignSpec::new("adaptive", 5);
    let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
    let rule = StopRule::correct_within(0.25);
    // Far below the limit every trial is correct: the Wilson interval
    // collapses quickly and the cell stops at min_trials.
    spec.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::StatisticalDta,
        point: OperatingPoint::new(sta * 0.9, 0.7),
        budget: TrialBudget::adaptive(8, 64, 8, rule),
    });
    let result = CampaignEngine::new().with_threads(4).run(&study, &spec);
    let cell = &result.cells[0];
    assert!(cell.stopped_early, "an all-correct cell must stop early");
    assert_eq!(
        cell.trials.len(),
        8,
        "the first batch already satisfies the rule"
    );
    assert_eq!(cell.stats.correct_fraction(), 1.0);
    assert!(cell.stats.correct_interval(1.96).half_width <= 0.25);

    // Without a stop rule the same cell burns its whole budget.
    let mut fixed = CampaignSpec::new("fixed", 5);
    let median = fixed.add_benchmark(MedianBenchmark::new(21, 3));
    fixed.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::StatisticalDta,
        point: OperatingPoint::new(sta * 0.9, 0.7),
        budget: TrialBudget::fixed(16),
    });
    let result = CampaignEngine::new().with_threads(4).run(&study, &fixed);
    assert!(!result.cells[0].stopped_early);
    assert_eq!(result.cells[0].trials.len(), 16);
}

#[test]
fn checkpoint_resume_skips_completed_cells() {
    let study = fast_study();
    let spec = transition_spec(&study, 4);
    let path = std::env::temp_dir().join(format!(
        "sfi_campaign_ckpt_{}_{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);

    let engine = CampaignEngine::new().with_threads(4).with_checkpoint(&path);
    let first = engine.run(&study, &spec);
    assert!(path.exists(), "the campaign must leave a checkpoint behind");
    assert!(first.metrics.executed_trials > 0);
    assert!(first.cells.iter().all(|c| !c.from_checkpoint));

    // Resuming the identical spec restores every cell without simulating.
    let second = engine.run(&study, &spec);
    assert_eq!(
        second.metrics.executed_trials, 0,
        "everything comes from the checkpoint"
    );
    assert!(second.cells.iter().all(|c| c.from_checkpoint));
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert!(trials_identical(&a.trials, &b.trials));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stopped_early, b.stopped_early);
    }

    // A different spec (changed seed) ignores the stale checkpoint.
    let mut changed = transition_spec(&study, 4);
    changed.seed = 43;
    let third = CampaignEngine::new()
        .with_threads(2)
        .with_checkpoint(&path)
        .run(&study, &changed);
    assert!(
        third.metrics.executed_trials > 0,
        "fingerprint mismatch forces a fresh run"
    );
    assert!(third.cells.iter().all(|c| !c.from_checkpoint));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_export_is_valid_json() {
    let study = fast_study();
    let spec = transition_spec(&study, 2);
    let result = CampaignEngine::new().run(&study, &spec);
    let doc = result.to_json(&spec);
    let text = doc.to_string();
    let parsed = sfi_campaign::json::Json::parse(&text).expect("export parses back");
    // NaN output errors serialize as null, so compare re-serializations
    // rather than the value trees.
    assert_eq!(parsed.to_string(), text);
    assert_eq!(
        parsed
            .get("fingerprint")
            .and_then(sfi_campaign::json::Json::as_u64),
        Some(spec.fingerprint())
    );
    assert_eq!(
        parsed
            .get("cells")
            .and_then(sfi_campaign::json::Json::as_arr)
            .unwrap()
            .len(),
        4
    );
}

#[test]
fn result_and_checkpoint_json_are_byte_identical_across_runs_and_threads() {
    // The zero-clone trial pipeline (Arc-shared characterizations,
    // table-driven model C, per-worker core/injector recycling) must not
    // perturb campaign results: the same seed and spec produce
    // byte-identical result and checkpoint JSON regardless of worker
    // count or how workers interleave cells.
    let study = fast_study();
    let spec = transition_spec(&study, 4);
    let tmp = std::env::temp_dir();
    let id = format!("{}_{:?}", std::process::id(), std::thread::current().id());

    let mut documents = Vec::new();
    let mut checkpoints = Vec::new();
    for threads in [1usize, 3] {
        let ckpt = tmp.join(format!("sfi_bitident_ckpt_{id}_{threads}.json"));
        let out = tmp.join(format!("sfi_bitident_result_{id}_{threads}.json"));
        let _ = std::fs::remove_file(&ckpt);
        let result = CampaignEngine::new()
            .with_threads(threads)
            .with_checkpoint(&ckpt)
            .run(&study, &spec);
        result.write_json(&spec, &out).expect("result export");
        documents.push(std::fs::read(&out).expect("result file"));
        checkpoints.push(std::fs::read(&ckpt).expect("checkpoint file"));
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&out);
    }
    assert_eq!(
        documents[0], documents[1],
        "result JSON must be byte-identical across thread counts"
    );
    assert_eq!(
        checkpoints[0], checkpoints[1],
        "checkpoint JSON must be byte-identical across thread counts"
    );
    assert_eq!(
        documents[0], checkpoints[0],
        "a completed campaign's export equals its final checkpoint"
    );
}

#[test]
fn bisection_poff_matches_the_hard_threshold_with_fewer_cells() {
    let study = fast_study();
    let sta = study.sta_limit_mhz(0.7);
    // Model B is a deterministic threshold exactly at the STA limit, the
    // ideal ground truth for the bisection search.
    let search = PoffSearch::new(sta * 0.9, sta * 1.3, sta * 0.01, 2);
    let outcome = adaptive_poff(
        &CampaignEngine::new().with_threads(4),
        &study,
        std::sync::Arc::new(MedianBenchmark::new(21, 3)),
        FaultModel::StaPeriodViolation,
        OperatingPoint::new(sta, 0.7),
        search,
        9,
    );
    let poff = outcome
        .poff_mhz
        .expect("model B must fail above the STA limit");
    assert!(
        poff > sta && poff <= sta + sta * 0.011,
        "bisection PoFF {poff:.1} MHz should bracket the STA limit {sta:.1} MHz"
    );
    assert!(
        outcome.cells_evaluated < search.grid_equivalent_cells() / 3,
        "bisection used {} cells, grid would use {}",
        outcome.cells_evaluated,
        search.grid_equivalent_cells()
    );
    // The evaluated points bracket the threshold: everything below is
    // fully correct, everything above fails.
    for p in &outcome.evaluated {
        if p.freq_mhz <= sta {
            assert_eq!(
                p.summary.correct_fraction(),
                1.0,
                "at {:.1} MHz",
                p.freq_mhz
            );
        } else {
            assert!(
                p.summary.correct_fraction() < 1.0,
                "at {:.1} MHz",
                p.freq_mhz
            );
        }
    }

    // A benchmark that never fails inside the range reports None.
    let safe = PoffSearch::new(sta * 0.5, sta * 0.9, sta * 0.05, 2);
    let outcome = adaptive_poff(
        &CampaignEngine::new(),
        &study,
        std::sync::Arc::new(MedianBenchmark::new(21, 3)),
        FaultModel::StaPeriodViolation,
        OperatingPoint::new(sta, 0.7),
        safe,
        9,
    );
    assert_eq!(outcome.poff_mhz, None);
    assert_eq!(
        outcome.cells_evaluated, 2,
        "both endpoints and nothing else"
    );
}

#[test]
fn worker_panic_aborts_instead_of_hanging() {
    let study = fast_study(); // characterized at 0.7 V only
    let mut spec = CampaignSpec::new("poison", 1);
    let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
    spec.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::None,
        point: OperatingPoint::new(700.0, 0.7),
        budget: TrialBudget::fixed(8),
    });
    // Model B at an uncharacterized voltage panics inside the worker; the
    // campaign must propagate that instead of leaving the other worker
    // waiting forever for the poisoned cell.
    spec.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::StaPeriodViolation,
        point: OperatingPoint::new(700.0, 0.8),
        budget: TrialBudget::fixed(8),
    });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        CampaignEngine::new().with_threads(2).run(&study, &spec)
    }));
    let payload = outcome.expect_err("the campaign must re-raise the worker panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("no characterization"),
        "unexpected panic payload: {message:?}"
    );
}

#[test]
fn progress_hook_sees_every_cell_exactly_once() {
    use std::sync::{Arc, Mutex};

    let study = fast_study();
    let spec = transition_spec(&study, 4);
    let path = std::env::temp_dir().join(format!(
        "sfi_campaign_hook_{}_{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);

    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let engine = CampaignEngine::new()
        .with_threads(4)
        .with_checkpoint(&path)
        .with_progress(Arc::new(move |cell: &sfi_campaign::CellResult| {
            sink.lock().unwrap().push(cell.cell);
        }));
    let first = engine.run(&study, &spec);
    assert!(!first.cancelled);
    let mut order = std::mem::take(&mut *seen.lock().unwrap());
    order.sort_unstable();
    assert_eq!(order, vec![0, 1, 2, 3], "each simulated cell streams once");

    // On resume the restored cells are announced up front, again exactly
    // once each.
    let second = engine.run(&study, &spec);
    assert_eq!(second.metrics.executed_trials, 0);
    let mut order = std::mem::take(&mut *seen.lock().unwrap());
    order.sort_unstable();
    assert_eq!(order, vec![0, 1, 2, 3], "restored cells stream once");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn raised_cancel_flag_stops_the_campaign_early() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let study = fast_study();
    let sta = study.sta_limit_mhz(0.7);
    let mut spec = CampaignSpec::new("cancel", 11);
    let median = spec.add_benchmark(MedianBenchmark::new(21, 3));
    spec.add_cell(CellSpec {
        benchmark: median,
        model: FaultModel::StatisticalDta,
        point: OperatingPoint::new(sta * 1.1, 0.7),
        budget: TrialBudget::fixed(64),
    });

    // A flag raised before the run starts cancels everything.
    let flag = Arc::new(AtomicBool::new(true));
    let result = CampaignEngine::new()
        .with_threads(2)
        .with_cancel(flag.clone())
        .run(&study, &spec);
    assert!(result.cancelled);
    assert_eq!(result.metrics.executed_trials, 0);
    assert_eq!(result.cells.len(), 1, "cells stay index-aligned");
    assert!(result.cells[0].trials.is_empty());

    // An unraised flag changes nothing.
    flag.store(false, Ordering::SeqCst);
    let full = CampaignEngine::new()
        .with_threads(2)
        .with_cancel(flag)
        .run(&study, &spec);
    assert!(!full.cancelled);
    assert_eq!(full.cells[0].trials.len(), 64);
}

#[test]
fn zero_cell_campaign_completes() {
    let study = fast_study();
    let spec = CampaignSpec::new("empty", 0);
    let result = CampaignEngine::new().with_threads(4).run(&study, &spec);
    assert!(result.cells.is_empty());
    assert_eq!(result.metrics.executed_trials, 0);
}
