//! Cross-crate integration tests: netlist → timing → fault models → ISS →
//! kernels → experiment harness.

use sfi_core::experiment::{run_experiment, FaultModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::paper_suite;

fn fast_study() -> CaseStudy {
    CaseStudy::build(CaseStudyConfig::fast_for_tests())
}

#[test]
fn every_benchmark_runs_fault_free_through_the_harness() {
    let study = fast_study();
    let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 0.9, 0.7);
    for bench in paper_suite(7) {
        let summary = run_experiment(&study, bench.as_ref(), FaultModel::None, point, 2, 1);
        assert_eq!(summary.finished_fraction(), 1.0, "{}", bench.name());
        assert_eq!(summary.correct_fraction(), 1.0, "{}", bench.name());
        assert_eq!(summary.mean_fi_rate(), 0.0, "{}", bench.name());
    }
}

#[test]
fn model_c_is_error_free_below_the_sta_limit_for_all_benchmarks() {
    let study = fast_study();
    let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 0.97, 0.7);
    for bench in paper_suite(7) {
        let summary = run_experiment(
            &study,
            bench.as_ref(),
            FaultModel::StatisticalDta,
            point,
            2,
            3,
        );
        assert_eq!(summary.correct_fraction(), 1.0, "{}", bench.name());
    }
}

#[test]
fn overscaling_eventually_breaks_every_benchmark() {
    let study = fast_study();
    let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 2.5, 0.7).with_noise_sigma_mv(10.0);
    for bench in paper_suite(7) {
        let summary = run_experiment(
            &study,
            bench.as_ref(),
            FaultModel::StatisticalDta,
            point,
            3,
            5,
        );
        assert!(
            summary.correct_fraction() < 1.0,
            "{} should not survive 2.5x overscaling",
            bench.name()
        );
        assert!(summary.mean_fi_rate() > 0.0, "{}", bench.name());
    }
}

#[test]
fn benchmark_suite_matches_table1_characteristics() {
    // Compute-vs-control ordering of Table 1: matmul is the most compute
    // heavy, dijkstra the most control heavy.
    use sfi_cpu::{Core, RunConfig};
    let mut fractions = std::collections::BTreeMap::new();
    for bench in paper_suite(7) {
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        assert!(core.run(&RunConfig::default()).finished());
        fractions.insert(
            bench.name().to_string(),
            (
                core.stats().compute_fraction(),
                core.stats().control_fraction(),
            ),
        );
    }
    assert!(fractions["mat_mult_16bit"].0 > fractions["median"].0);
    assert!(fractions["dijkstra"].1 > fractions["mat_mult_16bit"].1);
}
