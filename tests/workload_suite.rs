//! Property tests over the benchmark suite — old and new kernels alike.
//!
//! Two invariants the campaign statistics lean on: every suite kernel is
//! *exact* under fault-free execution (`output_error == 0.0`, never just
//! small), and campaign results over the new workload-zoo kernels are
//! bit-identical across worker-thread counts.

use proptest::prelude::*;
use sfi_campaign::{CampaignEngine, CampaignSpec, CellSpec, TrialBudget};
use sfi_core::experiment::FaultModel;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::{Core, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::bitonic::BitonicSortBenchmark;
use sfi_kernels::crc32::Crc32Benchmark;
use sfi_kernels::fft::FftBenchmark;
use sfi_kernels::fir::FirBenchmark;
use sfi_kernels::{extended_suite, Benchmark};

fn assert_exact_fault_free(bench: &dyn Benchmark) {
    let mut core = Core::new(bench.program().clone(), bench.dmem_words());
    bench.initialize(core.memory_mut());
    let outcome = core.run(&RunConfig::default());
    assert!(outcome.finished(), "{}: {outcome:?}", bench.name());
    assert_eq!(
        bench.try_output_error(core.memory()),
        Some(0.0),
        "{} must be exact fault-free",
        bench.name()
    );
    assert!(bench.is_correct(core.memory()), "{}", bench.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn every_suite_kernel_is_exact_fault_free(seed in 0u64..1_000_000_000) {
        for bench in extended_suite(seed) {
            assert_exact_fault_free(bench.as_ref());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn zoo_kernels_are_exact_at_arbitrary_sizes_and_seeds(
        seed in any::<u64>(),
        fft_n in prop::sample::select(vec![4usize, 8, 16, 32]),
        taps in 1usize..12,
        outputs in 1usize..40,
        words in 1usize..48,
        sort_n in prop::sample::select(vec![4usize, 8, 16, 32, 64]),
    ) {
        assert_exact_fault_free(&FftBenchmark::new(fft_n, seed));
        assert_exact_fault_free(&FirBenchmark::new(taps, outputs, seed));
        assert_exact_fault_free(&Crc32Benchmark::new(words, seed));
        assert_exact_fault_free(&BitonicSortBenchmark::new(sort_n, seed));
    }
}

/// Bitwise trial equality: crashed runs carry `output_error = NaN`, which
/// derived `PartialEq` would treat as unequal even for identical trials.
fn trials_identical(a: &[sfi_core::TrialResult], b: &[sfi_core::TrialResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.finished == y.finished
                && x.correct == y.correct
                && x.output_error.to_bits() == y.output_error.to_bits()
                && x.fi_rate_per_kcycle.to_bits() == y.fi_rate_per_kcycle.to_bits()
                && x.cycles == y.cycles
        })
}

fn zoo_spec(sta: f64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("zoo-determinism", 11);
    let fft = spec.add_benchmark(FftBenchmark::new(16, 5));
    let fir = spec.add_benchmark(FirBenchmark::new(4, 16, 5));
    let crc = spec.add_benchmark(Crc32Benchmark::new(16, 5));
    let bitonic = spec.add_benchmark(BitonicSortBenchmark::new(16, 5));
    for benchmark in [fft, fir, crc, bitonic] {
        for overscale in [1.05, 1.25] {
            spec.add_cell(CellSpec {
                benchmark,
                model: FaultModel::StatisticalDta,
                point: OperatingPoint::new(sta * overscale, 0.7).with_noise_sigma_mv(10.0),
                budget: TrialBudget::fixed(5),
            });
        }
    }
    spec
}

#[test]
fn zoo_campaigns_are_bit_identical_across_worker_counts() {
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let sta = study.sta_limit_mhz(0.7);
    let one = CampaignEngine::new()
        .with_threads(1)
        .run(&study, &zoo_spec(sta));
    let two = CampaignEngine::new()
        .with_threads(2)
        .run(&study, &zoo_spec(sta));
    assert_eq!(one.fingerprint, two.fingerprint);
    assert_eq!(one.cells.len(), two.cells.len());
    for (a, b) in one.cells.iter().zip(&two.cells) {
        assert!(
            trials_identical(&a.trials, &b.trials),
            "cell {} differs between 1 and 2 worker threads",
            a.cell
        );
    }
    // The over-scaled zoo cells must actually exercise fault injection,
    // otherwise this determinism check proves nothing.
    let injected: f64 = one
        .cells
        .iter()
        .filter_map(|c| c.stats.mean_fi_rate())
        .sum();
    assert!(injected > 0.0, "the campaign injected no faults at all");
}
