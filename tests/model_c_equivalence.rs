//! Property test: the table-driven model C (flattened [`DtaFaultTable`]
//! with a max-delay fast path and hoisted nominal delay factor) produces
//! bit-identical fault masks to a naive per-endpoint reference that walks
//! the characterization CDFs exactly the way the pre-optimization
//! implementation did.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfi_cpu::{ExStageContext, FaultInjector};
use sfi_fault::{alu_op_for_class, OperatingPoint, StatisticalDtaModel};
use sfi_isa::AluClass;
use sfi_netlist::alu::AluDatapath;
use sfi_netlist::{DelayModel, VoltageScaling};
use sfi_timing::{characterize_alu, CharacterizationConfig, TimingCharacterization, VddDelayCurve};

/// The pre-optimization model C, kept verbatim as the reference: per
/// endpoint it queries the characterization CDF (binary search per
/// endpoint, period divided by the per-cycle noise factor computed from
/// scratch) and draws a Bernoulli sample whenever the probability is
/// non-zero.
struct NaiveModelC {
    characterization: TimingCharacterization,
    point: OperatingPoint,
    curve: VddDelayCurve,
    rng: SmallRng,
}

impl FaultInjector for NaiveModelC {
    fn inject(&mut self, ctx: &ExStageContext) -> u32 {
        let noise = self.point.noise().sample_volts(&mut self.rng);
        if !ctx.fi_enabled {
            return 0;
        }
        let delay_factor = self.curve.noise_scaling_factor(self.point.vdd(), noise);
        let op = alu_op_for_class(ctx.alu_class);
        let period_ps = self.point.period_ps();
        let mut mask = 0u32;
        for endpoint in 0..self.characterization.endpoint_count().min(32) {
            let p = self
                .characterization
                .error_probability(op, endpoint, period_ps, delay_factor);
            if p > 0.0 && self.rng.gen_bool(p) {
                mask |= 1 << endpoint;
            }
        }
        mask
    }
}

fn characterization() -> TimingCharacterization {
    let alu = AluDatapath::build(8);
    characterize_alu(
        &alu,
        &DelayModel::default_28nm(),
        &VoltageScaling::default_28nm(),
        &CharacterizationConfig {
            cycles_per_op: 48,
            ..Default::default()
        },
    )
}

fn curve() -> VddDelayCurve {
    VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5)
}

fn ctx(class: AluClass, cycle: u64, fi_enabled: bool) -> ExStageContext {
    ExStageContext {
        cycle,
        alu_class: class,
        operand_a: 0,
        operand_b: 0,
        result: 0,
        fi_enabled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn table_driven_model_c_matches_the_naive_reference(
        seed in any::<u64>(),
        // From deep below the STA limit (pure fast path) through the
        // transition region to far beyond it (every endpoint violating).
        freq_factor in prop::sample::select(vec![0.7, 0.95, 1.0, 1.05, 1.2, 1.6, 2.5]),
        noise_sigma_mv in prop::sample::select(vec![0.0, 5.0, 10.0, 25.0]),
    ) {
        let ch = characterization();
        let sta = ch.sta_limit_mhz();
        let point = OperatingPoint::new(sta * freq_factor, 0.7)
            .with_noise_sigma_mv(noise_sigma_mv);
        let mut optimized = StatisticalDtaModel::new(ch.clone(), point, curve(), seed);
        let mut naive = NaiveModelC {
            characterization: ch,
            point,
            curve: curve(),
            rng: SmallRng::seed_from_u64(seed),
        };
        // Interleave instruction classes and disabled-window cycles the way
        // a real kernel does; the RNG streams must stay aligned throughout.
        let mut class_rng = SmallRng::seed_from_u64(seed ^ 0xC1A55);
        for cycle in 0..400u64 {
            let class = AluClass::ALL[class_rng.gen_range(0..AluClass::ALL.len())];
            let fi_enabled = class_rng.gen_bool(0.8);
            let c = ctx(class, cycle, fi_enabled);
            prop_assert_eq!(
                optimized.inject(&c),
                naive.inject(&c),
                "cycle {} class {} fi {}",
                cycle,
                class,
                fi_enabled
            );
        }
    }
}
