//! Integration tests of the characterization pipeline: budgeting,
//! calibration, per-voltage CDFs and their consumption by the fault models.

use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_netlist::alu::AluOp;

fn study_with_two_voltages() -> CaseStudy {
    CaseStudy::build(CaseStudyConfig {
        voltages: vec![0.7, 0.8],
        ..CaseStudyConfig::fast_for_tests()
    })
}

#[test]
fn sta_limit_is_calibrated_and_scales_with_voltage() {
    let study = study_with_two_voltages();
    assert!((study.sta_limit_mhz(0.7) - 707.0).abs() < 1.0);
    // Paper: ~858 MHz at 0.8 V for the same netlist (alpha-power scaling).
    let limit_08 = study.sta_limit_mhz(0.8);
    assert!(
        limit_08 > 800.0 && limit_08 < 950.0,
        "0.8 V limit {limit_08}"
    );
}

#[test]
fn per_instruction_failure_ordering_matches_the_paper() {
    let study = study_with_two_voltages();
    let ch = study.characterization(0.7);
    let mul = ch.first_failure_frequency_mhz(AluOp::Mul);
    let add = ch.first_failure_frequency_mhz(AluOp::Add);
    let xor = ch.first_failure_frequency_mhz(AluOp::Xor);
    let sll = ch.first_failure_frequency_mhz(AluOp::Sll);
    assert!(mul < add, "mul ({mul}) must fail before add ({add})");
    assert!(add < sll, "add ({add}) must fail before shifts ({sll})");
    assert!(add < xor, "add ({add}) must fail before logic ({xor})");
    // The multiplier's first failures sit close to the STA limit (the
    // pessimism gap of STA vs DTA is small for the critical instruction).
    assert!(mul < 1.35 * study.sta_limit_mhz(0.7));
}

#[test]
fn higher_voltage_shifts_cdfs_to_higher_frequencies() {
    let study = study_with_two_voltages();
    let msb = study.endpoint_count() - 1;
    let ch07 = study.characterization(0.7);
    let ch08 = study.characterization(0.8);
    // At a frequency where the 0.7 V multiplier already fails often, the
    // 0.8 V one fails less often (Fig. 2's right shift).
    let f = ch07.first_failure_frequency_mhz(AluOp::Mul) * 1.2;
    let p07 = ch07.error_probability_at_freq(AluOp::Mul, msb, f, 1.0);
    let p08 = ch08.error_probability_at_freq(AluOp::Mul, msb, f, 1.0);
    assert!(p07 > p08, "P@0.7V ({p07}) must exceed P@0.8V ({p08})");
}

#[test]
fn bit_significance_ordering_of_failures() {
    let study = study_with_two_voltages();
    let ch = study.characterization(0.7);
    let width = study.endpoint_count();
    // Compare a low and a high result bit of the adder at a frequency in
    // the adder's transition region: the high bit fails more often.
    let f = ch.first_failure_frequency_mhz(AluOp::Add) * 1.25;
    let p_low = ch.error_probability_at_freq(AluOp::Add, 1, f, 1.0);
    let p_high = ch.error_probability_at_freq(AluOp::Add, width - 1, f, 1.0);
    assert!(
        p_high >= p_low,
        "higher-significance bits fail at least as often (low {p_low}, high {p_high})"
    );
    assert!(p_high > 0.0);
}

#[test]
fn droop_scaling_increases_every_error_probability() {
    let study = study_with_two_voltages();
    let ch = study.characterization(0.7);
    let msb = study.endpoint_count() - 1;
    let f = ch.first_failure_frequency_mhz(AluOp::Mul) * 1.05;
    let nominal = ch.error_probability_at_freq(AluOp::Mul, msb, f, 1.0);
    let droop = ch.error_probability_at_freq(AluOp::Mul, msb, f, 1.08);
    assert!(droop >= nominal);
    assert!(droop > 0.0);
}
