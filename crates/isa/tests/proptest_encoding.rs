//! Property-based tests: every instruction survives an encode/decode
//! round trip, and decoding never panics on arbitrary (hostile) words.

use proptest::prelude::*;
use sfi_isa::{decode, encode, Instruction, Program, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

/// Word offsets representable by the 26-bit branch/jump encodings.
fn branch_offset() -> impl Strategy<Value = i32> {
    -(1i32 << 25)..(1i32 << 25)
}

/// A strategy covering **every** `Instruction` variant (all 36).
fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Add { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sub { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::And { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Or { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Xor { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Mul { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sll { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Srl { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sra { rd, ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Instruction::Addi { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Andi { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Ori { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Xori { rd, ra, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Instruction::Muli { rd, ra, imm }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Slli { rd, ra, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Srli { rd, ra, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Srai { rd, ra, shamt }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Movhi { rd, imm }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfeq { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfne { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfltu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgeu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgtu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfleu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sflts { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfges { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgts { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfles { ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, offset)| Instruction::Lwz {
            rd,
            ra,
            offset
        }),
        (reg(), reg(), any::<i16>()).prop_map(|(ra, rb, offset)| Instruction::Sw {
            ra,
            rb,
            offset
        }),
        branch_offset().prop_map(|offset| Instruction::Bf { offset }),
        branch_offset().prop_map(|offset| Instruction::Bnf { offset }),
        branch_offset().prop_map(|offset| Instruction::J { offset }),
        branch_offset().prop_map(|offset| Instruction::Jal { offset }),
        reg().prop_map(|ra| Instruction::Jr { ra }),
        Just(Instruction::Nop),
    ]
}

/// One exemplar per variant; `assert_exhaustive` fails to compile if a
/// variant is added without extending this list.
fn every_variant() -> Vec<Instruction> {
    use Instruction::*;
    let (rd, ra, rb) = (Reg(3), Reg(4), Reg(5));
    let exemplars = vec![
        Add { rd, ra, rb },
        Sub { rd, ra, rb },
        And { rd, ra, rb },
        Or { rd, ra, rb },
        Xor { rd, ra, rb },
        Mul { rd, ra, rb },
        Sll { rd, ra, rb },
        Srl { rd, ra, rb },
        Sra { rd, ra, rb },
        Addi { rd, ra, imm: -7 },
        Andi {
            rd,
            ra,
            imm: 0xF0F0,
        },
        Ori {
            rd,
            ra,
            imm: 0x00FF,
        },
        Xori {
            rd,
            ra,
            imm: 0xAAAA,
        },
        Muli { rd, ra, imm: 300 },
        Slli { rd, ra, shamt: 31 },
        Srli { rd, ra, shamt: 1 },
        Srai { rd, ra, shamt: 16 },
        Movhi { rd, imm: 0xBEEF },
        Sfeq { ra, rb },
        Sfne { ra, rb },
        Sfltu { ra, rb },
        Sfgeu { ra, rb },
        Sfgtu { ra, rb },
        Sfleu { ra, rb },
        Sflts { ra, rb },
        Sfges { ra, rb },
        Sfgts { ra, rb },
        Sfles { ra, rb },
        Lwz { rd, ra, offset: -4 },
        Sw { ra, rb, offset: 8 },
        Bf { offset: -3 },
        Bnf { offset: 2 },
        J { offset: 100 },
        Jal { offset: -100 },
        Jr { ra },
        Nop,
    ];
    fn assert_exhaustive(i: &Instruction) {
        use Instruction::*;
        match i {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Mul { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Muli { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. }
            | Movhi { .. }
            | Sfeq { .. }
            | Sfne { .. }
            | Sfltu { .. }
            | Sfgeu { .. }
            | Sfgtu { .. }
            | Sfleu { .. }
            | Sflts { .. }
            | Sfges { .. }
            | Sfgts { .. }
            | Sfles { .. }
            | Lwz { .. }
            | Sw { .. }
            | Bf { .. }
            | Bnf { .. }
            | J { .. }
            | Jal { .. }
            | Jr { .. }
            | Nop => {}
        }
    }
    exemplars.iter().for_each(assert_exhaustive);
    exemplars
}

#[test]
fn every_variant_roundtrips() {
    for i in every_variant() {
        let word = encode(i);
        assert_eq!(decode(word), Ok(i), "variant {i} must round-trip");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(i in instruction()) {
        let word = encode(i);
        prop_assert_eq!(decode(word).expect("every encoded word decodes"), i);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn program_from_words_never_panics(words in prop::collection::vec(any::<u32>(), 0..64)) {
        // Hostile instruction streams must be rejected with a typed error,
        // never a panic; when they do decode, re-encoding is the identity
        // on the words that survive a decode→encode round trip.
        if let Ok(program) = Program::from_words(&words) {
            let back = program.to_words();
            prop_assert_eq!(back.len(), words.len());
            let again = Program::from_words(&back).expect("canonical words decode");
            prop_assert_eq!(again, program);
        }
    }

    #[test]
    fn program_roundtrips_through_words(instrs in prop::collection::vec(instruction(), 0..64)) {
        let program = Program::new(instrs);
        let words = program.to_words();
        let back = Program::from_words(&words).expect("encoded program decodes");
        prop_assert_eq!(back, program);
    }

    #[test]
    fn alu_classification_is_consistent(i in instruction()) {
        // An instruction has an ALU class exactly when it is classified as
        // an ALU instruction.
        prop_assert_eq!(i.alu_class().is_some(), i.is_alu());
    }
}
