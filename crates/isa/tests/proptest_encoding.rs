//! Property-based tests: every instruction survives an encode/decode
//! round trip, and decoding never panics on arbitrary words.

use proptest::prelude::*;
use sfi_isa::{decode, encode, Instruction, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Add { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Mul { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sra { rd, ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Instruction::Addi { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Xori { rd, ra, imm }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Slli { rd, ra, shamt }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Movhi { rd, imm }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sflts { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgtu { ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, offset)| Instruction::Lwz {
            rd,
            ra,
            offset
        }),
        (reg(), reg(), any::<i16>()).prop_map(|(ra, rb, offset)| Instruction::Sw {
            ra,
            rb,
            offset
        }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|offset| Instruction::Bf { offset }),
        (-(1i32 << 25)..(1i32 << 25)).prop_map(|offset| Instruction::J { offset }),
        reg().prop_map(|ra| Instruction::Jr { ra }),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(i in instruction()) {
        let word = encode(i);
        prop_assert_eq!(decode(word).expect("every encoded word decodes"), i);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn alu_classification_is_consistent(i in instruction()) {
        // An instruction has an ALU class exactly when it is classified as
        // an ALU instruction.
        prop_assert_eq!(i.alu_class().is_some(), i.is_alu());
    }
}
