//! Programs and a small label-based builder used by the benchmark kernels.

use crate::instruction::Instruction;
use crate::registers::Reg;
use std::fmt;

/// A fully resolved program: a flat list of instructions starting at
/// instruction address 0.
///
/// # Example
///
/// ```
/// use sfi_isa::{Instruction, Program, Reg};
///
/// let program = Program::new(vec![
///     Instruction::Addi { rd: Reg(3), ra: Reg(0), imm: 5 },
///     Instruction::Nop,
/// ]);
/// assert_eq!(program.len(), 2);
/// assert!(program.listing().contains("l.addi r3, r0, 5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Wraps a list of instructions into a program.
    pub fn new(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions in address order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The instruction at address `pc`, if within the program.
    pub fn fetch(&self, pc: u32) -> Option<Instruction> {
        self.instructions.get(pc as usize).copied()
    }

    /// A human-readable assembly listing with addresses.
    ///
    /// Pc-relative branches and jumps are annotated with the resolved
    /// absolute target address (`target = pc + 1 + offset`) so the raw
    /// relative offset and its destination can be read side by side:
    ///
    /// ```text
    ///     2:  l.bf -3                ; -> 0
    /// ```
    pub fn listing(&self) -> String {
        self.instructions
            .iter()
            .enumerate()
            .map(|(pc, i)| match i.relative_offset() {
                Some(offset) => {
                    let target = pc as i64 + 1 + i64::from(offset);
                    format!("{pc:5}:  {:<22} ; -> {target}\n", i.to_string())
                }
                None => format!("{pc:5}:  {i}\n"),
            })
            .collect()
    }

    /// Encodes every instruction into its 32-bit representation (the
    /// contents of the instruction memory).
    pub fn to_words(&self) -> Vec<u32> {
        self.instructions
            .iter()
            .map(|&i| crate::encoding::encode(i))
            .collect()
    }

    /// Decodes a program from instruction-memory words.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::DecodeError`] encountered.
    pub fn from_words(words: &[u32]) -> Result<Self, crate::DecodeError> {
        let instructions = words
            .iter()
            .map(|&w| crate::encoding::decode(w))
            .collect::<Result<_, _>>()?;
        Ok(Program { instructions })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

/// A forward-referenceable label used by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder assembling a [`Program`] with labels and automatic branch-offset
/// resolution.
///
/// # Example
///
/// ```
/// use sfi_isa::{Instruction, Reg};
/// use sfi_isa::program::ProgramBuilder;
///
/// // r3 = 10; do { r3 -= 1 } while (r3 != 0);
/// let mut p = ProgramBuilder::new();
/// p.push(Instruction::Addi { rd: Reg(3), ra: Reg(0), imm: 10 });
/// let head = p.label();
/// p.push(Instruction::Addi { rd: Reg(3), ra: Reg(3), imm: -1 });
/// p.push(Instruction::Sfne { ra: Reg(3), rb: Reg(0) });
/// p.branch_if_flag(head);
/// let program = p.build();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, FixupKind)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupKind {
    BranchIfFlag,
    BranchIfNotFlag,
    Jump,
    JumpAndLink,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction address (= number of instructions emitted).
    pub fn here(&self) -> u32 {
        self.instructions.len() as u32
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Appends several instructions.
    pub fn extend(&mut self, instructions: impl IntoIterator<Item = Instruction>) -> &mut Self {
        self.instructions.extend(instructions);
        self
    }

    /// Creates a label bound to the current position.
    pub fn label(&mut self) -> Label {
        let label = Label(self.labels.len());
        self.labels.push(Some(self.instructions.len()));
        label
    }

    /// Creates an unbound (forward) label to be bound later with
    /// [`ProgramBuilder::bind`].
    pub fn forward_label(&mut self) -> Label {
        let label = Label(self.labels.len());
        self.labels.push(None);
        label
    }

    /// Binds a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label is already bound");
        self.labels[label.0] = Some(self.instructions.len());
    }

    /// Emits `l.bf` (branch if flag set) to `target`.
    pub fn branch_if_flag(&mut self, target: Label) -> &mut Self {
        self.fixups
            .push((self.instructions.len(), target, FixupKind::BranchIfFlag));
        self.instructions.push(Instruction::Bf { offset: 0 });
        self
    }

    /// Emits `l.bnf` (branch if flag clear) to `target`.
    pub fn branch_if_not_flag(&mut self, target: Label) -> &mut Self {
        self.fixups
            .push((self.instructions.len(), target, FixupKind::BranchIfNotFlag));
        self.instructions.push(Instruction::Bnf { offset: 0 });
        self
    }

    /// Emits an unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.fixups
            .push((self.instructions.len(), target, FixupKind::Jump));
        self.instructions.push(Instruction::J { offset: 0 });
        self
    }

    /// Emits a jump-and-link to `target`.
    pub fn jump_and_link(&mut self, target: Label) -> &mut Self {
        self.fixups
            .push((self.instructions.len(), target, FixupKind::JumpAndLink));
        self.instructions.push(Instruction::Jal { offset: 0 });
        self
    }

    /// Emits the canonical two-instruction sequence loading a 32-bit
    /// constant into `rd` (`l.movhi` + `l.ori`).
    pub fn load_immediate(&mut self, rd: Reg, value: u32) -> &mut Self {
        self.push(Instruction::Movhi {
            rd,
            imm: (value >> 16) as u16,
        });
        self.push(Instruction::Ori {
            rd,
            ra: rd,
            imm: (value & 0xFFFF) as u16,
        });
        self
    }

    /// Resolves all label references and returns the program.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (at, label, kind) in &self.fixups {
            let target =
                self.labels[label.0].unwrap_or_else(|| panic!("label {label:?} was never bound"));
            let offset = target as i64 - (*at as i64 + 1);
            let offset = i32::try_from(offset).expect("branch offset fits in i32");
            self.instructions[*at] = match kind {
                FixupKind::BranchIfFlag => Instruction::Bf { offset },
                FixupKind::BranchIfNotFlag => Instruction::Bnf { offset },
                FixupKind::Jump => Instruction::J { offset },
                FixupKind::JumpAndLink => Instruction::Jal { offset },
            };
        }
        Program::new(self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_offsets() {
        let mut p = ProgramBuilder::new();
        let head = p.label();
        p.push(Instruction::Nop);
        p.push(Instruction::Nop);
        p.branch_if_flag(head);
        let program = p.build();
        // Branch at address 2, target 0: offset = 0 - (2 + 1) = -3.
        assert_eq!(program.fetch(2), Some(Instruction::Bf { offset: -3 }));
    }

    #[test]
    fn forward_branch_offsets() {
        let mut p = ProgramBuilder::new();
        let end = p.forward_label();
        p.branch_if_not_flag(end);
        p.push(Instruction::Nop);
        p.push(Instruction::Nop);
        p.bind(end);
        p.push(Instruction::Nop);
        let program = p.build();
        // Branch at 0, target 3: offset = 3 - 1 = 2.
        assert_eq!(program.fetch(0), Some(Instruction::Bnf { offset: 2 }));
    }

    #[test]
    fn jump_and_link_and_plain_jump() {
        let mut p = ProgramBuilder::new();
        let subroutine = p.forward_label();
        p.jump_and_link(subroutine);
        p.push(Instruction::Nop);
        p.bind(subroutine);
        p.push(Instruction::Jr {
            ra: Instruction::LINK_REGISTER,
        });
        let entry = p.label();
        p.jump(entry);
        let program = p.build();
        assert_eq!(program.fetch(0), Some(Instruction::Jal { offset: 1 }));
        assert_eq!(program.fetch(3), Some(Instruction::J { offset: -1 }));
    }

    #[test]
    fn load_immediate_expands_to_two_instructions() {
        let mut p = ProgramBuilder::new();
        p.load_immediate(Reg(5), 0xDEAD_BEEF);
        let program = p.build();
        assert_eq!(program.len(), 2);
        assert_eq!(
            program.fetch(0),
            Some(Instruction::Movhi {
                rd: Reg(5),
                imm: 0xDEAD
            })
        );
        assert_eq!(
            program.fetch(1),
            Some(Instruction::Ori {
                rd: Reg(5),
                ra: Reg(5),
                imm: 0xBEEF
            })
        );
    }

    #[test]
    fn program_roundtrips_through_memory_words() {
        let mut p = ProgramBuilder::new();
        p.load_immediate(Reg(3), 1234);
        p.push(Instruction::Addi {
            rd: Reg(3),
            ra: Reg(3),
            imm: 1,
        });
        let program = p.build();
        let words = program.to_words();
        let back = Program::from_words(&words).expect("valid encoding");
        assert_eq!(back, program);
    }

    #[test]
    fn listing_resolves_branch_targets() {
        let mut p = ProgramBuilder::new();
        let head = p.label();
        p.push(Instruction::Nop);
        p.push(Instruction::Nop);
        p.branch_if_flag(head);
        let end = p.forward_label();
        p.jump(end);
        p.bind(end);
        let listing = p.build().listing();
        // Branch at 2 back to 0; jump at 3 to the program end (= exit).
        assert!(listing.contains("l.bf -3"), "listing:\n{listing}");
        assert!(listing.contains("; -> 0"), "listing:\n{listing}");
        assert!(listing.contains("l.j 0"), "listing:\n{listing}");
        assert!(listing.contains("; -> 4"), "listing:\n{listing}");
        // Non-control instructions carry no target annotation.
        assert!(listing.lines().next().unwrap().ends_with("l.nop"));
    }

    #[test]
    fn listing_and_fetch() {
        let program = Program::new(vec![Instruction::Nop, Instruction::Jr { ra: Reg(9) }]);
        assert!(program.listing().contains("l.jr r9"));
        assert_eq!(program.fetch(5), None);
        assert!(!program.is_empty());
        assert_eq!(program.to_string(), program.listing());
        let collected: Program = vec![Instruction::Nop].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.forward_label();
        p.jump(l);
        let _ = p.build();
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.label();
        p.bind(l);
    }
}
