//! Binary encoding and decoding of instructions.
//!
//! The encoding is a compact 32-bit format inspired by (but not identical
//! to) the OpenRISC ORBIS32 encoding: a 6-bit major opcode in the top bits,
//! 5-bit register fields, and 16-bit immediates or 26-bit branch offsets in
//! the low bits.  It exists so programs can be stored in a word-addressed
//! instruction memory and round-tripped, exactly like on the real core.

use crate::instruction::Instruction;
use crate::registers::Reg;
use std::fmt;

/// Error returned when a 32-bit word does not decode to a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_SHIFT: u32 = 26;
const RD_SHIFT: u32 = 21;
const RA_SHIFT: u32 = 16;
const RB_SHIFT: u32 = 11;

const OP_NOP: u32 = 0x00;
const OP_ADD: u32 = 0x01;
const OP_SUB: u32 = 0x02;
const OP_AND: u32 = 0x03;
const OP_OR: u32 = 0x04;
const OP_XOR: u32 = 0x05;
const OP_MUL: u32 = 0x06;
const OP_SLL: u32 = 0x07;
const OP_SRL: u32 = 0x08;
const OP_SRA: u32 = 0x09;
const OP_ADDI: u32 = 0x0A;
const OP_ANDI: u32 = 0x0B;
const OP_ORI: u32 = 0x0C;
const OP_XORI: u32 = 0x0D;
const OP_MULI: u32 = 0x0E;
const OP_SLLI: u32 = 0x0F;
const OP_SRLI: u32 = 0x10;
const OP_SRAI: u32 = 0x11;
const OP_MOVHI: u32 = 0x12;
const OP_SF: u32 = 0x13;
const OP_LWZ: u32 = 0x14;
const OP_SW: u32 = 0x15;
const OP_BF: u32 = 0x16;
const OP_BNF: u32 = 0x17;
const OP_J: u32 = 0x18;
const OP_JAL: u32 = 0x19;
const OP_JR: u32 = 0x1A;

const SF_EQ: u32 = 0;
const SF_NE: u32 = 1;
const SF_LTU: u32 = 2;
const SF_GEU: u32 = 3;
const SF_GTU: u32 = 4;
const SF_LEU: u32 = 5;
const SF_LTS: u32 = 6;
const SF_GES: u32 = 7;
const SF_GTS: u32 = 8;
const SF_LES: u32 = 9;

fn r(value: u32, shift: u32) -> Reg {
    Reg(((value >> shift) & 0x1F) as u8)
}

fn imm16(value: u32) -> u16 {
    (value & 0xFFFF) as u16
}

fn off26(value: u32) -> i32 {
    // Sign-extend a 26-bit field.
    ((value << 6) as i32) >> 6
}

/// Encodes an instruction into its 32-bit binary representation.
///
/// # Panics
///
/// Panics if a register field is out of range, a shift amount exceeds 31,
/// or a branch offset does not fit in 26 signed bits.
///
/// # Example
///
/// ```
/// use sfi_isa::{encode, decode, Instruction, Reg};
///
/// let i = Instruction::Addi { rd: Reg(3), ra: Reg(4), imm: -7 };
/// assert_eq!(decode(encode(i))?, i);
/// # Ok::<(), sfi_isa::DecodeError>(())
/// ```
pub fn encode(instruction: Instruction) -> u32 {
    use Instruction::*;
    let reg = |r: Reg, shift: u32| -> u32 {
        assert!(r.is_valid(), "register {r} out of range");
        (r.0 as u32) << shift
    };
    let shamt5 = |s: u8| -> u32 {
        assert!(s < 32, "shift amount {s} out of range");
        s as u32
    };
    let branch26 = |o: i32| -> u32 {
        assert!(
            (-(1 << 25)..(1 << 25)).contains(&o),
            "branch offset {o} out of range"
        );
        (o as u32) & 0x03FF_FFFF
    };
    let rtype = |op: u32, rd: Reg, ra: Reg, rb: Reg| {
        (op << OP_SHIFT) | reg(rd, RD_SHIFT) | reg(ra, RA_SHIFT) | reg(rb, RB_SHIFT)
    };
    let itype = |op: u32, rd: Reg, ra: Reg, imm: u16| {
        (op << OP_SHIFT) | reg(rd, RD_SHIFT) | reg(ra, RA_SHIFT) | imm as u32
    };
    let sf = |sub: u32, ra: Reg, rb: Reg| {
        (OP_SF << OP_SHIFT) | (sub << RD_SHIFT) | reg(ra, RA_SHIFT) | reg(rb, RB_SHIFT)
    };

    match instruction {
        Nop => OP_NOP << OP_SHIFT,
        Add { rd, ra, rb } => rtype(OP_ADD, rd, ra, rb),
        Sub { rd, ra, rb } => rtype(OP_SUB, rd, ra, rb),
        And { rd, ra, rb } => rtype(OP_AND, rd, ra, rb),
        Or { rd, ra, rb } => rtype(OP_OR, rd, ra, rb),
        Xor { rd, ra, rb } => rtype(OP_XOR, rd, ra, rb),
        Mul { rd, ra, rb } => rtype(OP_MUL, rd, ra, rb),
        Sll { rd, ra, rb } => rtype(OP_SLL, rd, ra, rb),
        Srl { rd, ra, rb } => rtype(OP_SRL, rd, ra, rb),
        Sra { rd, ra, rb } => rtype(OP_SRA, rd, ra, rb),
        Addi { rd, ra, imm } => itype(OP_ADDI, rd, ra, imm as u16),
        Andi { rd, ra, imm } => itype(OP_ANDI, rd, ra, imm),
        Ori { rd, ra, imm } => itype(OP_ORI, rd, ra, imm),
        Xori { rd, ra, imm } => itype(OP_XORI, rd, ra, imm),
        Muli { rd, ra, imm } => itype(OP_MULI, rd, ra, imm as u16),
        Slli { rd, ra, shamt } => {
            (OP_SLLI << OP_SHIFT) | reg(rd, RD_SHIFT) | reg(ra, RA_SHIFT) | shamt5(shamt)
        }
        Srli { rd, ra, shamt } => {
            (OP_SRLI << OP_SHIFT) | reg(rd, RD_SHIFT) | reg(ra, RA_SHIFT) | shamt5(shamt)
        }
        Srai { rd, ra, shamt } => {
            (OP_SRAI << OP_SHIFT) | reg(rd, RD_SHIFT) | reg(ra, RA_SHIFT) | shamt5(shamt)
        }
        Movhi { rd, imm } => (OP_MOVHI << OP_SHIFT) | reg(rd, RD_SHIFT) | imm as u32,
        Sfeq { ra, rb } => sf(SF_EQ, ra, rb),
        Sfne { ra, rb } => sf(SF_NE, ra, rb),
        Sfltu { ra, rb } => sf(SF_LTU, ra, rb),
        Sfgeu { ra, rb } => sf(SF_GEU, ra, rb),
        Sfgtu { ra, rb } => sf(SF_GTU, ra, rb),
        Sfleu { ra, rb } => sf(SF_LEU, ra, rb),
        Sflts { ra, rb } => sf(SF_LTS, ra, rb),
        Sfges { ra, rb } => sf(SF_GES, ra, rb),
        Sfgts { ra, rb } => sf(SF_GTS, ra, rb),
        Sfles { ra, rb } => sf(SF_LES, ra, rb),
        Lwz { rd, ra, offset } => itype(OP_LWZ, rd, ra, offset as u16),
        Sw { ra, rb, offset } => {
            (OP_SW << OP_SHIFT) | reg(rb, RD_SHIFT) | reg(ra, RA_SHIFT) | (offset as u16) as u32
        }
        Bf { offset } => (OP_BF << OP_SHIFT) | branch26(offset),
        Bnf { offset } => (OP_BNF << OP_SHIFT) | branch26(offset),
        J { offset } => (OP_J << OP_SHIFT) | branch26(offset),
        Jal { offset } => (OP_JAL << OP_SHIFT) | branch26(offset),
        Jr { ra } => (OP_JR << OP_SHIFT) | reg(ra, RA_SHIFT),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the major opcode or a sub-opcode field does
/// not correspond to any instruction.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    use Instruction::*;
    let op = word >> OP_SHIFT;
    let rd = r(word, RD_SHIFT);
    let ra = r(word, RA_SHIFT);
    let rb = r(word, RB_SHIFT);
    let imm = imm16(word);
    let shamt = (word & 0x1F) as u8;
    let instruction = match op {
        OP_NOP => Nop,
        OP_ADD => Add { rd, ra, rb },
        OP_SUB => Sub { rd, ra, rb },
        OP_AND => And { rd, ra, rb },
        OP_OR => Or { rd, ra, rb },
        OP_XOR => Xor { rd, ra, rb },
        OP_MUL => Mul { rd, ra, rb },
        OP_SLL => Sll { rd, ra, rb },
        OP_SRL => Srl { rd, ra, rb },
        OP_SRA => Sra { rd, ra, rb },
        OP_ADDI => Addi {
            rd,
            ra,
            imm: imm as i16,
        },
        OP_ANDI => Andi { rd, ra, imm },
        OP_ORI => Ori { rd, ra, imm },
        OP_XORI => Xori { rd, ra, imm },
        OP_MULI => Muli {
            rd,
            ra,
            imm: imm as i16,
        },
        OP_SLLI => Slli { rd, ra, shamt },
        OP_SRLI => Srli { rd, ra, shamt },
        OP_SRAI => Srai { rd, ra, shamt },
        OP_MOVHI => Movhi { rd, imm },
        OP_SF => {
            let sub = (word >> RD_SHIFT) & 0x1F;
            match sub {
                SF_EQ => Sfeq { ra, rb },
                SF_NE => Sfne { ra, rb },
                SF_LTU => Sfltu { ra, rb },
                SF_GEU => Sfgeu { ra, rb },
                SF_GTU => Sfgtu { ra, rb },
                SF_LEU => Sfleu { ra, rb },
                SF_LTS => Sflts { ra, rb },
                SF_GES => Sfges { ra, rb },
                SF_GTS => Sfgts { ra, rb },
                SF_LES => Sfles { ra, rb },
                _ => return Err(DecodeError { word }),
            }
        }
        OP_LWZ => Lwz {
            rd,
            ra,
            offset: imm as i16,
        },
        OP_SW => Sw {
            ra,
            rb: rd,
            offset: imm as i16,
        },
        OP_BF => Bf {
            offset: off26(word),
        },
        OP_BNF => Bnf {
            offset: off26(word),
        },
        OP_J => J {
            offset: off26(word),
        },
        OP_JAL => Jal {
            offset: off26(word),
        },
        OP_JR => Jr { ra },
        _ => return Err(DecodeError { word }),
    };
    Ok(instruction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            Nop,
            Add {
                rd: Reg(1),
                ra: Reg(2),
                rb: Reg(3),
            },
            Sub {
                rd: Reg(31),
                ra: Reg(30),
                rb: Reg(29),
            },
            And {
                rd: Reg(4),
                ra: Reg(5),
                rb: Reg(6),
            },
            Or {
                rd: Reg(7),
                ra: Reg(8),
                rb: Reg(9),
            },
            Xor {
                rd: Reg(10),
                ra: Reg(11),
                rb: Reg(12),
            },
            Mul {
                rd: Reg(13),
                ra: Reg(14),
                rb: Reg(15),
            },
            Sll {
                rd: Reg(16),
                ra: Reg(17),
                rb: Reg(18),
            },
            Srl {
                rd: Reg(19),
                ra: Reg(20),
                rb: Reg(21),
            },
            Sra {
                rd: Reg(22),
                ra: Reg(23),
                rb: Reg(24),
            },
            Addi {
                rd: Reg(3),
                ra: Reg(4),
                imm: -32768,
            },
            Addi {
                rd: Reg(3),
                ra: Reg(4),
                imm: 32767,
            },
            Andi {
                rd: Reg(3),
                ra: Reg(4),
                imm: 0xFFFF,
            },
            Ori {
                rd: Reg(3),
                ra: Reg(4),
                imm: 0x00FF,
            },
            Xori {
                rd: Reg(3),
                ra: Reg(4),
                imm: 0xAAAA,
            },
            Muli {
                rd: Reg(3),
                ra: Reg(4),
                imm: -5,
            },
            Slli {
                rd: Reg(3),
                ra: Reg(4),
                shamt: 31,
            },
            Srli {
                rd: Reg(3),
                ra: Reg(4),
                shamt: 0,
            },
            Srai {
                rd: Reg(3),
                ra: Reg(4),
                shamt: 16,
            },
            Movhi {
                rd: Reg(3),
                imm: 0xBEEF,
            },
            Sfeq {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfne {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfltu {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfgeu {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfgtu {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfleu {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sflts {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfges {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfgts {
                ra: Reg(1),
                rb: Reg(2),
            },
            Sfles {
                ra: Reg(1),
                rb: Reg(2),
            },
            Lwz {
                rd: Reg(5),
                ra: Reg(6),
                offset: -4,
            },
            Sw {
                ra: Reg(6),
                rb: Reg(5),
                offset: 1024,
            },
            Bf { offset: -1 },
            Bnf { offset: 12345 },
            J { offset: -33554432 },
            Jal { offset: 33554431 },
            Jr { ra: Reg(9) },
        ]
    }

    #[test]
    fn roundtrip_all_samples() {
        for i in sample_instructions() {
            let word = encode(i);
            let back = decode(word).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(back, i, "{i} encoded as {word:#010x}");
        }
    }

    #[test]
    fn distinct_encodings() {
        let words: Vec<u32> = sample_instructions().into_iter().map(encode).collect();
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "two distinct instructions share encoding {a:#010x}");
                }
            }
        }
    }

    #[test]
    fn invalid_opcode_rejected() {
        let err = decode(0xFFFF_FFFF).unwrap_err();
        assert_eq!(err.word, 0xFFFF_FFFF);
        assert!(err.to_string().contains("0xffffffff"));
        // Invalid set-flag sub-opcode.
        assert!(decode((OP_SF << OP_SHIFT) | (31 << RD_SHIFT)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_register_panics() {
        encode(Instruction::Add {
            rd: Reg(32),
            ra: Reg(0),
            rb: Reg(0),
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_branch_offset_panics() {
        encode(Instruction::J { offset: 1 << 26 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_shift_amount_panics() {
        encode(Instruction::Slli {
            rd: Reg(1),
            ra: Reg(1),
            shamt: 32,
        });
    }
}
