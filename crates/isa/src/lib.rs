//! OpenRISC-like 32-bit instruction set used by the SFI case study.
//!
//! The paper's hardware is a modified 32-bit OpenRISC embedded core; this
//! crate defines the subset of its instruction set that the benchmark
//! kernels and the cycle-accurate simulator (`sfi-cpu`) need:
//!
//! * [`Instruction`] — register–register and register–immediate ALU
//!   operations (`l.add`, `l.mul`, shifts, logic), set-flag comparisons
//!   (`l.sf*`), word memory accesses (`l.lwz`, `l.sw`), and control flow
//!   (`l.bf`, `l.bnf`, `l.j`, `l.jal`, `l.jr`).
//! * [`AluClass`] — which execution-stage ALU operation an instruction
//!   activates; this is the key that the fault-injection models condition
//!   their timing-error statistics on.
//! * [`encoding`] — a compact 32-bit binary encoding with full
//!   encode/decode round-tripping, so programs can be stored in an
//!   instruction memory like on the real core.
//! * [`program::ProgramBuilder`] — a small label-based assembler API used
//!   by the benchmark kernels.
//!
//! # Example
//!
//! ```
//! use sfi_isa::{Instruction, Reg};
//! use sfi_isa::program::ProgramBuilder;
//!
//! let mut p = ProgramBuilder::new();
//! let loop_head = p.label();
//! p.push(Instruction::Addi { rd: Reg(3), ra: Reg(3), imm: -1 });
//! p.push(Instruction::Sfne { ra: Reg(3), rb: Reg(0) });
//! p.branch_if_flag(loop_head);
//! let program = p.build();
//! assert_eq!(program.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod instruction;
pub mod program;
pub mod registers;

pub use encoding::{decode, encode, DecodeError};
pub use instruction::{AluClass, Instruction, InstructionKind, MNEMONICS};
pub use program::{Program, ProgramBuilder};
pub use registers::Reg;
