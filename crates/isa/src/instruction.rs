//! The instruction set: operations, operand fields, and classification.

use crate::registers::Reg;
use std::fmt;

/// The execution-stage ALU operation activated by an instruction.
///
/// This mirrors the functional units of the gate-level datapath
/// (`sfi-netlist::alu::AluOp`); the fault-injection models condition their
/// timing-error statistics on this class, because different operations
/// excite very different path delays (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluClass {
    /// Addition (also used by immediate adds).
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Low-half multiplication.
    Mul,
    /// Set flag if equal.
    SfEq,
    /// Set flag if not equal.
    SfNe,
    /// Set flag if less than, unsigned.
    SfLtu,
    /// Set flag if greater or equal, unsigned.
    SfGeu,
    /// Set flag if less than, signed.
    SfLts,
    /// Set flag if greater or equal, signed.
    SfGes,
}

impl AluClass {
    /// All ALU classes.
    pub const ALL: [AluClass; 15] = [
        AluClass::Add,
        AluClass::Sub,
        AluClass::And,
        AluClass::Or,
        AluClass::Xor,
        AluClass::Sll,
        AluClass::Srl,
        AluClass::Sra,
        AluClass::Mul,
        AluClass::SfEq,
        AluClass::SfNe,
        AluClass::SfLtu,
        AluClass::SfGeu,
        AluClass::SfLts,
        AluClass::SfGes,
    ];

    /// Whether the class produces the single flag bit used by conditional
    /// branches rather than a full-width result.
    pub fn is_set_flag(self) -> bool {
        matches!(
            self,
            AluClass::SfEq
                | AluClass::SfNe
                | AluClass::SfLtu
                | AluClass::SfGeu
                | AluClass::SfLts
                | AluClass::SfGes
        )
    }
}

impl fmt::Display for AluClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluClass::Add => "add",
            AluClass::Sub => "sub",
            AluClass::And => "and",
            AluClass::Or => "or",
            AluClass::Xor => "xor",
            AluClass::Sll => "sll",
            AluClass::Srl => "srl",
            AluClass::Sra => "sra",
            AluClass::Mul => "mul",
            AluClass::SfEq => "sfeq",
            AluClass::SfNe => "sfne",
            AluClass::SfLtu => "sfltu",
            AluClass::SfGeu => "sfgeu",
            AluClass::SfLts => "sflts",
            AluClass::SfGes => "sfges",
        };
        f.write_str(s)
    }
}

/// Coarse classification of instructions, used for pipeline-activity
/// statistics (compute vs control weight of a kernel, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionKind {
    /// Instructions that activate the execution-stage ALU (arithmetic,
    /// logic, shifts, multiplications, set-flag comparisons).
    Alu,
    /// Word loads.
    Load,
    /// Word stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps (including jump-and-link and jump-register).
    Jump,
    /// No-operation.
    Nop,
}

/// One instruction of the OpenRISC-like ISA.
///
/// Branch and jump offsets are expressed in instruction words relative to
/// the *next* instruction: `target = pc + 1 + offset`. An offset of `0`
/// therefore falls through to the next instruction, an offset of `-1`
/// re-executes the branch itself, and an offset of `-2` targets the
/// instruction immediately before the branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `l.add rd, ra, rb` — `rd = ra + rb`.
    Add {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sub rd, ra, rb` — `rd = ra - rb`.
    Sub {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.and rd, ra, rb` — `rd = ra & rb`.
    And {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.or rd, ra, rb` — `rd = ra | rb`.
    Or {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.xor rd, ra, rb` — `rd = ra ^ rb`.
    Xor {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.mul rd, ra, rb` — `rd = low32(ra * rb)`.
    Mul {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sll rd, ra, rb` — logical left shift by `rb % 32`.
    Sll {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Shift-amount register.
        rb: Reg,
    },
    /// `l.srl rd, ra, rb` — logical right shift by `rb % 32`.
    Srl {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Shift-amount register.
        rb: Reg,
    },
    /// `l.sra rd, ra, rb` — arithmetic right shift by `rb % 32`.
    Sra {
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Shift-amount register.
        rb: Reg,
    },
    /// `l.addi rd, ra, imm` — `rd = ra + sext(imm)`.
    Addi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `l.andi rd, ra, imm` — `rd = ra & zext(imm)`.
    Andi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `l.ori rd, ra, imm` — `rd = ra | zext(imm)`.
    Ori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `l.xori rd, ra, imm` — `rd = ra ^ zext(imm)`.
    Xori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `l.muli rd, ra, imm` — `rd = low32(ra * sext(imm))`.
    Muli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `l.slli rd, ra, shamt` — logical left shift by a constant.
    Slli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `l.srli rd, ra, shamt` — logical right shift by a constant.
    Srli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `l.srai rd, ra, shamt` — arithmetic right shift by a constant.
    Srai {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `l.movhi rd, imm` — `rd = imm << 16`.
    Movhi {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in the upper half-word.
        imm: u16,
    },
    /// `l.sfeq ra, rb` — set flag if `ra == rb`.
    Sfeq {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfne ra, rb` — set flag if `ra != rb`.
    Sfne {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfltu ra, rb` — set flag if `ra < rb` (unsigned).
    Sfltu {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfgeu ra, rb` — set flag if `ra >= rb` (unsigned).
    Sfgeu {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfgtu ra, rb` — set flag if `ra > rb` (unsigned).
    Sfgtu {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfleu ra, rb` — set flag if `ra <= rb` (unsigned).
    Sfleu {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sflts ra, rb` — set flag if `ra < rb` (signed).
    Sflts {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfges ra, rb` — set flag if `ra >= rb` (signed).
    Sfges {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfgts ra, rb` — set flag if `ra > rb` (signed).
    Sfgts {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.sfles ra, rb` — set flag if `ra <= rb` (signed).
    Sfles {
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `l.lwz rd, offset(ra)` — load the word at `ra + sext(offset)`.
    Lwz {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        ra: Reg,
        /// Byte offset (must be word-aligned).
        offset: i16,
    },
    /// `l.sw offset(ra), rb` — store `rb` to `ra + sext(offset)`.
    Sw {
        /// Base-address register.
        ra: Reg,
        /// Source register holding the value to store.
        rb: Reg,
        /// Byte offset (must be word-aligned).
        offset: i16,
    },
    /// `l.bf offset` — branch if the flag is set.
    Bf {
        /// Word offset relative to the next instruction.
        offset: i32,
    },
    /// `l.bnf offset` — branch if the flag is clear.
    Bnf {
        /// Word offset relative to the next instruction.
        offset: i32,
    },
    /// `l.j offset` — unconditional jump.
    J {
        /// Word offset relative to the next instruction.
        offset: i32,
    },
    /// `l.jal offset` — jump and link (return address into `r9`).
    Jal {
        /// Word offset relative to the next instruction.
        offset: i32,
    },
    /// `l.jr ra` — jump to the address in `ra` (in instruction words).
    Jr {
        /// Register holding the target address.
        ra: Reg,
    },
    /// `l.nop` — no operation.
    Nop,
}

/// Every assembly mnemonic of the ISA, in opcode order. One entry per
/// [`Instruction`] variant; conformance suites use this to assert full
/// coverage of the instruction set.
pub const MNEMONICS: [&str; 36] = [
    "l.add", "l.sub", "l.and", "l.or", "l.xor", "l.mul", "l.sll", "l.srl", "l.sra", "l.addi",
    "l.andi", "l.ori", "l.xori", "l.muli", "l.slli", "l.srli", "l.srai", "l.movhi", "l.sfeq",
    "l.sfne", "l.sfltu", "l.sfgeu", "l.sfgtu", "l.sfleu", "l.sflts", "l.sfges", "l.sfgts",
    "l.sfles", "l.lwz", "l.sw", "l.bf", "l.bnf", "l.j", "l.jal", "l.jr", "l.nop",
];

impl Instruction {
    /// The link register written by [`Instruction::Jal`].
    pub const LINK_REGISTER: Reg = Reg(9);

    /// The assembly mnemonic of this instruction (always an element of
    /// [`MNEMONICS`]); the first token of the [`fmt::Display`] form.
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            Add { .. } => "l.add",
            Sub { .. } => "l.sub",
            And { .. } => "l.and",
            Or { .. } => "l.or",
            Xor { .. } => "l.xor",
            Mul { .. } => "l.mul",
            Sll { .. } => "l.sll",
            Srl { .. } => "l.srl",
            Sra { .. } => "l.sra",
            Addi { .. } => "l.addi",
            Andi { .. } => "l.andi",
            Ori { .. } => "l.ori",
            Xori { .. } => "l.xori",
            Muli { .. } => "l.muli",
            Slli { .. } => "l.slli",
            Srli { .. } => "l.srli",
            Srai { .. } => "l.srai",
            Movhi { .. } => "l.movhi",
            Sfeq { .. } => "l.sfeq",
            Sfne { .. } => "l.sfne",
            Sfltu { .. } => "l.sfltu",
            Sfgeu { .. } => "l.sfgeu",
            Sfgtu { .. } => "l.sfgtu",
            Sfleu { .. } => "l.sfleu",
            Sflts { .. } => "l.sflts",
            Sfges { .. } => "l.sfges",
            Sfgts { .. } => "l.sfgts",
            Sfles { .. } => "l.sfles",
            Lwz { .. } => "l.lwz",
            Sw { .. } => "l.sw",
            Bf { .. } => "l.bf",
            Bnf { .. } => "l.bnf",
            J { .. } => "l.j",
            Jal { .. } => "l.jal",
            Jr { .. } => "l.jr",
            Nop => "l.nop",
        }
    }

    /// Coarse classification of the instruction.
    pub fn kind(&self) -> InstructionKind {
        use Instruction::*;
        match self {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Mul { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Muli { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. }
            | Movhi { .. }
            | Sfeq { .. }
            | Sfne { .. }
            | Sfltu { .. }
            | Sfgeu { .. }
            | Sfgtu { .. }
            | Sfleu { .. }
            | Sflts { .. }
            | Sfges { .. }
            | Sfgts { .. }
            | Sfles { .. } => InstructionKind::Alu,
            Lwz { .. } => InstructionKind::Load,
            Sw { .. } => InstructionKind::Store,
            Bf { .. } | Bnf { .. } => InstructionKind::Branch,
            J { .. } | Jal { .. } | Jr { .. } => InstructionKind::Jump,
            Nop => InstructionKind::Nop,
        }
    }

    /// The execution-stage ALU operation this instruction activates, if any.
    ///
    /// Comparisons that the hardware implements with swapped operands
    /// (`l.sfgtu`, `l.sfleu`, `l.sfgts`, `l.sfles`) report the class of the
    /// underlying datapath operation (`SfLtu`, `SfGeu`, `SfLts`, `SfGes`).
    pub fn alu_class(&self) -> Option<AluClass> {
        use Instruction::*;
        let class = match self {
            Add { .. } | Addi { .. } => AluClass::Add,
            Sub { .. } => AluClass::Sub,
            And { .. } | Andi { .. } => AluClass::And,
            Or { .. } | Ori { .. } | Movhi { .. } => AluClass::Or,
            Xor { .. } | Xori { .. } => AluClass::Xor,
            Mul { .. } | Muli { .. } => AluClass::Mul,
            Sll { .. } | Slli { .. } => AluClass::Sll,
            Srl { .. } | Srli { .. } => AluClass::Srl,
            Sra { .. } | Srai { .. } => AluClass::Sra,
            Sfeq { .. } => AluClass::SfEq,
            Sfne { .. } => AluClass::SfNe,
            Sfltu { .. } | Sfgtu { .. } => AluClass::SfLtu,
            Sfgeu { .. } | Sfleu { .. } => AluClass::SfGeu,
            Sflts { .. } | Sfgts { .. } => AluClass::SfLts,
            Sfges { .. } | Sfles { .. } => AluClass::SfGes,
            Lwz { .. }
            | Sw { .. }
            | Bf { .. }
            | Bnf { .. }
            | J { .. }
            | Jal { .. }
            | Jr { .. }
            | Nop => return None,
        };
        Some(class)
    }

    /// Whether the instruction activates the execution-stage ALU (and is
    /// therefore subject to timing-error fault injection).
    pub fn is_alu(&self) -> bool {
        self.kind() == InstructionKind::Alu
    }

    /// Whether the instruction writes the branch flag.
    pub fn writes_flag(&self) -> bool {
        self.alu_class().is_some_and(AluClass::is_set_flag)
    }

    /// Whether the instruction reads the branch flag.
    pub fn reads_flag(&self) -> bool {
        matches!(self, Instruction::Bf { .. } | Instruction::Bnf { .. })
    }

    /// The word offset of a pc-relative branch or jump, if any.
    ///
    /// The resolved target is `pc + 1 + offset`. Returns `None` for
    /// everything else, including `l.jr` whose target is dynamic.
    pub fn relative_offset(&self) -> Option<i32> {
        use Instruction::*;
        match self {
            Bf { offset } | Bnf { offset } | J { offset } | Jal { offset } => Some(*offset),
            _ => None,
        }
    }

    /// The registers read by this instruction, in operand order.
    ///
    /// At most two registers are ever read; absent slots are `None`. The
    /// branch flag is not a register — see [`Instruction::reads_flag`].
    pub fn sources(&self) -> [Option<Reg>; 2] {
        use Instruction::*;
        match self {
            Add { ra, rb, .. }
            | Sub { ra, rb, .. }
            | And { ra, rb, .. }
            | Or { ra, rb, .. }
            | Xor { ra, rb, .. }
            | Mul { ra, rb, .. }
            | Sll { ra, rb, .. }
            | Srl { ra, rb, .. }
            | Sra { ra, rb, .. }
            | Sfeq { ra, rb }
            | Sfne { ra, rb }
            | Sfltu { ra, rb }
            | Sfgeu { ra, rb }
            | Sfgtu { ra, rb }
            | Sfleu { ra, rb }
            | Sflts { ra, rb }
            | Sfges { ra, rb }
            | Sfgts { ra, rb }
            | Sfles { ra, rb }
            | Sw { ra, rb, .. } => [Some(*ra), Some(*rb)],
            Addi { ra, .. }
            | Andi { ra, .. }
            | Ori { ra, .. }
            | Xori { ra, .. }
            | Muli { ra, .. }
            | Slli { ra, .. }
            | Srli { ra, .. }
            | Srai { ra, .. }
            | Lwz { ra, .. }
            | Jr { ra } => [Some(*ra), None],
            Movhi { .. } | Bf { .. } | Bnf { .. } | J { .. } | Jal { .. } | Nop => [None, None],
        }
    }

    /// The register written by this instruction, if any.
    pub fn destination(&self) -> Option<Reg> {
        use Instruction::*;
        match self {
            Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Mul { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Muli { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Srai { rd, .. }
            | Movhi { rd, .. }
            | Lwz { rd, .. } => Some(*rd),
            Jal { .. } => Some(Self::LINK_REGISTER),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Add { rd, ra, rb } => write!(f, "l.add {rd}, {ra}, {rb}"),
            Sub { rd, ra, rb } => write!(f, "l.sub {rd}, {ra}, {rb}"),
            And { rd, ra, rb } => write!(f, "l.and {rd}, {ra}, {rb}"),
            Or { rd, ra, rb } => write!(f, "l.or {rd}, {ra}, {rb}"),
            Xor { rd, ra, rb } => write!(f, "l.xor {rd}, {ra}, {rb}"),
            Mul { rd, ra, rb } => write!(f, "l.mul {rd}, {ra}, {rb}"),
            Sll { rd, ra, rb } => write!(f, "l.sll {rd}, {ra}, {rb}"),
            Srl { rd, ra, rb } => write!(f, "l.srl {rd}, {ra}, {rb}"),
            Sra { rd, ra, rb } => write!(f, "l.sra {rd}, {ra}, {rb}"),
            Addi { rd, ra, imm } => write!(f, "l.addi {rd}, {ra}, {imm}"),
            Andi { rd, ra, imm } => write!(f, "l.andi {rd}, {ra}, {imm:#x}"),
            Ori { rd, ra, imm } => write!(f, "l.ori {rd}, {ra}, {imm:#x}"),
            Xori { rd, ra, imm } => write!(f, "l.xori {rd}, {ra}, {imm:#x}"),
            Muli { rd, ra, imm } => write!(f, "l.muli {rd}, {ra}, {imm}"),
            Slli { rd, ra, shamt } => write!(f, "l.slli {rd}, {ra}, {shamt}"),
            Srli { rd, ra, shamt } => write!(f, "l.srli {rd}, {ra}, {shamt}"),
            Srai { rd, ra, shamt } => write!(f, "l.srai {rd}, {ra}, {shamt}"),
            Movhi { rd, imm } => write!(f, "l.movhi {rd}, {imm:#x}"),
            Sfeq { ra, rb } => write!(f, "l.sfeq {ra}, {rb}"),
            Sfne { ra, rb } => write!(f, "l.sfne {ra}, {rb}"),
            Sfltu { ra, rb } => write!(f, "l.sfltu {ra}, {rb}"),
            Sfgeu { ra, rb } => write!(f, "l.sfgeu {ra}, {rb}"),
            Sfgtu { ra, rb } => write!(f, "l.sfgtu {ra}, {rb}"),
            Sfleu { ra, rb } => write!(f, "l.sfleu {ra}, {rb}"),
            Sflts { ra, rb } => write!(f, "l.sflts {ra}, {rb}"),
            Sfges { ra, rb } => write!(f, "l.sfges {ra}, {rb}"),
            Sfgts { ra, rb } => write!(f, "l.sfgts {ra}, {rb}"),
            Sfles { ra, rb } => write!(f, "l.sfles {ra}, {rb}"),
            Lwz { rd, ra, offset } => write!(f, "l.lwz {rd}, {offset}({ra})"),
            Sw { ra, rb, offset } => write!(f, "l.sw {offset}({ra}), {rb}"),
            Bf { offset } => write!(f, "l.bf {offset}"),
            Bnf { offset } => write!(f, "l.bnf {offset}"),
            J { offset } => write!(f, "l.j {offset}"),
            Jal { offset } => write!(f, "l.jal {offset}"),
            Jr { ra } => write!(f, "l.jr {ra}"),
            Nop => write!(f, "l.nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let add = Instruction::Add {
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        };
        assert_eq!(add.kind(), InstructionKind::Alu);
        assert_eq!(add.alu_class(), Some(AluClass::Add));
        assert!(add.is_alu());
        assert!(!add.writes_flag());
        assert_eq!(add.destination(), Some(Reg(3)));

        let lwz = Instruction::Lwz {
            rd: Reg(4),
            ra: Reg(2),
            offset: 8,
        };
        assert_eq!(lwz.kind(), InstructionKind::Load);
        assert_eq!(lwz.alu_class(), None);
        assert!(!lwz.is_alu());
        assert_eq!(lwz.destination(), Some(Reg(4)));

        let bf = Instruction::Bf { offset: -3 };
        assert_eq!(bf.kind(), InstructionKind::Branch);
        assert_eq!(bf.destination(), None);

        let jal = Instruction::Jal { offset: 10 };
        assert_eq!(jal.kind(), InstructionKind::Jump);
        assert_eq!(jal.destination(), Some(Instruction::LINK_REGISTER));

        assert_eq!(Instruction::Nop.kind(), InstructionKind::Nop);
    }

    #[test]
    fn swapped_comparisons_share_datapath_class() {
        let gtu = Instruction::Sfgtu {
            ra: Reg(1),
            rb: Reg(2),
        };
        let ltu = Instruction::Sfltu {
            ra: Reg(1),
            rb: Reg(2),
        };
        assert_eq!(gtu.alu_class(), Some(AluClass::SfLtu));
        assert_eq!(ltu.alu_class(), Some(AluClass::SfLtu));
        assert!(gtu.writes_flag());
        let les = Instruction::Sfles {
            ra: Reg(1),
            rb: Reg(2),
        };
        assert_eq!(les.alu_class(), Some(AluClass::SfGes));
    }

    #[test]
    fn flag_classes() {
        assert!(AluClass::SfEq.is_set_flag());
        assert!(!AluClass::Mul.is_set_flag());
        assert_eq!(AluClass::ALL.len(), 15);
    }

    #[test]
    fn display_round() {
        let i = Instruction::Addi {
            rd: Reg(3),
            ra: Reg(3),
            imm: -1,
        };
        assert_eq!(i.to_string(), "l.addi r3, r3, -1");
        assert_eq!(Instruction::Nop.to_string(), "l.nop");
        assert_eq!(
            Instruction::Lwz {
                rd: Reg(5),
                ra: Reg(2),
                offset: 12
            }
            .to_string(),
            "l.lwz r5, 12(r2)"
        );
        assert_eq!(AluClass::Mul.to_string(), "mul");
    }

    #[test]
    fn sources_and_flag_reads() {
        let add = Instruction::Add {
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        };
        assert_eq!(add.sources(), [Some(Reg(1)), Some(Reg(2))]);
        let sw = Instruction::Sw {
            ra: Reg(4),
            rb: Reg(5),
            offset: 8,
        };
        assert_eq!(sw.sources(), [Some(Reg(4)), Some(Reg(5))]);
        let lwz = Instruction::Lwz {
            rd: Reg(6),
            ra: Reg(7),
            offset: 0,
        };
        assert_eq!(lwz.sources(), [Some(Reg(7)), None]);
        let jr = Instruction::Jr { ra: Reg(9) };
        assert_eq!(jr.sources(), [Some(Reg(9)), None]);
        assert_eq!(Instruction::Nop.sources(), [None, None]);
        let movhi = Instruction::Movhi {
            rd: Reg(1),
            imm: 0xffff,
        };
        assert_eq!(movhi.sources(), [None, None]);

        assert!(Instruction::Bf { offset: 1 }.reads_flag());
        assert!(Instruction::Bnf { offset: -2 }.reads_flag());
        assert!(!Instruction::J { offset: 1 }.reads_flag());
        assert!(!add.reads_flag());

        assert_eq!(Instruction::Bf { offset: -3 }.relative_offset(), Some(-3));
        assert_eq!(Instruction::Jal { offset: 7 }.relative_offset(), Some(7));
        assert_eq!(jr.relative_offset(), None);
        assert_eq!(add.relative_offset(), None);
    }

    #[test]
    fn mnemonic_is_the_display_head() {
        let samples = [
            Instruction::Add {
                rd: Reg(1),
                ra: Reg(2),
                rb: Reg(3),
            },
            Instruction::Movhi { rd: Reg(1), imm: 7 },
            Instruction::Sfles {
                ra: Reg(1),
                rb: Reg(2),
            },
            Instruction::Sw {
                ra: Reg(1),
                rb: Reg(2),
                offset: 4,
            },
            Instruction::Jr { ra: Reg(9) },
            Instruction::Nop,
        ];
        for i in samples {
            assert!(MNEMONICS.contains(&i.mnemonic()));
            assert_eq!(
                i.to_string().split_whitespace().next().unwrap(),
                i.mnemonic()
            );
        }
        // The canonical list has no duplicates.
        let mut unique: Vec<&str> = MNEMONICS.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), MNEMONICS.len());
    }

    #[test]
    fn movhi_is_alu_or_class() {
        let movhi = Instruction::Movhi {
            rd: Reg(7),
            imm: 0x1234,
        };
        assert_eq!(movhi.alu_class(), Some(AluClass::Or));
        assert_eq!(movhi.destination(), Some(Reg(7)));
    }
}
