//! General-purpose register identifiers.

use std::fmt;

/// Number of general-purpose registers of the core.
pub const REGISTER_COUNT: usize = 32;

/// A general-purpose register index (`r0`–`r31`).
///
/// Register `r0` is hard-wired to zero, as on OpenRISC.
///
/// # Example
///
/// ```
/// use sfi_isa::Reg;
///
/// let r = Reg(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Reg(0).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Index of the register as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the register number is 32 or larger (such a value can only
    /// be produced by constructing `Reg` with an out-of-range literal).
    pub fn index(self) -> usize {
        assert!(
            (self.0 as usize) < REGISTER_COUNT,
            "register r{} does not exist",
            self.0
        );
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether the register number is valid (below [`REGISTER_COUNT`]).
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < REGISTER_COUNT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(value: u8) -> Self {
        Reg(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        assert_eq!(Reg::ZERO, Reg(0));
        assert!(Reg(0).is_zero());
        assert!(!Reg(1).is_zero());
        assert_eq!(Reg(31).index(), 31);
        assert!(Reg(31).is_valid());
        assert!(!Reg(32).is_valid());
        assert_eq!(Reg::from(7u8), Reg(7));
        assert_eq!(Reg(12).to_string(), "r12");
        assert_eq!(Reg::default(), Reg::ZERO);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn out_of_range_index_panics() {
        Reg(40).index();
    }
}
