//! Machine-checked documentation: every fenced ```asm block in
//! `docs/ASM.md` must assemble, so the grammar examples cannot drift
//! from the `sfi_asm` implementation.

use std::path::PathBuf;

fn asm_doc() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/ASM.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts the contents of every ```asm fenced block, with the line
/// number where each block starts.
fn asm_blocks(doc: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (index, line) in doc.lines().enumerate() {
        match &mut current {
            None if line.trim() == "```asm" => current = Some((index + 2, String::new())),
            Some(_) if line.trim() == "```" => blocks.push(current.take().unwrap()),
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
            None => {}
        }
    }
    assert!(current.is_none(), "unterminated ```asm block");
    blocks
}

#[test]
fn every_asm_example_in_the_docs_assembles() {
    let doc = asm_doc();
    let blocks = asm_blocks(&doc);
    assert!(
        blocks.len() >= 4,
        "docs/ASM.md should carry several ```asm examples, found {}",
        blocks.len()
    );
    for (line, source) in &blocks {
        if let Err(error) = sfi_asm::assemble(source) {
            panic!(
                "docs/ASM.md example starting at line {line} does not assemble:\n{}",
                error.render("docs/ASM.md (block)", source)
            );
        }
    }
}

#[test]
fn the_quick_start_example_verifies_clean_and_runs() {
    // The first block is the dot-product quick start; beyond assembling
    // it must be a *good* example: clean under the analyzer and
    // producing the right answer on the core.
    let doc = asm_doc();
    let (_, source) = &asm_blocks(&doc)[0];
    let asm = sfi_asm::assemble(source).expect("quick start assembles");
    let dmem = asm.resolved_dmem_words(4096);

    let mut config = sfi_verify::VerifyConfig::new(dmem);
    if let Some((lo, hi)) = asm.fi_window {
        config = config.with_fi_window(lo..hi);
    }
    let report = sfi_verify::verify(&asm.program, &config);
    assert!(
        report.is_clean(),
        "quick start example must verify clean:\n{:?}",
        report.diagnostics
    );

    let mut core = sfi_cpu::Core::new(asm.program.clone(), dmem);
    core.memory_mut()
        .write_block(0, &asm.input)
        .expect("input fits");
    let outcome = core.run(&sfi_cpu::RunConfig::default());
    assert!(outcome.finished(), "quick start must finish: {outcome:?}");
    let (lo, _) = asm.output.expect("quick start declares .output");
    // 1·10 + 2·20 + 3·30
    assert_eq!(
        core.memory().load_word(4 * lo).expect("result readable"),
        140,
        "dot product result"
    );
}
