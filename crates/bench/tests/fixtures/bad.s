; Known-bad fixture: assembles fine but fails sfi-verify.
; CI runs `sfi-lint --asm` over this file and asserts exit status 1.
.dmem 4
.output 0:1
l.add  r1, r7, r7      ; V004: r7 is read but never written anywhere
l.sw   0(r0), r1
