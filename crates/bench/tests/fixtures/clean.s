; Known-good fixture: a countdown loop that assembles and verifies clean.
; dmem[0] holds the input; the result (always 0) lands in dmem[1].
.dmem 4
.input 5
.output 1:2
        l.lwz   r3, 0(r0)       ; r3 = dmem[0]
loop:
        l.addi  r3, r3, -1
        l.sfne  r3, r0
        l.bf    loop
        l.sw    4(r0), r3       ; dmem[1] = 0
