//! Usage-text drift test: `perf-report --help` must exit 0 and mention
//! every flag the parser accepts, so the USAGE string cannot silently
//! fall behind `PerfArgs::parse`.

use std::process::Command;

#[test]
fn perf_report_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_perf-report");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "perf-report --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/perf.rs.
    for flag in [
        "--quick",
        "--trials",
        "--out",
        "--baseline",
        "--tolerance",
        "--profile",
        "--help",
    ] {
        assert!(
            help.contains(flag),
            "perf-report --help must mention {flag}"
        );
    }
}
