//! Usage-text drift tests: `perf-report --help` and `sfi-lint --help`
//! must exit 0 and mention every flag their parsers accept, so the USAGE
//! strings cannot silently fall behind the argument matchers.

use std::process::Command;

#[test]
fn perf_report_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_perf-report");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "perf-report --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/perf.rs.
    for flag in [
        "--quick",
        "--trials",
        "--out",
        "--baseline",
        "--tolerance",
        "--profile",
        "--help",
    ] {
        assert!(
            help.contains(flag),
            "perf-report --help must mention {flag}"
        );
    }
}

#[test]
fn sfi_lint_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_sfi-lint");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "sfi-lint --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/bin/sfi_lint.rs.
    for flag in ["--json", "--words", "--dmem", "--fi-window", "--help"] {
        assert!(help.contains(flag), "sfi-lint --help must mention {flag}");
    }
}

#[test]
fn sfi_lint_over_the_builtin_kernels_is_clean() {
    let bin = env!("CARGO_BIN_EXE_sfi-lint");
    let output = Command::new(bin)
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin}: {err}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "built-in kernels must lint clean:\n{stdout}"
    );
    assert!(
        stdout.contains("9 target(s), 0 error(s), 0 warning(s)"),
        "{stdout}"
    );

    // An unknown kernel name is a usage error (exit 2), not a panic.
    let output = Command::new(bin)
        .arg("no_such_kernel")
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(2));
}
