//! Usage-text drift tests: `perf-report --help`, `sfi-lint --help` and
//! `sfi-asm --help` must exit 0 and mention every flag their parsers
//! accept, so the USAGE strings cannot silently fall behind the argument
//! matchers.  The assembler binaries additionally pin their exit-status
//! contract: 2 for usage/assembly errors (with source spans), 1 for
//! verify findings, 0 when clean.

use std::process::Command;

#[test]
fn perf_report_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_perf-report");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "perf-report --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/perf.rs.
    for flag in [
        "--quick",
        "--trials",
        "--out",
        "--baseline",
        "--tolerance",
        "--profile",
        "--help",
    ] {
        assert!(
            help.contains(flag),
            "perf-report --help must mention {flag}"
        );
    }
}

#[test]
fn sfi_lint_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_sfi-lint");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "sfi-lint --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/bin/sfi_lint.rs.
    for flag in [
        "--json",
        "--words",
        "--asm",
        "--dmem",
        "--fi-window",
        "--help",
    ] {
        assert!(help.contains(flag), "sfi-lint --help must mention {flag}");
    }
}

#[test]
fn sfi_asm_help_mentions_every_accepted_flag() {
    let bin = env!("CARGO_BIN_EXE_sfi-asm");
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "sfi-asm --help must exit 0, got {:?}",
        output.status
    );
    let help = String::from_utf8(output.stdout).expect("help is UTF-8");
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/bench/src/bin/sfi_asm.rs.
    for flag in [
        "--words",
        "--listing",
        "--json",
        "--verify",
        "--dmem",
        "--seed",
        "--out",
        "--help",
    ] {
        assert!(help.contains(flag), "sfi-asm --help must mention {flag}");
    }
}

/// Writes `source` to a fresh temp file and returns its path.
fn temp_asm_file(name: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sfi-usage-{}-{name}", std::process::id()));
    std::fs::write(&path, source).expect("write temp asm");
    path
}

#[test]
fn sfi_asm_assembly_errors_exit_2_with_source_spans() {
    let bin = env!("CARGO_BIN_EXE_sfi-asm");
    // An unknown directive and a duplicate label are both assembly
    // errors: exit status 2 with a rendered caret span on stderr.
    for (name, source, expected) in [
        (
            "unknown-directive.s",
            ".bogus 4\nl.nop\n",
            "unknown directive",
        ),
        (
            "duplicate-label.s",
            "top:\nl.nop\ntop:\nl.nop\n",
            "duplicate label",
        ),
    ] {
        let path = temp_asm_file(name, source);
        let output = Command::new(bin).arg(&path).output().expect("runs");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name}: expected exit 2, got {:?}\n{stderr}",
            output.status
        );
        assert!(stderr.contains(expected), "{name}: {stderr}");
        // The span rendering names the file, the line and points a caret.
        assert!(
            stderr.contains("-->") && stderr.contains('^'),
            "{name}: expected a rendered source span:\n{stderr}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn sfi_asm_verify_gate_exits_1_on_findings_and_0_when_clean() {
    let bin = env!("CARGO_BIN_EXE_sfi-asm");
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");

    let output = Command::new(bin)
        .args(["--verify", "--words"])
        .arg(fixtures.join("bad.s"))
        .output()
        .expect("runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1), "{stderr}");
    assert!(
        stderr.contains("bad.s:"),
        "findings carry source lines: {stderr}"
    );

    let output = Command::new(bin)
        .args(["--verify", "--words"])
        .arg(fixtures.join("clean.s"))
        .output()
        .expect("runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn sfi_lint_asm_fixture_exits_1_with_line_mapped_findings() {
    let bin = env!("CARGO_BIN_EXE_sfi-lint");
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let output = Command::new(bin)
        .arg("--asm")
        .arg(fixtures.join("bad.s"))
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(output.status.code(), Some(1), "{stdout}");
    assert!(
        stdout.contains("bad.s:5)"),
        "finding must map back to the fixture source line:\n{stdout}"
    );
}

#[test]
fn sfi_lint_over_the_builtin_kernels_is_clean() {
    let bin = env!("CARGO_BIN_EXE_sfi-lint");
    let output = Command::new(bin)
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin}: {err}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "built-in kernels must lint clean:\n{stdout}"
    );
    assert!(
        stdout.contains("9 target(s), 0 error(s), 0 warning(s)"),
        "{stdout}"
    );

    // An unknown kernel name is a usage error (exit 2), not a panic.
    let output = Command::new(bin)
        .arg("no_such_kernel")
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(2));
}
