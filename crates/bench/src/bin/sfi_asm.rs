//! `sfi-asm`: the text-assembly front end from the command line.
//!
//! Assembles a `.s` file into encoded instruction words (default), a
//! resolved listing (`--listing`), or a serve `program` recipe object
//! (`--json`), optionally running the `sfi-verify` analyzer (`--verify`)
//! with findings mapped back to source lines.  Exit status: 0 on success,
//! 1 when `--verify` reports findings, 2 on usage or assembly errors.

use sfi_bench::asm_cli::{render_findings, render_output, verify_assembly, AsmOutput, ASM_USAGE};
use std::process::ExitCode;

struct Args {
    output: AsmOutput,
    verify: bool,
    dmem: usize,
    seed: u64,
    out: Option<String>,
    file: String,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut output = None;
    let mut verify = false;
    let mut dmem = 4_096usize;
    let mut seed = 1u64;
    let mut out = None;
    let mut file = None;
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let set_output = |slot: &mut Option<AsmOutput>, mode: AsmOutput| -> Result<(), String> {
        match slot.replace(mode) {
            None => Ok(()),
            Some(_) => Err("--words, --listing and --json are mutually exclusive".into()),
        }
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--words" => set_output(&mut output, AsmOutput::Words)?,
            "--listing" => set_output(&mut output, AsmOutput::Listing)?,
            "--json" => set_output(&mut output, AsmOutput::Recipe)?,
            "--verify" => verify = true,
            "--dmem" => {
                let raw = value(argv, &mut i, "--dmem")?;
                dmem = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--dmem needs a positive word count, got '{raw}'"))?;
            }
            "--seed" => {
                let raw = value(argv, &mut i, "--seed")?;
                seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs a 64-bit integer, got '{raw}'"))?;
            }
            "--out" => out = Some(value(argv, &mut i, "--out")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            path => {
                if file.replace(path.to_string()).is_some() {
                    return Err("exactly one FILE.s argument is expected".into());
                }
            }
        }
        i += 1;
    }
    let file = file.ok_or_else(|| "a FILE.s argument is required".to_string())?;
    Ok(Some(Args {
        output: output.unwrap_or(AsmOutput::Words),
        verify,
        dmem,
        seed,
        out,
        file,
    }))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let source = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let asm = match sfi_asm::assemble(&source) {
        Ok(asm) => asm,
        Err(error) => return Err(error.render(&args.file, &source)),
    };
    let rendered = render_output(&asm, args.output, args.dmem, args.seed)?;
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => print!("{rendered}"),
    }
    if args.verify {
        let report = verify_assembly(&asm, args.dmem);
        if !report.is_clean() {
            eprint!("{}", render_findings(&args.file, &asm, &report));
            eprintln!(
                "{}: {} error(s), {} warning(s)",
                args.file,
                report.error_count(),
                report.warning_count()
            );
            return Ok(ExitCode::from(1));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{ASM_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("sfi-asm: {message}");
            eprint!("{ASM_USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
