//! `perf-report`: the tracked performance baseline of the trial pipeline.
//!
//! Measures Monte-Carlo throughput (trials/sec and simulated cycles/sec)
//! of the statistical DTA model (model C) across the paper suite and the
//! extended workload zoo, at two operating scenarios per benchmark:
//!
//! * `below_limit` — 5 % under the STA limit with supply noise: the
//!   fault-free fast path (every endpoint probability is zero almost
//!   every cycle),
//! * `transition` — 15 % over the STA limit with supply noise: the
//!   gradual-degradation region the paper's figures live in.
//!
//! The results are written to `BENCH_iss.json` so successive PRs can
//! track the throughput trajectory; run with `--quick` for the CI smoke
//! configuration (scaled-down case study, few trials).

use sfi_bench::perf::{self, PerfArgs};
use sfi_core::json::Json;

fn main() {
    let args = PerfArgs::from_env();
    let out = args.out_path();
    let report = perf::run(&args);
    perf::print_table(&report);
    if args.profile {
        perf::print_profile();
    }
    match perf::write_json(&report, out) {
        Ok(()) => println!("\nwrote {out}"),
        Err(err) => {
            eprintln!("error: failed to write {out}: {err}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &args.baseline {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            .unwrap_or_else(|err| {
                eprintln!("error: cannot read baseline {path}: {err}");
                std::process::exit(1);
            });
        match perf::check_baseline(&report, &doc, args.tolerance) {
            Ok(verdict) if verdict.pass => println!(
                "baseline gate: pass ({:.1} trials/s vs {:.1} baseline, tolerance {:.0}%)",
                verdict.current_tps,
                verdict.baseline_tps,
                100.0 * args.tolerance
            ),
            Ok(verdict) => {
                eprintln!(
                    "error: throughput regression: {:.1} trials/s is more than {:.0}% below \
                     the baseline {:.1} ({path})",
                    verdict.current_tps,
                    100.0 * args.tolerance,
                    verdict.baseline_tps
                );
                std::process::exit(1);
            }
            Err(message) => {
                eprintln!("error: baseline {path}: {message}");
                std::process::exit(1);
            }
        }
    }
}
