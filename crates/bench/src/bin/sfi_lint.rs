//! `sfi-lint`: static analysis of guest programs from the command line.
//!
//! Lints the built-in benchmark kernels (default), a named subset of
//! them, an arbitrary word stream (`--words FILE`), or `.s` text assembly
//! (`--asm FILE`, assembled with `sfi-asm` and findings mapped back to
//! source lines), and reports the `sfi-verify` findings as a
//! human-readable report or a JSON document (`--json`).  Exit status: 0
//! when every target is clean, 1 when any finding was reported, 2 on
//! usage (or assembly) errors.

use sfi_bench::lint::{
    asm_target, builtin_targets, lint_to_json, render_human, words_target, LintTarget, LINT_USAGE,
};
use std::process::ExitCode;

struct Args {
    json: bool,
    words: Option<String>,
    asm: Option<String>,
    dmem: usize,
    fi_window: Option<(u32, u32)>,
    targets: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        json: false,
        words: None,
        asm: None,
        dmem: 4_096,
        fi_window: None,
        targets: Vec::new(),
    };
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--json" => args.json = true,
            "--words" => args.words = Some(value(argv, &mut i, "--words")?),
            "--asm" => args.asm = Some(value(argv, &mut i, "--asm")?),
            "--dmem" => {
                let raw = value(argv, &mut i, "--dmem")?;
                args.dmem = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--dmem needs a positive word count, got '{raw}'"))?;
            }
            "--fi-window" => {
                let raw = value(argv, &mut i, "--fi-window")?;
                let parsed = raw
                    .split_once(':')
                    .and_then(|(lo, hi)| Some((lo.parse::<u32>().ok()?, hi.parse::<u32>().ok()?)));
                args.fi_window = Some(parsed.ok_or_else(|| {
                    format!("--fi-window needs LO:HI instruction addresses, got '{raw}'")
                })?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            name => args.targets.push(name.to_string()),
        }
        i += 1;
    }
    if (args.words.is_some() || args.asm.is_some()) && !args.targets.is_empty() {
        return Err("--words/--asm and named built-in targets are mutually exclusive".into());
    }
    if args.words.is_some() && args.asm.is_some() {
        return Err("--words and --asm are mutually exclusive".into());
    }
    Ok(Some(args))
}

fn collect_targets(args: &Args) -> Result<Vec<LintTarget>, String> {
    if let Some(path) = &args.asm {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let window = args.fi_window.map(|(lo, hi)| lo..hi);
        return Ok(vec![asm_target(path, &text, args.dmem, window)?]);
    }
    if let Some(path) = &args.words {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let window = args.fi_window.map(|(lo, hi)| lo..hi);
        return Ok(vec![words_target(path, &text, args.dmem, window)?]);
    }
    let builtins = builtin_targets();
    if args.targets.is_empty() {
        return Ok(builtins);
    }
    let known: Vec<&str> = builtins.iter().map(|t| t.name.as_str()).collect();
    let mut picked = Vec::new();
    for name in &args.targets {
        match builtins.iter().position(|t| &t.name == name) {
            Some(_) => picked.push(name.clone()),
            None => {
                return Err(format!(
                    "unknown built-in kernel '{name}' (known: {})",
                    known.join(", ")
                ))
            }
        }
    }
    Ok(builtin_targets()
        .into_iter()
        .filter(|t| picked.contains(&t.name))
        .collect())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{LINT_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("sfi-lint: {message}");
            eprint!("{LINT_USAGE}");
            return ExitCode::from(2);
        }
    };
    let targets = match collect_targets(&args) {
        Ok(targets) => targets,
        Err(message) => {
            eprintln!("sfi-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let results: Vec<_> = targets
        .into_iter()
        .map(|target| {
            let report = target.verify();
            (target, report)
        })
        .collect();
    let findings: usize = results.iter().map(|(_, r)| r.diagnostics.len()).sum();

    if args.json {
        println!("{}", lint_to_json(&results));
    } else {
        for (target, report) in &results {
            print!("{}", render_human(target, report));
        }
        let errors: usize = results.iter().map(|(_, r)| r.error_count()).sum();
        let warnings: usize = results.iter().map(|(_, r)| r.warning_count()).sum();
        println!(
            "{} target(s), {errors} error(s), {warnings} warning(s)",
            results.len()
        );
    }
    if findings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
