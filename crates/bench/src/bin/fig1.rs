//! Fig. 1: FI rate and finished/correct probability of the median
//! benchmark under model B (no noise) and model B+ (10 mV, 25 mV), around
//! the static timing limit.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_core::experiment::{frequency_grid, frequency_sweep, FaultModel};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn main() {
    let args = ExperimentArgs::from_env();
    print_header(
        "Fig. 1: median under models B / B+ near the STA limit",
        &args,
    );
    let study = args.build_study();
    let bench = MedianBenchmark::new(129, 1);
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz");

    for (label, sigma_mv, model) in [
        (
            "(a) model B,  sigma = 0 mV",
            0.0,
            FaultModel::StaPeriodViolation,
        ),
        (
            "(b) model B+, sigma = 10 mV",
            10.0,
            FaultModel::StaWithNoise,
        ),
        (
            "(c) model B+, sigma = 25 mV",
            25.0,
            FaultModel::StaWithNoise,
        ),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:>10} {:>10} {:>10} {:>14}",
            "f [MHz]", "finished", "correct", "FI/kCycle"
        );
        let point = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(sigma_mv);
        // Scan a narrow band around the first point of fault injection,
        // which moves to lower frequencies as the noise level grows.
        let lo = sta * (1.0 - 0.004 * (1.0 + sigma_mv));
        let hi = sta * 1.01;
        let freqs = frequency_grid(lo, hi, args.points);
        let sweep = frequency_sweep(&study, &bench, model, point, &freqs, args.trials, 7);
        for p in &sweep {
            println!(
                "{:>10.1} {:>9.0}% {:>9.0}% {:>14.2}",
                p.freq_mhz,
                100.0 * p.summary.finished_fraction(),
                100.0 * p.summary.correct_fraction(),
                p.summary.mean_fi_rate()
            );
        }
    }
}
