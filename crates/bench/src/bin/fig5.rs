//! Fig. 5: finished / correct / FI-rate / relative-error vs frequency for
//! the median benchmark at Vdd ∈ {0.7, 0.8} V and σ ∈ {0, 10, 25} mV
//! (model C), with the point of first failure and its gain over the STA
//! limit.
//!
//! All six panels are one [`CampaignSpec`]: the engine interleaves their
//! trials across worker threads, and `--checkpoint FILE` makes the whole
//! figure resumable.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_campaign::{CampaignSpec, TrialBudget};
use sfi_core::experiment::{frequency_grid, overscaling_gain, point_of_first_failure, FaultModel};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn main() {
    let args = ExperimentArgs::from_env();
    print_header("Fig. 5: median benchmark under model C", &args);
    let study = args.build_study();

    let panels = [
        ("(a)", 0.7, 0.0),
        ("(b)", 0.7, 10.0),
        ("(c)", 0.7, 25.0),
        ("(d)", 0.8, 0.0),
        ("(e)", 0.8, 10.0),
        ("(f)", 0.8, 25.0),
    ];

    let mut spec = CampaignSpec::new("fig5", 11);
    let median = spec.add_benchmark(MedianBenchmark::new(129, 1));
    let sweeps: Vec<_> = panels
        .iter()
        .map(|&(_, vdd, sigma)| {
            let sta = study.sta_limit_mhz(vdd);
            let point = OperatingPoint::new(sta, vdd).with_noise_sigma_mv(sigma);
            let freqs = frequency_grid(sta * 0.92, sta * 1.35, args.points);
            spec.add_frequency_sweep(
                median,
                FaultModel::StatisticalDta,
                point,
                &freqs,
                TrialBudget::fixed(args.trials),
            )
        })
        .collect();

    let result = args.engine().run(&study, &spec);

    for (&(panel, vdd, sigma), cells) in panels.iter().zip(sweeps) {
        let sta = study.sta_limit_mhz(vdd);
        println!(
            "\n--- {panel} Vdd = {vdd} V, noise sigma = {sigma} mV (STA limit {sta:.1} MHz) ---"
        );
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>14}",
            "f [MHz]", "finished", "correct", "FI/kCycle", "rel. error"
        );
        let sweep = result.sweep_points(&spec, cells);
        for p in &sweep {
            println!(
                "{:>10.1} {:>9.0}% {:>9.0}% {:>12.2} {:>13.1}%",
                p.freq_mhz,
                100.0 * p.summary.finished_fraction(),
                100.0 * p.summary.correct_fraction(),
                p.summary.mean_fi_rate(),
                100.0 * p.summary.mean_output_error()
            );
        }
        match point_of_first_failure(&sweep) {
            Some(poff) => println!(
                "PoFF = {:.1} MHz, gain over STA = {:+.1}%",
                poff,
                100.0 * overscaling_gain(poff, sta)
            ),
            None => println!("PoFF not reached within the swept range"),
        }
    }
    println!(
        "\nPaper reference gains at the PoFF: (a) 11.4%, (b) 3.3%, (d) 10.1%, (e) 6.9%, (f) 0.1%."
    );
}
