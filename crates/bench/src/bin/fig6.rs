//! Fig. 6: finished / correct / FI-rate / output-error vs frequency for the
//! matrix-multiplication (8- and 16-bit), k-means and Dijkstra benchmarks
//! at 0.7 V with 10 mV supply noise, under model C, contrasted with the
//! hard failure threshold of model B+.
//!
//! The B+ probe and all four benchmark sweeps are cells of one
//! [`CampaignSpec`] executed by the parallel campaign engine.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_campaign::{CampaignSpec, TrialBudget};
use sfi_core::experiment::{frequency_grid, overscaling_gain, point_of_first_failure, FaultModel};
use sfi_fault::OperatingPoint;
use sfi_kernels::dijkstra::DijkstraBenchmark;
use sfi_kernels::kmeans::KMeansBenchmark;
use sfi_kernels::matmul::{ElementWidth, MatrixMultiplyBenchmark};

fn main() {
    let args = ExperimentArgs::from_env();
    print_header(
        "Fig. 6: benchmark comparison under model C (0.7 V, sigma = 10 mV)",
        &args,
    );
    let study = args.build_study();
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz");

    let point = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0);
    let mut spec = CampaignSpec::new("fig6", 13);
    let benches = [
        spec.add_benchmark(MatrixMultiplyBenchmark::new(16, ElementWidth::Bits8, 2)),
        spec.add_benchmark(MatrixMultiplyBenchmark::new(16, ElementWidth::Bits16, 2)),
        spec.add_benchmark(KMeansBenchmark::new(8, 2, 12, 2)),
        spec.add_benchmark(DijkstraBenchmark::new(10, 2)),
    ];

    // Model B+ hard threshold, identical for all benchmarks.
    let probe = frequency_grid(sta * 0.9, sta * 1.05, 16);
    let bplus_cells = spec.add_frequency_sweep(
        benches[0],
        FaultModel::StaWithNoise,
        point,
        &probe,
        TrialBudget::fixed(args.trials.min(5)),
    );

    let panels = ["(a)", "(b)", "(c)", "(d)"];
    let sweeps: Vec<_> = benches
        .iter()
        .map(|&bench| {
            // Dijkstra has a very narrow transition region; sweep it more
            // finely.
            let name = spec.benchmarks()[bench].name();
            let span = if name == "dijkstra" { 1.12 } else { 1.35 };
            let freqs = frequency_grid(sta * 0.95, sta * span, args.points);
            spec.add_frequency_sweep(
                bench,
                FaultModel::StatisticalDta,
                point,
                &freqs,
                TrialBudget::fixed(args.trials),
            )
        })
        .collect();

    let result = args.engine().run(&study, &spec);

    if let Some(threshold) = point_of_first_failure(&result.sweep_points(&spec, bplus_cells)) {
        println!("model B+ hard failure threshold (all benchmarks): {threshold:.1} MHz\n");
    }

    for (panel, (bench, cells)) in panels.iter().zip(benches.iter().zip(sweeps)) {
        let bench = &spec.benchmarks()[*bench];
        println!(
            "--- {panel} {} (error metric: {}) ---",
            bench.name(),
            bench.error_metric()
        );
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>14}",
            "f [MHz]", "finished", "correct", "FI/kCycle", "output error"
        );
        let sweep = result.sweep_points(&spec, cells);
        for p in &sweep {
            println!(
                "{:>10.1} {:>9.0}% {:>9.0}% {:>12.2} {:>14.4}",
                p.freq_mhz,
                100.0 * p.summary.finished_fraction(),
                100.0 * p.summary.correct_fraction(),
                p.summary.mean_fi_rate(),
                p.summary.mean_output_error()
            );
        }
        match point_of_first_failure(&sweep) {
            Some(poff) => println!(
                "PoFF = {poff:.1} MHz, gain over STA = {:+.1}%\n",
                100.0 * overscaling_gain(poff, sta)
            ),
            None => println!("PoFF not reached within the swept range\n"),
        }
    }
}
