//! Table 1: overview of benchmark properties (type, compute/control
//! weight, size, kernel cycles, output error metric).
//!
//! The kernel-cycle column comes from a fault-free [`CampaignSpec`] over
//! the whole suite (one cell per benchmark); the instruction-mix columns
//! come from one direct ISS run per benchmark.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_campaign::{CampaignSpec, CellSpec, TrialBudget};
use sfi_core::experiment::FaultModel;
use sfi_cpu::{Core, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::{extended_suite, paper_suite};

fn main() {
    let args = ExperimentArgs::from_env();
    print_header("Table 1: benchmark properties", &args);
    let study = args.build_study();

    let suite = if args.extended {
        extended_suite(1)
    } else {
        paper_suite(1)
    };
    let mut spec = CampaignSpec::new("table1", 1);
    // Fault-free golden runs: the operating point is irrelevant, one trial
    // per benchmark suffices (the golden run is deterministic).
    let point = OperatingPoint::new(study.sta_limit_mhz(0.7), 0.7);
    for bench in suite {
        let b = spec.add_shared_benchmark(bench.into());
        spec.add_cell(CellSpec {
            benchmark: b,
            model: FaultModel::None,
            point,
            budget: TrialBudget::fixed(1),
        });
    }
    let result = args.engine().run(&study, &spec);

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}  output error metric",
        "benchmark", "compute", "control", "kernel cyc", "mul/kcyc"
    );
    for (index, bench) in spec.benchmarks().iter().enumerate() {
        let cycles = result.cells[index]
            .stats
            .mean_cycles()
            .expect("one golden trial") as u64;
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let _ = core.run(&RunConfig::default());
        let stats = core.stats();
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>12} {:>10.1}  {}",
            bench.name(),
            100.0 * stats.compute_fraction(),
            100.0 * stats.control_fraction(),
            cycles,
            stats.multiplications as f64 * 1000.0 / stats.cycles as f64,
            bench.error_metric()
        );
    }
}
