//! Table 1: overview of benchmark properties (type, compute/control
//! weight, size, kernel cycles, output error metric).

use sfi_bench::{print_header, ExperimentArgs};
use sfi_core::experiment::golden_cycles;
use sfi_cpu::{Core, RunConfig};
use sfi_kernels::paper_suite;

fn main() {
    let args = ExperimentArgs::from_env();
    print_header("Table 1: benchmark properties", &args);
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}  {}",
        "benchmark", "compute", "control", "kernel cyc", "mul/kcyc", "output error metric"
    );
    for bench in paper_suite(1) {
        let cycles = golden_cycles(bench.as_ref());
        let mut core = Core::new(bench.program().clone(), bench.dmem_words());
        bench.initialize(core.memory_mut());
        let _ = core.run(&RunConfig::default());
        let stats = core.stats();
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>12} {:>10.1}  {}",
            bench.name(),
            100.0 * stats.compute_fraction(),
            100.0 * stats.control_fraction(),
            cycles,
            stats.multiplications as f64 * 1000.0 / stats.cycles as f64,
            bench.error_metric()
        );
    }
}
