//! Fig. 4: MSE vs frequency for 16-bit addition, 32-bit addition and
//! 32-bit multiplication micro-kernels at 0.7 V with 10 mV noise (model C).
//!
//! The micro-kernels implement [`Benchmark`], so the whole figure is one
//! [`CampaignSpec`] (3 kernels × `--points` frequencies) run by the
//! parallel campaign engine.  The MSE column reports the mean squared
//! error of the runs that finished; crashed runs show up in the
//! `finished` fraction instead of polluting the error average.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_campaign::{CampaignSpec, TrialBudget};
use sfi_core::experiment::FaultModel;
use sfi_cpu::Memory;
use sfi_fault::OperatingPoint;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Reg};
use sfi_kernels::data::random_values;
use sfi_kernels::Benchmark;
use sfi_netlist::alu::AluOp;
use std::ops::Range;

/// A micro-kernel applying one ALU instruction to an array of random
/// operand pairs and storing the results.
struct SingleInstructionKernel {
    name: &'static str,
    op: AluOp,
    a: Vec<u32>,
    b: Vec<u32>,
    program: sfi_isa::Program,
    window: Range<u32>,
}

impl SingleInstructionKernel {
    fn new(name: &'static str, op: AluOp, operand_bits: u32, count: usize, seed: u64) -> Self {
        // Capped at u32::MAX: `1 << 32` would truncate to a zero bound.
        let bound = if operand_bits >= 32 {
            u32::MAX
        } else {
            1u32 << operand_bits
        };
        let a = random_values(count, bound, seed);
        let b = random_values(count, bound, seed + 1);
        let mut p = ProgramBuilder::new();
        let (a_base, b_base, out_base, n, i) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let (ptr, va, vb, res) = (Reg(6), Reg(7), Reg(8), Reg(9));
        p.push(Instruction::Addi {
            rd: a_base,
            ra: Reg(0),
            imm: 0,
        });
        p.load_immediate(b_base, (4 * count) as u32);
        p.load_immediate(out_base, (8 * count) as u32);
        p.push(Instruction::Addi {
            rd: n,
            ra: Reg(0),
            imm: count as i16,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: Reg(0),
            imm: 0,
        });
        let start = p.here();
        let head = p.label();
        p.push(Instruction::Slli {
            rd: ptr,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: a_base,
        });
        p.push(Instruction::Lwz {
            rd: va,
            ra: ptr,
            offset: 0,
        });
        p.push(Instruction::Slli {
            rd: ptr,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: b_base,
        });
        p.push(Instruction::Lwz {
            rd: vb,
            ra: ptr,
            offset: 0,
        });
        match op {
            AluOp::Mul => p.push(Instruction::Mul {
                rd: res,
                ra: va,
                rb: vb,
            }),
            _ => p.push(Instruction::Add {
                rd: res,
                ra: va,
                rb: vb,
            }),
        };
        p.push(Instruction::Slli {
            rd: ptr,
            ra: i,
            shamt: 2,
        });
        p.push(Instruction::Add {
            rd: ptr,
            ra: ptr,
            rb: out_base,
        });
        p.push(Instruction::Sw {
            ra: ptr,
            rb: res,
            offset: 0,
        });
        p.push(Instruction::Addi {
            rd: i,
            ra: i,
            imm: 1,
        });
        p.push(Instruction::Sfltu { ra: i, rb: n });
        p.branch_if_flag(head);
        let end = p.here();
        SingleInstructionKernel {
            name,
            op,
            a,
            b,
            program: p.build(),
            window: start..end,
        }
    }

    fn golden(&self) -> Vec<u32> {
        self.a
            .iter()
            .zip(&self.b)
            .map(|(&x, &y)| match self.op {
                AluOp::Mul => x.wrapping_mul(y),
                _ => x.wrapping_add(y),
            })
            .collect()
    }
}

impl Benchmark for SingleInstructionKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn program(&self) -> &sfi_isa::Program {
        &self.program
    }

    fn fi_window(&self) -> Range<u32> {
        self.window.clone()
    }

    fn dmem_words(&self) -> usize {
        3 * self.a.len() + 8
    }

    fn initialize(&self, memory: &mut Memory) {
        memory.write_block(0, &self.a).expect("dmem");
        memory
            .write_block((4 * self.a.len()) as u32, &self.b)
            .expect("dmem");
    }

    fn try_output_error(&self, memory: &Memory) -> Option<f64> {
        let golden = self.golden();
        let got = memory
            .read_block((8 * self.a.len()) as u32, self.a.len())
            .ok()?;
        let mse = golden
            .iter()
            .zip(&got)
            .map(|(&g, &o)| {
                let d = g as f64 - o as f64;
                d * d
            })
            .sum::<f64>()
            / self.a.len() as f64;
        Some(mse)
    }

    fn error_metric(&self) -> &'static str {
        "mean squared error"
    }
}

fn main() {
    let args = ExperimentArgs::from_env();
    print_header("Fig. 4: MSE vs frequency per instruction (model C)", &args);
    let study = args.build_study();
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz\n");

    let count = 256usize;
    let mut spec = CampaignSpec::new("fig4", 1000);
    let kernels = [
        (
            "l.add 16-bit",
            spec.add_benchmark(SingleInstructionKernel::new(
                "add16",
                AluOp::Add,
                16,
                count,
                3,
            )),
        ),
        (
            "l.add 32-bit",
            spec.add_benchmark(SingleInstructionKernel::new(
                "add32",
                AluOp::Add,
                32,
                count,
                3,
            )),
        ),
        (
            "l.mul 32-bit",
            spec.add_benchmark(SingleInstructionKernel::new(
                "mul32",
                AluOp::Mul,
                16,
                count,
                3,
            )),
        ),
    ];
    let freqs: Vec<f64> = (0..args.points)
        .map(|i| sta * (0.95 + 0.85 * i as f64 / (args.points - 1) as f64))
        .collect();
    let point = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0);
    let sweeps: Vec<_> = kernels
        .iter()
        .map(|&(_, kernel)| {
            spec.add_frequency_sweep(
                kernel,
                FaultModel::StatisticalDta,
                point,
                &freqs,
                TrialBudget::fixed(args.trials),
            )
        })
        .collect();

    let result = args.engine().run(&study, &spec);

    println!(
        "{:>10} {:>18} {:>18} {:>18}",
        "f [MHz]", "MSE add16", "MSE add32", "MSE mul32"
    );
    let mut first_fail = [f64::NAN; 3];
    for (fi, &f) in freqs.iter().enumerate() {
        let mut row = format!("{f:>10.1}");
        for (k, cells) in sweeps.iter().enumerate() {
            let stats = &result.cells[cells.start + fi].stats;
            let mse = stats.mean_output_error().unwrap_or(f64::NAN);
            if (mse > 0.0 || stats.correct_fraction() < 1.0) && first_fail[k].is_nan() {
                first_fail[k] = f;
            }
            row.push_str(&format!(" {mse:>18.3e}"));
        }
        println!("{row}");
    }
    println!();
    for (k, (name, _)) in kernels.iter().enumerate() {
        println!(
            "first calculation errors ({name}): {:.1} MHz",
            first_fail[k]
        );
    }
    println!(
        "Paper reference ordering: mul (685 MHz) < add 32-bit (746 MHz) < add 16-bit (877 MHz)."
    );
}
