//! Fig. 4: MSE vs frequency for 16-bit addition, 32-bit addition and
//! 32-bit multiplication micro-kernels at 0.7 V with 10 mV noise (model C).

use sfi_bench::{print_header, ExperimentArgs};
use sfi_cpu::{Core, FaultInjector, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_isa::program::ProgramBuilder;
use sfi_isa::{Instruction, Reg};
use sfi_kernels::data::random_values;
use sfi_netlist::alu::AluOp;
use std::ops::Range;

/// A micro-kernel applying one ALU instruction to an array of random
/// operand pairs and storing the results.
struct SingleInstructionKernel {
    op: AluOp,
    a: Vec<u32>,
    b: Vec<u32>,
    program: sfi_isa::Program,
    window: Range<u32>,
}

impl SingleInstructionKernel {
    fn new(op: AluOp, operand_bits: u32, count: usize, seed: u64) -> Self {
        let bound = 1u64 << operand_bits;
        let a = random_values(count, bound as u32, seed);
        let b = random_values(count, bound as u32, seed + 1);
        let mut p = ProgramBuilder::new();
        let (a_base, b_base, out_base, n, i) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let (ptr, va, vb, res) = (Reg(6), Reg(7), Reg(8), Reg(9));
        p.push(Instruction::Addi { rd: a_base, ra: Reg(0), imm: 0 });
        p.load_immediate(b_base, (4 * count) as u32);
        p.load_immediate(out_base, (8 * count) as u32);
        p.push(Instruction::Addi { rd: n, ra: Reg(0), imm: count as i16 });
        p.push(Instruction::Addi { rd: i, ra: Reg(0), imm: 0 });
        let start = p.here();
        let head = p.label();
        p.push(Instruction::Slli { rd: ptr, ra: i, shamt: 2 });
        p.push(Instruction::Add { rd: ptr, ra: ptr, rb: a_base });
        p.push(Instruction::Lwz { rd: va, ra: ptr, offset: 0 });
        p.push(Instruction::Slli { rd: ptr, ra: i, shamt: 2 });
        p.push(Instruction::Add { rd: ptr, ra: ptr, rb: b_base });
        p.push(Instruction::Lwz { rd: vb, ra: ptr, offset: 0 });
        match op {
            AluOp::Mul => p.push(Instruction::Mul { rd: res, ra: va, rb: vb }),
            _ => p.push(Instruction::Add { rd: res, ra: va, rb: vb }),
        };
        p.push(Instruction::Slli { rd: ptr, ra: i, shamt: 2 });
        p.push(Instruction::Add { rd: ptr, ra: ptr, rb: out_base });
        p.push(Instruction::Sw { ra: ptr, rb: res, offset: 0 });
        p.push(Instruction::Addi { rd: i, ra: i, imm: 1 });
        p.push(Instruction::Sfltu { ra: i, rb: n });
        p.branch_if_flag(head);
        let end = p.here();
        SingleInstructionKernel { op, a, b, program: p.build(), window: start..end }
    }

    fn golden(&self) -> Vec<u32> {
        self.a
            .iter()
            .zip(&self.b)
            .map(|(&x, &y)| match self.op {
                AluOp::Mul => x.wrapping_mul(y),
                _ => x.wrapping_add(y),
            })
            .collect()
    }

    fn mse(&self, memory: &sfi_cpu::Memory) -> f64 {
        let golden = self.golden();
        let got = memory.read_block((8 * self.a.len()) as u32, self.a.len()).unwrap_or_default();
        golden
            .iter()
            .zip(got.iter().chain(std::iter::repeat(&0)))
            .map(|(&g, &o)| {
                let d = g as f64 - o as f64;
                d * d
            })
            .sum::<f64>()
            / self.a.len() as f64
    }
}

fn main() {
    let args = ExperimentArgs::from_env();
    print_header("Fig. 4: MSE vs frequency per instruction (model C)", &args);
    let study = args.build_study();
    let sta = study.sta_limit_mhz(0.7);
    println!("STA limit @ 0.7 V: {sta:.1} MHz\n");

    let count = 256usize;
    let kernels = [
        ("l.add 16-bit", SingleInstructionKernel::new(AluOp::Add, 16, count, 3)),
        ("l.add 32-bit", SingleInstructionKernel::new(AluOp::Add, 32, count, 3)),
        ("l.mul 32-bit", SingleInstructionKernel::new(AluOp::Mul, 16, count, 3)),
    ];

    println!("{:>10} {:>18} {:>18} {:>18}", "f [MHz]", "MSE add16", "MSE add32", "MSE mul32");
    let freqs: Vec<f64> =
        (0..args.points).map(|i| sta * (0.95 + 0.85 * i as f64 / (args.points - 1) as f64)).collect();
    let mut first_fail = [f64::NAN; 3];
    for &f in &freqs {
        let mut row = format!("{f:>10.1}");
        for (k, (_, kernel)) in kernels.iter().enumerate() {
            let mut total = 0.0;
            for trial in 0..args.trials {
                let point = OperatingPoint::new(f, 0.7).with_noise_sigma_mv(10.0);
                let mut injector = study.model_c(point, 1000 + trial as u64);
                let mut core = Core::new(kernel.program.clone(), 3 * count + 8);
                core.memory_mut().write_block(0, &kernel.a).expect("dmem");
                core.memory_mut().write_block((4 * count) as u32, &kernel.b).expect("dmem");
                let config = RunConfig {
                    fi_window: Some(kernel.window.clone()),
                    ..RunConfig::default()
                };
                FaultInjector::begin_run(&mut injector);
                let _ = core.run_with_injector(&config, &mut injector);
                total += kernel.mse(core.memory());
            }
            let mse = total / args.trials as f64;
            if mse > 0.0 && first_fail[k].is_nan() {
                first_fail[k] = f;
            }
            row.push_str(&format!(" {mse:>18.3e}"));
        }
        println!("{row}");
    }
    println!();
    for (k, (name, _)) in kernels.iter().enumerate() {
        println!("first calculation errors ({name}): {:.1} MHz", first_fail[k]);
    }
    println!("Paper reference ordering: mul (685 MHz) < add 32-bit (746 MHz) < add 16-bit (877 MHz).");
}
