//! Fig. 7: relative output error vs normalized core power for the median
//! benchmark (model C), translating frequency-over-scaling headroom into an
//! equivalent supply-voltage reduction at a fixed 707 MHz clock.
//!
//! All three noise series form one [`CampaignSpec`] (σ × gain grid) run by
//! the parallel campaign engine.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_campaign::{CampaignSpec, TrialBudget};
use sfi_core::experiment::FaultModel;
use sfi_core::power::{equivalent_voltage_for_gain, PowerModel, TradeoffPoint};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;

fn main() {
    let args = ExperimentArgs::from_env();
    print_header(
        "Fig. 7: error vs core power trade-off for median (model C)",
        &args,
    );
    let study = args.build_study();
    let power = PowerModel::paper_28nm();
    let sta = study.sta_limit_mhz(0.7);
    let curve = study.vdd_delay_curve();
    println!("nominal operating point: {sta:.1} MHz @ 0.700 V, normalized power 1.000\n");

    let sigmas = [0.0, 10.0, 25.0];
    let gains: Vec<f64> = (0..args.points)
        .map(|i| 1.0 + 0.30 * i as f64 / (args.points - 1) as f64)
        .collect();

    let mut spec = CampaignSpec::new("fig7", 17);
    let median = spec.add_benchmark(MedianBenchmark::new(129, 1));
    let series: Vec<_> = sigmas
        .iter()
        .map(|&sigma| {
            let base = OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(sigma);
            let freqs: Vec<f64> = gains.iter().map(|g| sta * g).collect();
            spec.add_frequency_sweep(
                median,
                FaultModel::StatisticalDta,
                base,
                &freqs,
                TrialBudget::fixed(args.trials),
            )
        })
        .collect();

    let result = args.engine().run(&study, &spec);

    for (&sigma, cells) in sigmas.iter().zip(series) {
        println!("--- Vdd noise sigma = {sigma} mV ---");
        println!(
            "{:>8} {:>12} {:>16} {:>18}",
            "gain", "equiv. Vdd", "norm. power", "avg rel. error"
        );
        let mut points = Vec::new();
        for (gain, cell) in gains.iter().zip(cells) {
            let stats = &result.cells[cell].stats;
            // Error accounting: runs that do not finish count as 100 % error.
            let finished = stats.finished_fraction();
            let mean_err = stats.mean_output_error().unwrap_or(1.0);
            let error = finished * mean_err + (1.0 - finished);
            let vdd = equivalent_voltage_for_gain(curve, 0.7, *gain);
            let tp = TradeoffPoint {
                vdd,
                normalized_power: power.normalized_power(vdd, sta),
                average_relative_error: error,
            };
            println!(
                "{:>8.3} {:>11.3} V {:>16.3} {:>17.1}%",
                gain,
                tp.vdd,
                tp.normalized_power,
                100.0 * tp.average_relative_error
            );
            points.push(tp);
        }
        // Report the PoFF-equivalent point (last error-free point).
        if let Some(poff) = points
            .iter()
            .take_while(|p| p.average_relative_error == 0.0)
            .last()
        {
            println!(
                "error-free down to {:.3} V ({:.2}x power)",
                poff.vdd, poff.normalized_power
            );
        }
        println!();
    }
    println!("Paper reference: PoFF at ~0.93x power (0.667 V); 22% relative error at ~0.88x power (0.657 V).");
}
