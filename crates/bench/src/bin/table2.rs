//! Table 2: overview of the timing-error models and their features.

fn main() {
    println!("=== Table 2: timing error models & features ===");
    println!();
    println!(
        "{:<6} {:<40} {:<12} {:<9} {:<10} {:<17} {:<17}",
        "model",
        "fault injection technique",
        "timing data",
        "multi-Vdd",
        "Vdd noise",
        "gate-level aware",
        "instruction aware"
    );
    let rows = [
        ("A", "fixed probability", "none", "no", "no", "no", "no"),
        (
            "B",
            "fixed period violation",
            "STA",
            "yes",
            "no",
            "partially",
            "no",
        ),
        (
            "B+",
            "modulated period violation",
            "STA",
            "yes",
            "yes",
            "partially",
            "no",
        ),
        (
            "C",
            "probabilistic period violation (CDFs)",
            "DTA",
            "yes",
            "yes",
            "yes",
            "yes",
        ),
    ];
    for (m, tech, data, vdd, noise, gate, instr) in rows {
        println!("{m:<6} {tech:<40} {data:<12} {vdd:<9} {noise:<10} {gate:<17} {instr:<17}");
    }
    println!();
    println!(
        "Implementations: sfi_fault::{{FixedProbabilityModel, StaPeriodViolationModel, StaWithNoiseModel, StatisticalDtaModel}}"
    );
}
