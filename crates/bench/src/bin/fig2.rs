//! Fig. 2: DTA-extracted timing-error probability CDFs for `l.mul` and
//! `l.add`, endpoints `bit[3]` and `bit[24]`, at 0.7 V and 0.8 V.

use sfi_bench::{print_header, ExperimentArgs};
use sfi_netlist::alu::AluOp;

fn main() {
    let args = ExperimentArgs::from_env();
    print_header(
        "Fig. 2: timing-error CDFs per instruction / endpoint / voltage",
        &args,
    );
    let study = args.build_study();
    let bits: [usize; 2] = if args.fast { [1, 6] } else { [3, 24] };

    println!(
        "{:>10} | {:>22} {:>22} {:>22} {:>22}",
        "f [MHz]",
        format!("mul bit[{}]", bits[0]),
        format!("mul bit[{}]", bits[1]),
        format!("add bit[{}]", bits[0]),
        format!("add bit[{}]", bits[1])
    );
    println!(
        "{:>10} | {:>11}{:>11} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
        "", "@0.7V", "@0.8V", "@0.7V", "@0.8V", "@0.7V", "@0.8V", "@0.7V", "@0.8V"
    );
    let (f_lo, f_hi, steps) = (600.0, 2000.0, 15);
    for s in 0..=steps {
        let f = f_lo + (f_hi - f_lo) * s as f64 / steps as f64;
        let mut row = format!("{f:>10.0} |");
        for op in [AluOp::Mul, AluOp::Add] {
            for &bit in &bits {
                for vdd in [0.7, 0.8] {
                    let p = study
                        .characterization(vdd)
                        .error_probability_at_freq(op, bit, f, 1.0);
                    row.push_str(&format!(" {:>9.1}%", 100.0 * p));
                }
            }
        }
        println!("{row}");
    }
    println!();
    println!("Expected shape: multiplication CDFs rise at lower frequencies than addition,");
    println!(
        "high-significance bits fail earlier than low ones, and 0.8 V shifts every CDF right."
    );
}
