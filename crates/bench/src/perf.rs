//! The `perf-report` harness: measures trial-pipeline throughput and
//! writes the tracked `BENCH_iss.json` baseline.
//!
//! The measurement drives exactly the primitive the campaign engine's
//! workers drive, one trial at a time on one thread, so the numbers track
//! the hot path itself rather than scheduling overhead.

use sfi_core::experiment::{
    derive_trial_seed, golden_cycles, watchdog_cycles, FaultModel, TrialContext,
};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::{crc32::Crc32Benchmark, fft::FftBenchmark, median::MedianBenchmark};
use sfi_kernels::{extended_suite, Benchmark};
use std::time::Instant;

/// Format version of `BENCH_iss.json`.
pub const FORMAT_VERSION: u64 = 1;

/// Command-line options of the `perf-report` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfArgs {
    /// CI smoke configuration: scaled-down case study, small kernels, few
    /// trials.
    pub quick: bool,
    /// Timed trials per cell (`None` = scenario default).
    pub trials: Option<usize>,
    /// Output path of the JSON report (`None` = mode default: the tracked
    /// `BENCH_iss.json` baseline for full runs, `BENCH_iss_quick.json` for
    /// `--quick` — quick smoke numbers must never clobber the baseline).
    pub out: Option<String>,
    /// Baseline report to gate against (`None` = no gate).  The gate is
    /// one-sided: only a throughput *drop* beyond the tolerance fails —
    /// the baseline may have been recorded on slower hardware, so running
    /// faster is never an error.
    pub baseline: Option<String>,
    /// Allowed fractional throughput drop vs the baseline (default 0.05).
    pub tolerance: f64,
    /// Print a per-phase time-attribution table built from the tracing
    /// spans the measurement (characterization, STA, per-cell sweeps)
    /// emitted.
    pub profile: bool,
}

impl Default for PerfArgs {
    fn default() -> Self {
        PerfArgs {
            quick: false,
            trials: None,
            out: None,
            baseline: None,
            tolerance: 0.05,
            profile: false,
        }
    }
}

/// The flag reference printed by `perf-report --help`.
pub const USAGE: &str = "\
options:
  --quick           CI smoke configuration (8-bit case study, small kernels, few trials)
  --trials N        timed trials per cell (default: 30, quick: 6)
  --out FILE        output path of the JSON report
                    (default: BENCH_iss.json, or BENCH_iss_quick.json with --quick)
  --baseline FILE   fail (exit 1) if totals.trials_per_sec drops more than the
                    tolerance below FILE's; running faster than the baseline passes
  --tolerance FRAC  allowed fractional drop for --baseline (default 0.05)
  --profile         print a per-phase time-attribution table (characterization,
                    STA, per-cell sweeps) built from the tracing spans
  --help            print this help
";

impl PerfArgs {
    /// Parses the flags from `std::env::args`.
    ///
    /// `--help` prints [`USAGE`] and exits; unknown flags and malformed
    /// values are errors (exit code 2).
    pub fn from_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Self::parse(&argv) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses a flag list (everything after the binary name).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut args = PerfArgs::default();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => args.quick = true,
                "--trials" => {
                    i += 1;
                    args.trials = Some(
                        argv.get(i)
                            .ok_or("--trials needs a value")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--trials needs a positive integer")?,
                    );
                }
                "--out" => {
                    i += 1;
                    args.out = Some(argv.get(i).ok_or("--out needs a value")?.clone());
                }
                "--baseline" => {
                    i += 1;
                    args.baseline = Some(argv.get(i).ok_or("--baseline needs a value")?.clone());
                }
                "--tolerance" => {
                    i += 1;
                    args.tolerance = argv
                        .get(i)
                        .ok_or("--tolerance needs a value")?
                        .parse()
                        .ok()
                        .filter(|t: &f64| (0.0..1.0).contains(t))
                        .ok_or("--tolerance needs a fraction in [0, 1)")?;
                }
                "--profile" => args.profile = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        Ok(args)
    }

    fn timed_trials(&self) -> usize {
        self.trials.unwrap_or(if self.quick { 6 } else { 30 })
    }

    /// The resolved output path: an explicit `--out` wins; otherwise full
    /// runs write the tracked baseline and `--quick` runs a separate
    /// smoke file.
    pub fn out_path(&self) -> &str {
        self.out.as_deref().unwrap_or(if self.quick {
            "BENCH_iss_quick.json"
        } else {
            "BENCH_iss.json"
        })
    }
}

/// One measured (benchmark, scenario) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Scenario name (`below_limit` or `transition`).
    pub scenario: &'static str,
    /// Clock frequency of the cell, MHz.
    pub freq_mhz: f64,
    /// Timed trials.
    pub trials: usize,
    /// Wall-clock seconds of the timed trials.
    pub elapsed_s: f64,
    /// Throughput in trials per second.
    pub trials_per_sec: f64,
    /// Throughput in simulated cycles per second.
    pub cycles_per_sec: f64,
    /// Mean simulated cycles per trial.
    pub mean_cycles: f64,
    /// Fraction of trials with a fully correct output (sanity anchor: the
    /// measurement must not change the simulated physics).
    pub correct_fraction: f64,
}

/// The full report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Case-study description (`paper-32bit` or `fast-8bit`).
    pub study: &'static str,
    /// Per-cell measurements.
    pub cells: Vec<PerfCell>,
}

/// The two operating scenarios measured per benchmark, as a multiple of
/// the STA frequency limit (both with 10 mV supply-noise sigma, so the
/// noise sampling path is always exercised).
const SCENARIOS: [(&str, f64); 2] = [("below_limit", 0.95), ("transition", 1.15)];
const NOISE_SIGMA_MV: f64 = 10.0;

fn perf_suite(quick: bool) -> Vec<Box<dyn Benchmark + Send + Sync>> {
    if quick {
        // Small kernels: the CI smoke step must finish in seconds.
        vec![
            Box::new(MedianBenchmark::new(21, 1)),
            Box::new(Crc32Benchmark::new(32, 1)),
            Box::new(FftBenchmark::new(16, 1)),
        ]
    } else {
        extended_suite(1)
    }
}

/// Runs the measurement.
pub fn run(args: &PerfArgs) -> PerfReport {
    let (study, study_name) = if args.quick {
        (
            CaseStudy::build(CaseStudyConfig::fast_for_tests()),
            "fast-8bit",
        )
    } else {
        (CaseStudy::build(CaseStudyConfig::paper()), "paper-32bit")
    };
    let sta = study.sta_limit_mhz(0.7);
    let timed = args.timed_trials();
    let warmup = (timed / 5).max(1);

    // One scratch context for the whole report — exactly what a campaign
    // worker holds, so the numbers track the engine's hot path.
    let mut context = TrialContext::new();
    let mut cells = Vec::new();
    for (bench_index, bench) in perf_suite(args.quick).iter().enumerate() {
        let max_cycles = watchdog_cycles(golden_cycles(bench.as_ref()));
        for (scenario_index, (scenario, factor)) in SCENARIOS.iter().enumerate() {
            let point = OperatingPoint::new(sta * factor, 0.7).with_noise_sigma_mv(NOISE_SIGMA_MV);
            // The same deterministic seed stream the campaign engine would
            // derive for this cell, so before/after comparisons simulate
            // identical fault sequences.
            let cell_index = (bench_index * SCENARIOS.len() + scenario_index) as u64;
            // One span per measured cell; `--profile` attributes the
            // report's wall-clock across these and the characterization
            // phases.  The span's clock reads sit outside the throughput
            // timer below, so the measurement itself is untouched.
            let _cell_span = sfi_obs::Span::begin("perf_cell", "bench")
                .arg("benchmark", bench.name())
                .arg("scenario", *scenario)
                .arg("cell", cell_index);
            let mut trial = |index: u64| {
                context.run_trial(
                    &study,
                    bench.as_ref(),
                    bench_index,
                    FaultModel::StatisticalDta,
                    point,
                    max_cycles,
                    derive_trial_seed(0xBE7C, cell_index, index),
                )
            };
            for i in 0..warmup {
                let _ = trial(i as u64);
            }
            let start = Instant::now();
            let mut cycles = 0u64;
            let mut correct = 0usize;
            for i in 0..timed {
                let result = trial((warmup + i) as u64);
                cycles += result.cycles;
                correct += result.correct as usize;
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            cells.push(PerfCell {
                benchmark: bench.name().to_string(),
                scenario,
                freq_mhz: point.freq_mhz(),
                trials: timed,
                elapsed_s: elapsed,
                trials_per_sec: timed as f64 / elapsed,
                cycles_per_sec: cycles as f64 / elapsed,
                mean_cycles: cycles as f64 / timed as f64,
                correct_fraction: correct as f64 / timed as f64,
            });
        }
    }
    PerfReport {
        study: study_name,
        cells,
    }
}

/// Prints the report as an aligned table.
pub fn print_table(report: &PerfReport) {
    println!(
        "=== perf-report: model C trial pipeline ({}) ===",
        report.study
    );
    println!(
        "{:<16} {:<12} {:>9} {:>7} {:>12} {:>14} {:>9}",
        "benchmark", "scenario", "freq MHz", "trials", "trials/s", "cycles/s", "correct"
    );
    for cell in &report.cells {
        println!(
            "{:<16} {:<12} {:>9.1} {:>7} {:>12.1} {:>14.3e} {:>8.0}%",
            cell.benchmark,
            cell.scenario,
            cell.freq_mhz,
            cell.trials,
            cell.trials_per_sec,
            cell.cycles_per_sec,
            100.0 * cell.correct_fraction
        );
    }
}

/// One aggregated row of the `--profile` table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Span category (`core`, `bench`, …).
    pub cat: &'static str,
    /// Span name (`study_build`, `sta`, `perf_cell`, …).
    pub name: &'static str,
    /// Spans aggregated into this row.
    pub count: usize,
    /// Total time across all spans of this phase, microseconds.
    pub total_us: u64,
}

/// Aggregates trace records into per-phase rows, longest total first.
/// Only spans contribute; counter records carry no duration.
pub fn profile_rows(records: &[sfi_obs::TraceRecord]) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = Vec::new();
    for record in records {
        let sfi_obs::TraceRecord::Span(span) = record else {
            continue;
        };
        match rows
            .iter_mut()
            .find(|row| row.cat == span.cat && row.name == span.name)
        {
            Some(row) => {
                row.count += 1;
                row.total_us += span.dur_us;
            }
            None => rows.push(ProfileRow {
                cat: span.cat,
                name: span.name,
                count: 1,
                total_us: span.dur_us,
            }),
        }
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.total_us));
    rows
}

/// Prints the per-phase time-attribution table from the global trace
/// store (the `--profile` mode of `perf-report`).
///
/// Percentages are relative to the longest phase, not a grand total:
/// phases nest (`study_build` contains `characterize_voltage`), so their
/// durations intentionally double-count.
pub fn print_profile() {
    sfi_obs::span::flush_thread();
    let records = sfi_obs::span::trace().snapshot(usize::MAX, None);
    let rows = profile_rows(&records);
    println!("\n=== profile: per-phase time attribution ===");
    let Some(longest) = rows.first().map(|row| row.total_us.max(1)) else {
        println!("(no spans recorded)");
        return;
    };
    println!(
        "{:<8} {:<28} {:>7} {:>12} {:>12} {:>7}",
        "cat", "phase", "count", "total ms", "mean us", "rel"
    );
    for row in &rows {
        println!(
            "{:<8} {:<28} {:>7} {:>12.3} {:>12.1} {:>6.1}%",
            row.cat,
            row.name,
            row.count,
            row.total_us as f64 / 1e3,
            row.total_us as f64 / row.count as f64,
            100.0 * row.total_us as f64 / longest as f64,
        );
    }
}

/// Encodes the report as the `BENCH_iss.json` document.
pub fn to_json(report: &PerfReport) -> Json {
    let total_elapsed: f64 = report.cells.iter().map(|c| c.elapsed_s).sum();
    let total_trials: usize = report.cells.iter().map(|c| c.trials).sum();
    Json::obj([
        ("version", Json::Num(FORMAT_VERSION as f64)),
        ("study", Json::Str(report.study.to_string())),
        ("model", Json::Str("dta".to_string())),
        (
            "cells",
            Json::Arr(
                report
                    .cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("benchmark", Json::Str(c.benchmark.clone())),
                            ("scenario", Json::Str(c.scenario.to_string())),
                            ("freq_mhz", Json::Num(c.freq_mhz)),
                            ("trials", Json::Num(c.trials as f64)),
                            ("elapsed_s", Json::Num(c.elapsed_s)),
                            ("trials_per_sec", Json::Num(c.trials_per_sec)),
                            ("cycles_per_sec", Json::Num(c.cycles_per_sec)),
                            ("mean_cycles", Json::Num(c.mean_cycles)),
                            ("correct_fraction", Json::Num(c.correct_fraction)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "totals",
            Json::obj([
                ("trials", Json::Num(total_trials as f64)),
                ("elapsed_s", Json::Num(total_elapsed)),
                (
                    "trials_per_sec",
                    Json::Num(total_trials as f64 / total_elapsed.max(1e-9)),
                ),
            ]),
        ),
    ])
}

/// The outcome of a one-sided baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineVerdict {
    /// `totals.trials_per_sec` of the baseline document.
    pub baseline_tps: f64,
    /// `totals.trials_per_sec` of the current report.
    pub current_tps: f64,
    /// Whether the current throughput is within the tolerated drop.
    pub pass: bool,
}

/// Gates the report against a baseline document, one-sided: fails only if
/// the current total throughput drops more than `tolerance` below the
/// baseline's.  Running *faster* always passes — baselines recorded on
/// slower hardware must not fail an uphill comparison.
pub fn check_baseline(
    report: &PerfReport,
    baseline: &Json,
    tolerance: f64,
) -> Result<BaselineVerdict, String> {
    let baseline_tps = baseline
        .get("totals")
        .and_then(|t| t.get("trials_per_sec"))
        .and_then(Json::as_f64)
        .filter(|tps| tps.is_finite() && *tps > 0.0)
        .ok_or("baseline has no positive totals.trials_per_sec")?;
    let current = to_json(report);
    let current_tps = current
        .get("totals")
        .and_then(|t| t.get("trials_per_sec"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    Ok(BaselineVerdict {
        baseline_tps,
        current_tps,
        pass: current_tps >= baseline_tps * (1.0 - tolerance),
    })
}

/// Writes the JSON document to `path` atomically (temp file + rename).
pub fn write_json(report: &PerfReport, path: &str) -> std::io::Result<()> {
    let text = to_json(report).to_string();
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(flags: &[&str]) -> Vec<String> {
        flags.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_the_flags() {
        let args =
            PerfArgs::parse(&argv(&["--quick", "--trials", "3", "--out", "x.json"])).unwrap();
        assert!(args.quick);
        assert_eq!(args.trials, Some(3));
        assert_eq!(args.out_path(), "x.json");
        assert_eq!(args.timed_trials(), 3);
    }

    #[test]
    fn quick_mode_never_defaults_to_the_tracked_baseline() {
        // `perf-report --quick` (the CI smoke command) must not clobber the
        // committed paper-32bit BENCH_iss.json with fast-8bit numbers.
        assert_eq!(PerfArgs::default().out_path(), "BENCH_iss.json");
        let quick = PerfArgs {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.out_path(), "BENCH_iss_quick.json");
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [&["--frob"][..], &["--trials"], &["--trials", "0"]] {
            assert!(PerfArgs::parse(&argv(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn defaults_differ_by_mode() {
        assert_eq!(PerfArgs::default().timed_trials(), 30);
        let quick = PerfArgs {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.timed_trials(), 6);
    }

    #[test]
    fn parse_accepts_the_baseline_gate() {
        let args = PerfArgs::parse(&argv(&[
            "--baseline",
            "BENCH_iss.json",
            "--tolerance",
            "0.1",
        ]))
        .unwrap();
        assert_eq!(args.baseline.as_deref(), Some("BENCH_iss.json"));
        assert!((args.tolerance - 0.1).abs() < 1e-12);
        assert!((PerfArgs::default().tolerance - 0.05).abs() < 1e-12);
        for bad in [
            &["--baseline"][..],
            &["--tolerance"],
            &["--tolerance", "1.5"],
            &["--tolerance", "-0.1"],
        ] {
            assert!(PerfArgs::parse(&argv(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn baseline_gate_is_one_sided() {
        let report = PerfReport {
            study: "fast-8bit",
            cells: vec![PerfCell {
                benchmark: "median".into(),
                scenario: "below_limit",
                freq_mhz: 700.0,
                trials: 10,
                elapsed_s: 1.0, // 10 trials/sec
                trials_per_sec: 10.0,
                cycles_per_sec: 1e6,
                mean_cycles: 1e5,
                correct_fraction: 1.0,
            }],
        };
        let baseline =
            |tps: f64| Json::obj([("totals", Json::obj([("trials_per_sec", Json::Num(tps))]))]);
        // Slight drop within tolerance: pass.
        assert!(check_baseline(&report, &baseline(10.4), 0.05).unwrap().pass);
        // Drop beyond tolerance: fail.
        assert!(!check_baseline(&report, &baseline(11.0), 0.05).unwrap().pass);
        // Much faster than the baseline: always pass (one-sided).
        assert!(check_baseline(&report, &baseline(1.0), 0.05).unwrap().pass);
        // A baseline without totals is an error, not a silent pass.
        assert!(check_baseline(&report, &Json::Null, 0.05).is_err());
    }

    #[test]
    fn parse_accepts_profile() {
        assert!(PerfArgs::parse(&argv(&["--profile"])).unwrap().profile);
        assert!(!PerfArgs::default().profile);
    }

    #[test]
    fn profile_rows_aggregate_spans_by_phase() {
        use sfi_obs::{SpanRecord, TraceRecord};
        let span = |name: &'static str, dur_us: u64| {
            TraceRecord::Span(SpanRecord {
                id: 1,
                parent: 0,
                name,
                cat: "bench",
                tid: 1,
                job: None,
                start_us: 0,
                dur_us,
                args: Vec::new(),
            })
        };
        let rows = profile_rows(&[
            span("perf_cell", 100),
            span("perf_cell", 300),
            span("study_build", 250),
        ]);
        assert_eq!(rows.len(), 2);
        // Longest total first.
        assert_eq!(rows[0].name, "perf_cell");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_us, 400);
        assert_eq!(rows[1].name, "study_build");
    }

    #[test]
    fn quick_report_runs_and_encodes() {
        let args = PerfArgs {
            quick: true,
            trials: Some(1),
            ..Default::default()
        };
        let report = run(&args);
        // 3 quick kernels x 2 scenarios.
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.trials_per_sec > 0.0));
        let json = to_json(&report);
        let parsed = Json::parse(&json.to_string()).expect("valid JSON");
        assert_eq!(parsed.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("cells").and_then(Json::as_arr).map(|c| c.len()),
            Some(6)
        );
    }
}
