//! The `sfi-asm` front end: assembles `.s` text assembly and renders the
//! result as encoded words, a resolved listing, or a serve `program`
//! recipe object, optionally gated by the `sfi-verify` analyzer.

use sfi_asm::Assembly;
use sfi_core::json::Json;
use sfi_serve::wire::BenchmarkDef;
use sfi_verify::{verify, Report, VerifyConfig};

/// The flag reference printed by `sfi-asm --help`.
pub const ASM_USAGE: &str = "\
usage: sfi-asm [options] FILE.s

Assembles .s text assembly (labels, register/immediate operands and the
.dmem/.word/.input/.output/.fi_window directives) into a validated
program.  See docs/ASM.md for the grammar.

options:
  --words           print the encoded instruction words, one per line
                    (the default output)
  --listing         print the resolved listing with addresses and targets
  --json            print a serve 'program' benchmark recipe object
                    (requires a .output directive in FILE)
  --verify          additionally run the sfi-verify analyzer; findings are
                    printed to stderr with source lines and exit status 1
  --dmem N          data-memory words when FILE has no .dmem directive
                    (default 4096)
  --seed SEED       seed stamped into the --json recipe (default 1)
  --out FILE        write the output to FILE instead of stdout
  --help            print this reference

exit status: 0 assembled (and clean under --verify), 1 verify findings,
             2 usage or assembly errors (with source span output)
";

/// How `sfi-asm` renders an assembled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmOutput {
    /// Encoded instruction words, one `0x%08x` per line.
    Words,
    /// The resolved `Program::listing()`.
    Listing,
    /// A serve `program` benchmark recipe JSON object.
    Recipe,
}

/// Renders the assembled program in the requested output format.
///
/// # Errors
///
/// [`AsmOutput::Recipe`] requires a `.output` directive — without it the
/// recipe has no result region to compare against the golden run.
pub fn render_output(
    asm: &Assembly,
    output: AsmOutput,
    default_dmem: usize,
    seed: u64,
) -> Result<String, String> {
    match output {
        AsmOutput::Words => Ok(asm
            .program
            .to_words()
            .iter()
            .map(|w| format!("{w:#010x}\n"))
            .collect()),
        AsmOutput::Listing => Ok(asm.program.listing()),
        AsmOutput::Recipe => Ok(format!("{}\n", recipe_json(asm, default_dmem, seed)?)),
    }
}

/// Builds the serve `program` recipe object for an assembled program, the
/// exact JSON a `sfi-client submit` campaign embeds as its benchmark.
///
/// # Errors
///
/// The assembly must declare a `.output` region.
pub fn recipe_json(asm: &Assembly, default_dmem: usize, seed: u64) -> Result<Json, String> {
    let output = asm.output.ok_or_else(|| {
        "a serve recipe needs a .output LO:HI directive (the dmem region \
         holding the result)"
            .to_string()
    })?;
    let def = BenchmarkDef::Program {
        words: asm.program.to_words(),
        dmem_words: asm.resolved_dmem_words(default_dmem),
        fi_window: asm.resolved_fi_window(),
        input: asm.input.clone(),
        output,
        seed,
    };
    Ok(def.to_json())
}

/// Runs the analyzer over an assembly with its own directives as config.
pub fn verify_assembly(asm: &Assembly, default_dmem: usize) -> Report {
    let mut config = VerifyConfig::new(asm.resolved_dmem_words(default_dmem));
    if let Some((lo, hi)) = asm.fi_window {
        config = config.with_fi_window(lo..hi);
    }
    verify(&asm.program, &config)
}

/// Renders verify findings with source-line mapping, one per line:
/// `path:line: V004 ...`.
pub fn render_findings(path: &str, asm: &Assembly, report: &Report) -> String {
    report
        .diagnostics
        .iter()
        .map(|d| match asm.line_for_pc(d.span.start) {
            Some(line) => format!("{path}:{line}: {d}\n"),
            None => format!("{path}: {d}\n"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
.dmem 8
.input 5
.output 1:2
l.lwz  r3, 0(r0)
l.sw   4(r0), r3
";

    fn asm() -> Assembly {
        sfi_asm::assemble(SOURCE).expect("assembles")
    }

    #[test]
    fn words_output_is_hex_per_line() {
        let out = render_output(&asm(), AsmOutput::Words, 4096, 1).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with("0x")), "{out}");
    }

    #[test]
    fn listing_output_roundtrips() {
        let out = render_output(&asm(), AsmOutput::Listing, 4096, 1).unwrap();
        let again = sfi_asm::assemble(&out).expect("listing reassembles");
        assert_eq!(again.program, asm().program);
    }

    #[test]
    fn recipe_output_parses_as_a_program_benchmark() {
        let out = render_output(&asm(), AsmOutput::Recipe, 4096, 7).unwrap();
        let doc = Json::parse(&out).expect("valid JSON");
        let def = BenchmarkDef::from_json(&doc).expect("valid recipe");
        match def {
            BenchmarkDef::Program {
                words,
                dmem_words,
                fi_window,
                input,
                output,
                seed,
            } => {
                assert_eq!(words.len(), 2);
                assert_eq!(dmem_words, 8);
                assert_eq!(fi_window, (0, 2));
                assert_eq!(input, vec![5]);
                assert_eq!(output, (1, 2));
                assert_eq!(seed, 7);
            }
            other => panic!("expected a program recipe, got {other:?}"),
        }
    }

    #[test]
    fn recipe_requires_an_output_directive() {
        let asm = sfi_asm::assemble("l.nop\n").expect("assembles");
        let err = render_output(&asm, AsmOutput::Recipe, 4096, 1).unwrap_err();
        assert!(err.contains(".output"), "{err}");
    }

    #[test]
    fn findings_carry_source_lines() {
        let asm = sfi_asm::assemble("l.nop\nl.add r1, r7, r7\n").expect("assembles");
        let report = verify_assembly(&asm, 64);
        assert!(!report.is_clean());
        let rendered = render_findings("x.s", &asm, &report);
        assert!(rendered.contains("x.s:2: "), "{rendered}");
    }
}
