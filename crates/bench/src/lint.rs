//! The `sfi-lint` front end: runs the `sfi-verify` static analyzer over
//! guest programs and renders the findings for humans or machines.
//!
//! Three kinds of lint target exist: the built-in benchmark kernels (the
//! paper suite plus the extended workload zoo, at their served sizes),
//! arbitrary word streams read from a file with `--words`, and `.s` text
//! assembly read with `--asm` (assembled by `sfi-asm`, with findings
//! mapped back to source lines).  CI lints every built-in kernel and
//! fails on *any* finding — warnings included — so the shipped kernels
//! stay at the strictest bar the analyzer can express.

use sfi_core::json::Json;
use sfi_isa::Program;
use sfi_verify::{verify, Report, VerifyConfig};
use std::ops::Range;

/// Version stamp of the `--json` report shape.
pub const LINT_REPORT_VERSION: u64 = 1;

/// The flag reference printed by `sfi-lint --help`.
pub const LINT_USAGE: &str = "\
usage: sfi-lint [options] [TARGET...]

Statically analyzes guest programs with sfi-verify and reports the
findings.  Without --words, lints the built-in benchmark kernels
(all of them, or just the named TARGETs).

options:
  --json            emit a machine-readable JSON report on stdout
  --words FILE      lint the encoded instruction words in FILE instead of
                    built-in kernels (whitespace-separated, decimal or 0x hex)
  --asm FILE        assemble the .s text assembly in FILE with sfi-asm and
                    lint it; findings are mapped back to source lines
  --dmem N          declared data-memory words for --words / --asm without
                    a .dmem directive (default 4096)
  --fi-window LO:HI fault-injection window to validate for --words / --asm
                    (overrides a .fi_window directive)
  --help            print this reference

exit status: 0 all targets clean, 1 findings reported, 2 usage error
";

/// Source context of an `--asm` target, used to map pc-based findings
/// back to the lines of the `.s` file that produced them.
#[derive(Debug, Clone)]
pub struct AsmSource {
    /// Path of the assembled file.
    pub path: String,
    /// 1-based source line per pc (`sfi_asm::Assembly::line_map`).
    pub line_map: Vec<u32>,
}

impl AsmSource {
    /// The `path:line` location of the instruction at `pc`, if known.
    pub fn location(&self, pc: u32) -> Option<String> {
        self.line_map
            .get(pc as usize)
            .map(|line| format!("{}:{line}", self.path))
    }
}

/// One program to lint, with the context the analyzer checks it against.
#[derive(Debug, Clone)]
pub struct LintTarget {
    /// Target name shown in reports (kernel name or the word file).
    pub name: String,
    /// The decoded program.
    pub program: Program,
    /// Declared data-memory size in words.
    pub dmem_words: usize,
    /// Fault-injection window to validate, if declared.
    pub fi_window: Option<Range<u32>>,
    /// Assembly source mapping for `--asm` targets.
    pub asm: Option<AsmSource>,
}

impl LintTarget {
    /// Runs the analyzer over this target.
    pub fn verify(&self) -> Report {
        let mut config = VerifyConfig::new(self.dmem_words);
        if let Some(window) = &self.fi_window {
            config = config.with_fi_window(window.clone());
        }
        verify(&self.program, &config)
    }
}

/// The built-in benchmark kernels as lint targets: the paper suite plus
/// the extended workload zoo, at the sizes the daemon serves.
pub fn builtin_targets() -> Vec<LintTarget> {
    sfi_kernels::extended_suite(3)
        .into_iter()
        .map(|bench| LintTarget {
            name: bench.name().to_string(),
            program: bench.program().clone(),
            dmem_words: bench.dmem_words(),
            fi_window: Some(bench.fi_window()),
            asm: None,
        })
        .collect()
}

/// Parses the whitespace-separated instruction words of a `--words` file
/// (decimal or `0x`-prefixed hex) into a lint target.
pub fn words_target(
    name: &str,
    text: &str,
    dmem_words: usize,
    fi_window: Option<Range<u32>>,
) -> Result<LintTarget, String> {
    let mut words = Vec::new();
    for token in text.split_whitespace() {
        let parsed = match token
            .strip_prefix("0x")
            .or_else(|| token.strip_prefix("0X"))
        {
            Some(hex) => u32::from_str_radix(hex, 16),
            None => token.parse::<u32>(),
        };
        words.push(parsed.map_err(|_| format!("'{token}' is not a 32-bit instruction word"))?);
    }
    let program =
        Program::from_words(&words).map_err(|error| format!("{name} does not decode: {error}"))?;
    Ok(LintTarget {
        name: name.to_string(),
        program,
        dmem_words,
        fi_window,
        asm: None,
    })
}

/// Assembles `.s` source into a lint target carrying the source mapping.
///
/// A `.dmem` directive in the file wins over `default_dmem`; an explicit
/// `fi_override` (the `--fi-window` flag) wins over a `.fi_window`
/// directive.  Assembly failures are returned pre-rendered with caret
/// context, ready for stderr.
pub fn asm_target(
    path: &str,
    source: &str,
    default_dmem: usize,
    fi_override: Option<Range<u32>>,
) -> Result<LintTarget, String> {
    let asm = sfi_asm::assemble(source).map_err(|error| error.render(path, source))?;
    let dmem_words = asm.resolved_dmem_words(default_dmem);
    let fi_window = fi_override.or_else(|| asm.fi_window.map(|(lo, hi)| lo..hi));
    Ok(LintTarget {
        name: path.to_string(),
        program: asm.program,
        dmem_words,
        fi_window,
        asm: Some(AsmSource {
            path: path.to_string(),
            line_map: asm.line_map,
        }),
    })
}

/// Renders one target's report for humans: a summary line plus one
/// indented line per finding.
pub fn render_human(target: &LintTarget, report: &Report) -> String {
    let mut out = String::new();
    let cycles = match report.max_straightline_cycles {
        Some(cycles) => format!("<= {cycles} cycles"),
        None => "loops (dynamic watchdog applies)".to_string(),
    };
    out.push_str(&format!(
        "{}: {} instructions, {} blocks ({} reachable), {}\n",
        target.name, report.instructions, report.blocks, report.reachable_blocks, cycles
    ));
    out.push_str(&format!(
        "  mix: {:.0}% compute / {:.0}% control ({} alu, {} load, {} store, {} branch, {} jump, {} nop)\n",
        report.mix.compute_fraction() * 100.0,
        report.mix.control_fraction() * 100.0,
        report.mix.alu,
        report.mix.load,
        report.mix.store,
        report.mix.branch,
        report.mix.jump,
        report.mix.nop,
    ));
    for diagnostic in &report.diagnostics {
        match target
            .asm
            .as_ref()
            .and_then(|asm| asm.location(diagnostic.span.start))
        {
            Some(location) => out.push_str(&format!("  {diagnostic} ({location})\n")),
            None => out.push_str(&format!("  {diagnostic}\n")),
        }
    }
    if report.is_clean() {
        out.push_str("  clean\n");
    } else {
        out.push_str(&format!(
            "  {} error(s), {} warning(s)\n",
            report.error_count(),
            report.warning_count()
        ));
    }
    out
}

/// One target's report as JSON, mirroring the wire gate's `detail` shape
/// for the findings.
pub fn report_to_json(target: &LintTarget, report: &Report) -> Json {
    let findings = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("code", Json::Str(d.rule.code().into())),
                ("severity", Json::Str(d.severity().to_string())),
                ("start_pc", Json::Num(f64::from(d.span.start))),
                ("end_pc", Json::Num(f64::from(d.span.end))),
                ("message", Json::Str(d.message.clone())),
            ];
            if let Some(asm) = &target.asm {
                if let Some(&line) = asm.line_map.get(d.span.start as usize) {
                    fields.push(("line", Json::Num(f64::from(line))));
                }
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj([
        ("name", Json::Str(target.name.clone())),
        ("instructions", Json::Num(report.instructions as f64)),
        ("blocks", Json::Num(report.blocks as f64)),
        (
            "reachable_instructions",
            Json::Num(report.reachable_instructions as f64),
        ),
        ("has_loops", Json::Bool(report.has_loops)),
        (
            "max_straightline_cycles",
            match report.max_straightline_cycles {
                Some(cycles) => Json::Num(cycles as f64),
                None => Json::Null,
            },
        ),
        (
            "mix",
            Json::obj([
                ("alu", Json::Num(report.mix.alu as f64)),
                ("load", Json::Num(report.mix.load as f64)),
                ("store", Json::Num(report.mix.store as f64)),
                ("branch", Json::Num(report.mix.branch as f64)),
                ("jump", Json::Num(report.mix.jump as f64)),
                ("nop", Json::Num(report.mix.nop as f64)),
                ("compute_fraction", Json::Num(report.mix.compute_fraction())),
                ("control_fraction", Json::Num(report.mix.control_fraction())),
            ]),
        ),
        ("findings", Json::Arr(findings)),
        ("clean", Json::Bool(report.is_clean())),
    ])
}

/// The full `--json` document over all linted targets.
pub fn lint_to_json(results: &[(LintTarget, Report)]) -> Json {
    let errors: usize = results.iter().map(|(_, r)| r.error_count()).sum();
    let warnings: usize = results.iter().map(|(_, r)| r.warning_count()).sum();
    Json::obj([
        ("version", Json::Num(LINT_REPORT_VERSION as f64)),
        (
            "targets",
            Json::Arr(
                results
                    .iter()
                    .map(|(target, report)| report_to_json(target, report))
                    .collect(),
            ),
        ),
        ("errors", Json::Num(errors as f64)),
        ("warnings", Json::Num(warnings as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_targets_cover_the_full_zoo_and_lint_clean() {
        let targets = builtin_targets();
        assert_eq!(targets.len(), 9);
        for target in &targets {
            let report = target.verify();
            assert!(
                report.is_clean(),
                "{} has findings: {:?}",
                target.name,
                report.diagnostics
            );
        }
    }

    #[test]
    fn words_parsing_accepts_hex_and_decimal_and_rejects_junk() {
        let nop = sfi_isa::encode(sfi_isa::Instruction::Nop);
        let text = format!("{nop:#010x}\n{nop}\n");
        let target = words_target("stream", &text, 64, None).expect("parses");
        assert_eq!(target.program.len(), 2);

        assert!(words_target("stream", "banana", 64, None).is_err());
        assert!(words_target("stream", "99999999999", 64, None).is_err());
        // A word that decodes to nothing is a decode error, not a panic.
        assert!(words_target("stream", "0xffffffff", 64, None)
            .unwrap_err()
            .contains("does not decode"));
    }

    #[test]
    fn asm_targets_map_findings_back_to_source_lines() {
        // Line 3 reads r7, which is never written anywhere: V004.
        let source = "; a bad program\nl.sfeq r0, r0\nl.add r1, r7, r7\n";
        let target = asm_target("bad.s", source, 64, None).expect("assembles");
        assert_eq!(target.dmem_words, 64);
        let report = target.verify();
        assert!(!report.is_clean(), "expected findings: {report:?}");
        let human = render_human(&target, &report);
        assert!(human.contains("(bad.s:3)"), "{human}");
        let doc = report_to_json(&target, &report);
        let findings = doc
            .get("findings")
            .and_then(Json::as_arr)
            .expect("findings");
        assert!(findings
            .iter()
            .any(|f| f.get("line").and_then(Json::as_u64) == Some(3)));
    }

    #[test]
    fn asm_target_errors_are_rendered_with_carets() {
        let err = asm_target("oops.s", ".bogus 1\n", 64, None).unwrap_err();
        assert!(err.contains("error: unknown directive `.bogus`"), "{err}");
        assert!(err.contains("oops.s:1:1"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn asm_directives_feed_the_lint_config() {
        let source = ".dmem 8\n.fi_window 0:1\nl.nop\n";
        let target = asm_target("ok.s", source, 4096, None).expect("assembles");
        assert_eq!(target.dmem_words, 8);
        assert_eq!(target.fi_window, Some(0..1));
        // The --fi-window flag wins over the directive.
        let target = asm_target("ok.s", source, 4096, Some(0..1)).expect("assembles");
        assert_eq!(target.fi_window, Some(0..1));
    }

    #[test]
    fn reports_render_for_humans_and_machines() {
        let target = words_target(
            "demo",
            &format!("{}", sfi_isa::encode(sfi_isa::Instruction::Nop)),
            16,
            None,
        )
        .expect("parses");
        let report = target.verify();
        let human = render_human(&target, &report);
        assert!(human.contains("demo: 1 instructions"), "{human}");
        assert!(human.contains("clean"), "{human}");

        let doc = lint_to_json(&[(target, report)]);
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("errors").and_then(Json::as_u64), Some(0));
        let targets = doc.get("targets").and_then(Json::as_arr).expect("targets");
        assert_eq!(targets.len(), 1);
        assert_eq!(
            targets[0].get("clean").and_then(|j| match j {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true)
        );
    }
}
