//! Shared helpers for the experiment-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by building an `sfi_campaign::CampaignSpec` and running it through the
//! parallel campaign engine.  They all accept the same flags:
//!
//! * `--trials N` — Monte-Carlo trials per data point (paper scale is
//!   100–200; the default is a faster smoke configuration),
//! * `--points N` — number of frequency points per sweep,
//! * `--fast` — use a scaled-down 8-bit case study instead of the full
//!   32-bit one (for quick sanity checks),
//! * `--threads N` — campaign worker threads (default: all CPUs),
//! * `--checkpoint FILE` — stream completed campaign cells to `FILE` and
//!   resume from it on the next run of the same configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sfi_campaign::CampaignEngine;
use sfi_core::study::{CaseStudy, CaseStudyConfig};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Monte-Carlo trials per data point.
    pub trials: usize,
    /// Frequency points per sweep.
    pub points: usize,
    /// Whether to use the scaled-down case study.
    pub fast: bool,
    /// Campaign worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Campaign checkpoint file, if any.
    pub checkpoint: Option<String>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            trials: 20,
            points: 12,
            fast: false,
            threads: None,
            checkpoint: None,
        }
    }
}

impl ExperimentArgs {
    /// Parses the standard flags from `std::env::args`, falling back to the
    /// defaults for anything not given.
    pub fn from_env() -> Self {
        let mut args = ExperimentArgs::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--trials" if i + 1 < argv.len() => {
                    args.trials = argv[i + 1].parse().unwrap_or(args.trials);
                    i += 1;
                }
                "--points" if i + 1 < argv.len() => {
                    args.points = argv[i + 1].parse().unwrap_or(args.points);
                    i += 1;
                }
                "--threads" if i + 1 < argv.len() => {
                    // Zero or unparsable means "use all CPUs".
                    args.threads = argv[i + 1].parse().ok().filter(|&n: &usize| n > 0);
                    i += 1;
                }
                "--checkpoint" if i + 1 < argv.len() => {
                    args.checkpoint = Some(argv[i + 1].clone());
                    i += 1;
                }
                "--fast" => args.fast = true,
                _ => {}
            }
            i += 1;
        }
        args
    }

    /// Builds the campaign engine matching the requested parallelism and
    /// checkpointing.
    pub fn engine(&self) -> CampaignEngine {
        let mut engine = CampaignEngine::new();
        if let Some(threads) = self.threads {
            engine = engine.with_threads(threads);
        }
        if let Some(path) = &self.checkpoint {
            engine = engine.with_checkpoint(path);
        }
        engine
    }

    /// Builds the case study matching the requested fidelity.
    pub fn build_study(&self) -> CaseStudy {
        if self.fast {
            CaseStudy::build(CaseStudyConfig {
                voltages: vec![0.7, 0.8],
                ..CaseStudyConfig::fast_for_tests()
            })
        } else {
            CaseStudy::build(CaseStudyConfig::paper())
        }
    }
}

/// Prints a standard experiment header.
pub fn print_header(title: &str, args: &ExperimentArgs) {
    println!("=== {title} ===");
    println!(
        "(trials per point: {}, sweep points: {}, case study: {})",
        args.trials,
        args.points,
        if args.fast {
            "fast 8-bit"
        } else {
            "paper 32-bit"
        }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let a = ExperimentArgs::default();
        assert!(a.trials > 0 && a.points > 1 && !a.fast);
        assert_eq!(a.threads, None);
        assert_eq!(a.checkpoint, None);
    }

    #[test]
    fn fast_study_builds() {
        let args = ExperimentArgs {
            fast: true,
            trials: 1,
            points: 2,
            ..Default::default()
        };
        let study = args.build_study();
        assert_eq!(study.config().alu_width, 8);
    }

    #[test]
    fn engine_respects_thread_override() {
        let args = ExperimentArgs {
            threads: Some(3),
            ..Default::default()
        };
        assert_eq!(args.engine().threads(), 3);
    }
}
