//! Shared helpers for the experiment-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by building an `sfi_campaign::CampaignSpec` and running it through the
//! parallel campaign engine.  They all accept the same flags:
//!
//! * `--trials N` — Monte-Carlo trials per data point (paper scale is
//!   100–200; the default is a faster smoke configuration),
//! * `--points N` — number of frequency points per sweep,
//! * `--fast` — use a scaled-down 8-bit case study instead of the full
//!   32-bit one (for quick sanity checks),
//! * `--threads N` — campaign worker threads (default: all CPUs),
//! * `--checkpoint FILE` — stream completed campaign cells to `FILE` and
//!   resume from it on the next run of the same configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm_cli;
pub mod lint;
pub mod perf;

use sfi_campaign::CampaignEngine;
use sfi_core::study::{CaseStudy, CaseStudyConfig};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Monte-Carlo trials per data point.
    pub trials: usize,
    /// Frequency points per sweep.
    pub points: usize,
    /// Whether to use the scaled-down case study.
    pub fast: bool,
    /// Whether to cover the extended workload zoo (FFT, FIR, CRC32,
    /// bitonic sort) in addition to the paper suite, where the binary
    /// supports it.
    pub extended: bool,
    /// Campaign worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Campaign checkpoint file, if any.
    pub checkpoint: Option<String>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            trials: 20,
            points: 12,
            fast: false,
            extended: false,
            threads: None,
            checkpoint: None,
        }
    }
}

/// The flag reference all experiment binaries share (printed by
/// `--help`).
pub const USAGE: &str = "\
options:
  --trials N        Monte-Carlo trials per data point
  --points N        frequency points per sweep
  --fast            scaled-down 8-bit case study instead of the paper 32-bit one
  --extended        cover the extended workload zoo (FFT, FIR, CRC32, bitonic)
  --threads N       campaign worker threads (0 = all CPUs)
  --checkpoint FILE stream completed cells to FILE and resume from it
  --help            print this help
";

impl ExperimentArgs {
    /// Parses the standard flags from `std::env::args`.
    ///
    /// `--help` prints [`USAGE`] and exits; unknown flags and malformed
    /// values are errors (printed with the usage, exit code 2) instead of
    /// being silently ignored.
    pub fn from_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Self::parse(&argv) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses a flag list (everything after the binary name).
    ///
    /// Exposed separately from [`ExperimentArgs::from_env`] so it is
    /// testable; all experiment binaries share this one implementation
    /// instead of hand-rolling their own loops.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut args = ExperimentArgs::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--trials" => {
                    args.trials = value(&mut i, "--trials")?
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--trials needs a positive integer")?;
                }
                "--points" => {
                    args.points = value(&mut i, "--points")?
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 1)
                        .ok_or("--points needs an integer of at least 2")?;
                }
                "--threads" => {
                    // Zero means "auto": use all CPUs.
                    let n: usize = value(&mut i, "--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an unsigned integer")?;
                    args.threads = (n > 0).then_some(n);
                }
                "--checkpoint" => args.checkpoint = Some(value(&mut i, "--checkpoint")?),
                "--fast" => args.fast = true,
                "--extended" => args.extended = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        Ok(args)
    }

    /// Builds the campaign engine matching the requested parallelism and
    /// checkpointing.
    pub fn engine(&self) -> CampaignEngine {
        let mut engine = CampaignEngine::new();
        if let Some(threads) = self.threads {
            engine = engine.with_threads(threads);
        }
        if let Some(path) = &self.checkpoint {
            engine = engine.with_checkpoint(path);
        }
        engine
    }

    /// Builds the case study matching the requested fidelity.
    pub fn build_study(&self) -> CaseStudy {
        if self.fast {
            CaseStudy::build(CaseStudyConfig {
                voltages: vec![0.7, 0.8],
                ..CaseStudyConfig::fast_for_tests()
            })
        } else {
            CaseStudy::build(CaseStudyConfig::paper())
        }
    }
}

/// Prints a standard experiment header.
pub fn print_header(title: &str, args: &ExperimentArgs) {
    println!("=== {title} ===");
    println!(
        "(trials per point: {}, sweep points: {}, case study: {})",
        args.trials,
        args.points,
        if args.fast {
            "fast 8-bit"
        } else {
            "paper 32-bit"
        }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let a = ExperimentArgs::default();
        assert!(a.trials > 0 && a.points > 1 && !a.fast);
        assert_eq!(a.threads, None);
        assert_eq!(a.checkpoint, None);
    }

    #[test]
    fn fast_study_builds() {
        let args = ExperimentArgs {
            fast: true,
            trials: 1,
            points: 2,
            ..Default::default()
        };
        let study = args.build_study();
        assert_eq!(study.config().alu_width, 8);
    }

    #[test]
    fn engine_respects_thread_override() {
        let args = ExperimentArgs {
            threads: Some(3),
            ..Default::default()
        };
        assert_eq!(args.engine().threads(), 3);
    }

    fn argv(flags: &[&str]) -> Vec<String> {
        flags.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_the_standard_flags() {
        let args = ExperimentArgs::parse(&argv(&[
            "--trials",
            "50",
            "--points",
            "8",
            "--fast",
            "--extended",
            "--threads",
            "4",
            "--checkpoint",
            "out.json",
        ]))
        .expect("parses");
        assert_eq!(args.trials, 50);
        assert_eq!(args.points, 8);
        assert!(args.fast);
        assert!(args.extended);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.checkpoint.as_deref(), Some("out.json"));
    }

    #[test]
    fn threads_zero_means_auto() {
        let args = ExperimentArgs::parse(&argv(&["--threads", "0"])).expect("parses");
        assert_eq!(args.threads, None, "--threads 0 selects all CPUs");
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            &["--frobnicate"][..],
            &["--trials"],
            &["--trials", "0"],
            &["--trials", "many"],
            &["--points", "1"],
            &["--threads", "-2"],
        ] {
            assert!(ExperimentArgs::parse(&argv(bad)).is_err(), "{bad:?}");
        }
    }
}
