//! Criterion benches that regenerate (scaled-down versions of) every paper
//! figure data series, so `cargo bench` exercises the full experiment
//! pipeline end to end.  The standalone binaries in `src/bin/` produce the
//! full-resolution series.

use criterion::{criterion_group, criterion_main, Criterion};
use sfi_core::experiment::{frequency_grid, frequency_sweep, run_experiment, FaultModel};
use sfi_core::power::{equivalent_voltage_for_gain, PowerModel};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use sfi_kernels::median::MedianBenchmark;
use sfi_netlist::alu::AluOp;

fn study() -> CaseStudy {
    CaseStudy::build(CaseStudyConfig {
        voltages: vec![0.7, 0.8],
        ..CaseStudyConfig::fast_for_tests()
    })
}

fn bench_fig1_series(c: &mut Criterion) {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let sta = study.sta_limit_mhz(0.7);
    c.bench_function("fig1_model_b_plus_sweep", |b| {
        b.iter(|| {
            frequency_sweep(
                &study,
                &bench,
                FaultModel::StaWithNoise,
                OperatingPoint::new(sta, 0.7).with_noise_sigma_mv(10.0),
                &frequency_grid(sta * 0.98, sta * 1.01, 3),
                2,
                1,
            )
        })
    });
}

fn bench_fig2_series(c: &mut Criterion) {
    let study = study();
    c.bench_function("fig2_cdf_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in [700.0, 900.0, 1100.0, 1300.0] {
                for bit in [1usize, 6] {
                    for vdd in [0.7, 0.8] {
                        acc += study.characterization(vdd).error_probability_at_freq(
                            AluOp::Mul,
                            bit,
                            f,
                            1.0,
                        );
                    }
                }
            }
            acc
        })
    });
}

fn bench_fig5_point(c: &mut Criterion) {
    let study = study();
    let bench = MedianBenchmark::new(21, 1);
    let sta = study.sta_limit_mhz(0.7);
    c.bench_function("fig5_model_c_single_point", |b| {
        b.iter(|| {
            run_experiment(
                &study,
                &bench,
                FaultModel::StatisticalDta,
                OperatingPoint::new(sta * 1.1, 0.7).with_noise_sigma_mv(10.0),
                2,
                5,
            )
        })
    });
}

fn bench_fig7_tradeoff(c: &mut Criterion) {
    let study = study();
    let power = PowerModel::paper_28nm();
    c.bench_function("fig7_power_mapping", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..8 {
                let gain = 1.0 + 0.02 * i as f64;
                let v = equivalent_voltage_for_gain(study.vdd_delay_curve(), 0.7, gain);
                total += power.normalized_power(v, 707.0);
            }
            total
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_series, bench_fig2_series, bench_fig5_point, bench_fig7_tradeoff
}
criterion_main!(figures);
