//! Criterion benches of the simulation substrates: gate-level DTA
//! throughput, STA, and ISS execution speed.

use criterion::{criterion_group, criterion_main, Criterion};
use sfi_cpu::{Core, RunConfig};
use sfi_kernels::{crc32::Crc32Benchmark, median::MedianBenchmark, Benchmark};
use sfi_netlist::alu::{AluDatapath, AluOp};
use sfi_netlist::{DelayModel, VoltageScaling};
use sfi_timing::{DynamicTimingAnalysis, StaticTimingAnalysis};

fn bench_dta(c: &mut Criterion) {
    let alu = AluDatapath::build(32);
    let dta = DynamicTimingAnalysis::new(
        alu.netlist(),
        &DelayModel::default_28nm(),
        &VoltageScaling::default_28nm(),
        0.7,
    );
    let inputs = alu.encode_inputs(AluOp::Mul, 0xDEAD_BEEF, 0x1234_5678);
    c.bench_function("dta_analyze_32bit_alu_vector", |b| {
        b.iter(|| dta.analyze(&inputs))
    });
}

fn bench_sta(c: &mut Criterion) {
    let alu = AluDatapath::build(32);
    c.bench_function("sta_full_32bit_alu", |b| {
        b.iter(|| {
            StaticTimingAnalysis::run(
                alu.netlist(),
                &DelayModel::default_28nm(),
                &VoltageScaling::default_28nm(),
                0.7,
            )
        })
    });
}

fn bench_iss(c: &mut Criterion) {
    let bench = MedianBenchmark::new(21, 1);
    c.bench_function("iss_median_21_fault_free", |b| {
        b.iter(|| {
            let mut core = Core::new(bench.program().clone(), bench.dmem_words());
            bench.initialize(core.memory_mut());
            core.run(&RunConfig::default())
        })
    });
    let bench = Crc32Benchmark::new(128, 1);
    c.bench_function("iss_crc32_128_fault_free", |b| {
        b.iter(|| {
            let mut core = Core::new(bench.program().clone(), bench.dmem_words());
            bench.initialize(core.memory_mut());
            core.run(&RunConfig::default())
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_dta, bench_sta, bench_iss
}
criterion_main!(substrates);
