//! Criterion benches of the simulation substrates: gate-level DTA
//! throughput, STA, ISS execution speed, and the model-C injector
//! (construction and per-cycle injection over the flattened fault table).

use criterion::{criterion_group, criterion_main, Criterion};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::{Core, ExStageContext, FaultInjector, RunConfig};
use sfi_fault::OperatingPoint;
use sfi_isa::AluClass;
use sfi_kernels::{crc32::Crc32Benchmark, median::MedianBenchmark, Benchmark};
use sfi_netlist::alu::{AluDatapath, AluOp};
use sfi_netlist::{DelayModel, VoltageScaling};
use sfi_timing::{DynamicTimingAnalysis, StaticTimingAnalysis};

fn bench_dta(c: &mut Criterion) {
    let alu = AluDatapath::build(32);
    let dta = DynamicTimingAnalysis::new(
        alu.netlist(),
        &DelayModel::default_28nm(),
        &VoltageScaling::default_28nm(),
        0.7,
    );
    let inputs = alu.encode_inputs(AluOp::Mul, 0xDEAD_BEEF, 0x1234_5678);
    c.bench_function("dta_analyze_32bit_alu_vector", |b| {
        b.iter(|| dta.analyze(&inputs))
    });
}

fn bench_sta(c: &mut Criterion) {
    let alu = AluDatapath::build(32);
    c.bench_function("sta_full_32bit_alu", |b| {
        b.iter(|| {
            StaticTimingAnalysis::run(
                alu.netlist(),
                &DelayModel::default_28nm(),
                &VoltageScaling::default_28nm(),
                0.7,
            )
        })
    });
}

fn bench_iss(c: &mut Criterion) {
    let bench = MedianBenchmark::new(21, 1);
    c.bench_function("iss_median_21_fault_free", |b| {
        b.iter(|| {
            let mut core = Core::new(bench.program().clone(), bench.dmem_words());
            bench.initialize(core.memory_mut());
            core.run(&RunConfig::default())
        })
    });
    let bench = Crc32Benchmark::new(128, 1);
    c.bench_function("iss_crc32_128_fault_free", |b| {
        b.iter(|| {
            let mut core = Core::new(bench.program().clone(), bench.dmem_words());
            bench.initialize(core.memory_mut());
            core.run(&RunConfig::default())
        })
    });
}

fn bench_model_c_injector(c: &mut Criterion) {
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let sta = study.sta_limit_mhz(0.7);

    // Per-trial construction: with the Arc-shared fault table this is the
    // cost the campaign engine pays per Monte-Carlo trial (reference-count
    // bumps, no CDF copies).
    c.bench_function("model_c_construct_per_trial", |b| {
        let point = OperatingPoint::new(sta * 1.1, 0.7).with_noise_sigma_mv(10.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            study.model_c(point, seed)
        })
    });

    let ctx = |cycle: u64| ExStageContext {
        cycle,
        alu_class: AluClass::Mul,
        operand_a: 0x1234,
        operand_b: 0x5678,
        result: 0x1234 * 0x5678,
        fi_enabled: true,
    };
    // Per-cycle injection below the STA limit: the max-delay fast path
    // (the dominant case of every sweep's correct region).
    c.bench_function("model_c_inject_below_limit", |b| {
        let point = OperatingPoint::new(sta * 0.9, 0.7).with_noise_sigma_mv(10.0);
        let mut m = study.model_c(point, 7);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.inject(&ctx(i))
        })
    });
    // Per-cycle injection inside the transition region: the full
    // per-endpoint table walk with Bernoulli draws.
    c.bench_function("model_c_inject_transition", |b| {
        let point = OperatingPoint::new(sta * 1.15, 0.7).with_noise_sigma_mv(10.0);
        let mut m = study.model_c(point, 7);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.inject(&ctx(i))
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_dta, bench_sta, bench_iss, bench_model_c_injector
}
criterion_main!(substrates);
