//! Criterion benches comparing the per-cycle cost of the four fault models
//! (the speed/accuracy trade-off the paper positions model C in).

use criterion::{criterion_group, criterion_main, Criterion};
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_cpu::{ExStageContext, FaultInjector};
use sfi_fault::OperatingPoint;
use sfi_isa::AluClass;

fn ctx(cycle: u64) -> ExStageContext {
    ExStageContext {
        cycle,
        alu_class: AluClass::Mul,
        operand_a: 0x1234,
        operand_b: 0x5678,
        result: 0x1234 * 0x5678,
        fi_enabled: true,
    }
}

fn bench_models(c: &mut Criterion) {
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let point = OperatingPoint::new(study.sta_limit_mhz(0.7) * 1.1, 0.7).with_noise_sigma_mv(10.0);

    let mut a = study.model_a(1e-4, 1);
    let mut b = study.model_b(point);
    let mut bp = study.model_b_plus(point, 2);
    let mut cm = study.model_c(point, 3);

    let mut group = c.benchmark_group("fault_model_per_cycle");
    group.bench_function("model_a_fixed_probability", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            a.inject(&ctx(i))
        })
    });
    group.bench_function("model_b_sta", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            b.inject(&ctx(i))
        })
    });
    group.bench_function("model_b_plus_sta_noise", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            bp.inject(&ctx(i))
        })
    });
    group.bench_function("model_c_statistical_dta", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            cm.inject(&ctx(i))
        })
    });
    group.finish();
}

criterion_group! {
    name = fault_models;
    config = Criterion::default().sample_size(30);
    targets = bench_models
}
criterion_main!(fault_models);
