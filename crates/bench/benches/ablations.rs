//! Ablation benches for the design choices called out in DESIGN.md:
//! value-aware vs topological DTA, characterization-kernel length, and
//! noise clipping.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sfi_netlist::alu::{AluDatapath, AluOp};
use sfi_netlist::{DelayModel, VoltageScaling};
use sfi_timing::{characterize_alu, CharacterizationConfig, DynamicTimingAnalysis, VoltageNoise};

fn bench_value_awareness(c: &mut Criterion) {
    let alu = AluDatapath::build(16);
    let aware = DynamicTimingAnalysis::new(
        alu.netlist(),
        &DelayModel::default_28nm(),
        &VoltageScaling::default_28nm(),
        0.7,
    );
    let blind = aware.clone().with_value_awareness(false);
    let inputs = alu.encode_inputs(AluOp::Mul, 0xBEEF, 0x1234);
    let mut group = c.benchmark_group("dta_value_awareness");
    group.bench_function("value_aware", |b| b.iter(|| aware.analyze(&inputs)));
    group.bench_function("topological", |b| b.iter(|| blind.analyze(&inputs)));
    group.finish();
}

fn bench_characterization_length(c: &mut Criterion) {
    let alu = AluDatapath::build(8);
    let mut group = c.benchmark_group("characterization_kernel_length");
    for cycles in [32usize, 128] {
        group.bench_function(format!("{cycles}_cycles_per_op"), |b| {
            b.iter(|| {
                characterize_alu(
                    &alu,
                    &DelayModel::default_28nm(),
                    &VoltageScaling::default_28nm(),
                    &CharacterizationConfig {
                        cycles_per_op: cycles,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_noise_clipping(c: &mut Criterion) {
    let clipped = VoltageNoise::with_sigma_mv(25.0);
    let unclipped = VoltageNoise::with_sigma_mv(25.0).with_clip_sigmas(6.0);
    let mut group = c.benchmark_group("noise_clipping");
    group.bench_function("clipped_2_sigma", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| clipped.sample_volts(&mut rng))
    });
    group.bench_function("clipped_6_sigma", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| unclipped.sample_volts(&mut rng))
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_value_awareness, bench_characterization_length, bench_noise_clipping
}
criterion_main!(ablations);
