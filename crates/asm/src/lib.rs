//! Text-assembly front end for the SFI toolchain.
//!
//! [`assemble`] turns `.s`-style source — one instruction, directive or
//! label per line — into a validated [`sfi_isa::Program`] plus the
//! data-memory and bounds metadata the serve `program` recipe needs, with
//! typed span-carrying errors ([`AsmError`]) that render rustc-style caret
//! context.
//!
//! # Grammar
//!
//! Each line is `[label:]... [instruction | directive]` followed by an
//! optional `;` or `#` comment. Mnemonics and operand shapes match the
//! [`sfi_isa::Instruction`] display forms exactly, so a
//! [`sfi_isa::Program::listing`] — including its leading `N:` address
//! annotations and `; -> target` comments — assembles back to the same
//! program bit-for-bit (the round-trip property the conformance suite
//! pins).
//!
//! Directives:
//!
//! * `.dmem N` — data-memory size in words (serve recipe `dmem_words`),
//! * `.word W...` — raw 32-bit instruction words, decoded and spliced in,
//! * `.input W...` — data words written to dmem `0..n` before the run,
//! * `.output LO:HI` — half-open dmem word range holding the result,
//! * `.fi_window LO:HI` — half-open pc range under fault injection;
//!   bounds may be numbers or labels.
//!
//! # Example
//!
//! ```
//! let source = "
//!     .dmem 4
//!     .input 7
//!     .output 1:2
//!     l.lwz   r3, 0(r0)       ; r3 = dmem[0]
//!     loop:
//!     l.addi  r3, r3, -1
//!     l.sfne  r3, r0
//!     l.bf    loop
//!     l.sw    4(r0), r3       ; dmem[1] = 0
//! ";
//! let asm = sfi_asm::assemble(source).unwrap();
//! assert_eq!(asm.program.len(), 5);
//! assert_eq!(asm.labels["loop"], 1);
//! assert_eq!(asm.output, Some((1, 2)));
//! // The listing itself re-assembles to the same program.
//! let again = sfi_asm::assemble(&asm.program.listing()).unwrap();
//! assert_eq!(again.program, asm.program);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parser;

pub use error::{AsmError, AsmErrorKind, SourceSpan};

use sfi_isa::Program;
use std::collections::BTreeMap;

/// The result of assembling a source file: the program plus everything the
/// serve `program` recipe and diagnostics mapping need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembly {
    /// The assembled, fully resolved program.
    pub program: Program,
    /// 1-based source line of each instruction, indexed by pc.
    pub line_map: Vec<u32>,
    /// `.dmem` directive value, if present.
    pub dmem_words: Option<usize>,
    /// Concatenated `.input` words (written to dmem `0..n` before a run).
    pub input: Vec<u32>,
    /// `.output LO:HI` half-open dmem word range, if declared.
    pub output: Option<(u32, u32)>,
    /// `.fi_window LO:HI` half-open pc range, if declared (labels resolved).
    pub fi_window: Option<(u32, u32)>,
    /// Every label with the pc it is bound to (a label may sit at
    /// `program.len()`, the clean-exit address).
    pub labels: BTreeMap<String, u32>,
}

impl Assembly {
    /// The 1-based source line that produced the instruction at `pc`.
    pub fn line_for_pc(&self, pc: u32) -> Option<u32> {
        self.line_map.get(pc as usize).copied()
    }

    /// The fault-injection window, defaulting to the whole program when no
    /// `.fi_window` directive was given.
    pub fn resolved_fi_window(&self) -> (u32, u32) {
        self.fi_window.unwrap_or((0, self.program.len() as u32))
    }

    /// The data-memory size: the `.dmem` directive if present, otherwise
    /// `default`, but never smaller than what `.input` and `.output`
    /// themselves require.
    pub fn resolved_dmem_words(&self, default: usize) -> usize {
        let declared = self.dmem_words.unwrap_or(default);
        let needed = self
            .input
            .len()
            .max(self.output.map_or(0, |(_, hi)| hi as usize));
        declared.max(needed)
    }
}

/// Assembles `.s`-style source into an [`Assembly`].
///
/// Stops at the first error; the returned [`AsmError`] carries the typed
/// failure kind plus a [`SourceSpan`] and can render caret context with
/// [`AsmError::render`].
///
/// # Errors
///
/// Any lexical, syntactic or semantic failure: unknown mnemonics or
/// directives, malformed operands, out-of-range immediates or branch
/// offsets, duplicate or undefined labels, non-decoding `.word` values,
/// duplicate one-shot directives, and listing address annotations that
/// disagree with the actual instruction address.
pub fn assemble(source: &str) -> Result<Assembly, AsmError> {
    parser::Parser::assemble(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_isa::{Instruction, Reg};

    fn kind_of(err: AsmError) -> AsmErrorKind {
        err.kind
    }

    #[test]
    fn empty_source_is_an_empty_program() {
        let asm = assemble("\n  ; only a comment\n").unwrap();
        assert!(asm.program.is_empty());
        assert_eq!(asm.resolved_fi_window(), (0, 0));
    }

    #[test]
    fn every_operand_shape_parses() {
        let asm = assemble(
            "l.add r3, r4, r5\n\
             l.addi r3, r4, -7\n\
             l.andi r3, r4, 0xff\n\
             l.slli r3, r4, 31\n\
             l.movhi r3, 0xdead\n\
             l.sfgtu r3, r4\n\
             l.lwz r5, 12(r2)\n\
             l.sw -4(r2), r5\n\
             l.bf 2\n\
             l.jr r9\n\
             l.nop\n",
        )
        .unwrap();
        let i = asm.program.instructions();
        assert_eq!(
            i[0],
            Instruction::Add {
                rd: Reg(3),
                ra: Reg(4),
                rb: Reg(5)
            }
        );
        assert_eq!(
            i[1],
            Instruction::Addi {
                rd: Reg(3),
                ra: Reg(4),
                imm: -7
            }
        );
        assert_eq!(
            i[2],
            Instruction::Andi {
                rd: Reg(3),
                ra: Reg(4),
                imm: 0xff
            }
        );
        assert_eq!(
            i[3],
            Instruction::Slli {
                rd: Reg(3),
                ra: Reg(4),
                shamt: 31
            }
        );
        assert_eq!(
            i[4],
            Instruction::Movhi {
                rd: Reg(3),
                imm: 0xdead
            }
        );
        assert_eq!(
            i[5],
            Instruction::Sfgtu {
                ra: Reg(3),
                rb: Reg(4)
            }
        );
        assert_eq!(
            i[6],
            Instruction::Lwz {
                rd: Reg(5),
                ra: Reg(2),
                offset: 12
            }
        );
        assert_eq!(
            i[7],
            Instruction::Sw {
                ra: Reg(2),
                rb: Reg(5),
                offset: -4
            }
        );
        assert_eq!(i[8], Instruction::Bf { offset: 2 });
        assert_eq!(i[9], Instruction::Jr { ra: Reg(9) });
        assert_eq!(i[10], Instruction::Nop);
        assert_eq!(asm.line_for_pc(10), Some(11));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let asm = assemble(
            "head: l.nop\n\
             l.sfeq r1, r2\n\
             l.bf head\n\
             l.bnf done\n\
             l.j head\n\
             done:\n",
        )
        .unwrap();
        let i = asm.program.instructions();
        assert_eq!(i[2], Instruction::Bf { offset: -3 });
        assert_eq!(i[3], Instruction::Bnf { offset: 1 });
        assert_eq!(i[4], Instruction::J { offset: -5 });
        // `done` is bound at the clean-exit address, one past the end.
        assert_eq!(asm.labels["done"], 5);
    }

    #[test]
    fn high_immediates_reinterpret_as_bit_patterns() {
        let asm = assemble("l.addi r1, r0, 0xffff\nl.addi r2, r0, 65535\n").unwrap();
        assert_eq!(
            asm.program.instructions()[0],
            Instruction::Addi {
                rd: Reg(1),
                ra: Reg(0),
                imm: -1
            }
        );
        assert_eq!(
            asm.program.instructions()[1],
            Instruction::Addi {
                rd: Reg(2),
                ra: Reg(0),
                imm: -1
            }
        );
    }

    #[test]
    fn directives_collect_metadata() {
        let asm = assemble(
            ".dmem 16\n\
             .input 1 2 3\n\
             .input 0xdeadbeef\n\
             .output 4:6\n\
             body: l.nop\n\
             l.nop\n\
             .fi_window body:end\n\
             end:\n",
        )
        .unwrap();
        assert_eq!(asm.dmem_words, Some(16));
        assert_eq!(asm.input, vec![1, 2, 3, 0xdeadbeef]);
        assert_eq!(asm.output, Some((4, 6)));
        assert_eq!(asm.fi_window, Some((0, 2)));
        assert_eq!(asm.resolved_dmem_words(4096), 16);
    }

    #[test]
    fn resolved_dmem_grows_to_cover_input_and_output() {
        let asm = assemble(".dmem 2\n.output 7:9\nl.nop\n").unwrap();
        assert_eq!(asm.resolved_dmem_words(4096), 9);
        let asm = assemble("l.nop\n").unwrap();
        assert_eq!(asm.resolved_dmem_words(64), 64);
    }

    #[test]
    fn word_directive_splices_decoded_instructions() {
        let nop = sfi_isa::encode(Instruction::Nop);
        let add = sfi_isa::encode(Instruction::Add {
            rd: Reg(1),
            ra: Reg(2),
            rb: Reg(3),
        });
        let asm = assemble(&format!(".word {nop:#x} {add}\n")).unwrap();
        assert_eq!(asm.program.instructions()[0], Instruction::Nop);
        assert_eq!(
            asm.program.instructions()[1],
            Instruction::Add {
                rd: Reg(1),
                ra: Reg(2),
                rb: Reg(3)
            }
        );
    }

    #[test]
    fn listing_address_annotations_are_validated() {
        assert!(assemble("0: l.nop\n1: l.nop\n").is_ok());
        let err = assemble("0: l.nop\n5: l.nop\n").unwrap_err();
        assert!(matches!(
            kind_of(err),
            AsmErrorKind::AddressAnnotationMismatch {
                annotated: 5,
                actual: 1
            }
        ));
    }

    #[test]
    fn error_unknown_mnemonic() {
        let err = assemble("l.bogus r1, r2\n").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(ref m) if m == "l.bogus"));
    }

    #[test]
    fn error_unknown_directive_with_span() {
        let err = assemble("l.nop\n.bogus 1\n").unwrap_err();
        assert_eq!((err.span.line, err.span.col, err.span.len), (2, 1, 6));
        assert!(matches!(err.kind, AsmErrorKind::UnknownDirective(ref d) if d == ".bogus"));
    }

    #[test]
    fn error_duplicate_label_reports_first_line() {
        let err = assemble("x: l.nop\nx: l.nop\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::DuplicateLabel { ref name, first_line: 1 } if name == "x"
        ));
    }

    #[test]
    fn error_undefined_label() {
        let err = assemble("l.j nowhere\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(ref l) if l == "nowhere"));
    }

    #[test]
    fn error_bad_register_and_immediates() {
        let err = assemble("l.add r1, r32, r2\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(ref r) if r == "r32"));
        let err = assemble("l.addi r1, r2, 70000\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmediateOutOfRange { .. }));
        let err = assemble("l.slli r1, r2, 32\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmediateOutOfRange { .. }));
        let err = assemble("l.bf 0x4000000\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::OffsetOutOfRange { .. }));
        let err = assemble("l.addi r1, r2, twelve\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadNumber(_)));
    }

    #[test]
    fn error_word_must_decode() {
        let err = assemble(".word 0xffffffff\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::WordDoesNotDecode(0xffffffff)
        ));
    }

    #[test]
    fn error_duplicate_directive() {
        let err = assemble(".dmem 4\n.dmem 8\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::DuplicateDirective {
                directive: ".dmem",
                first_line: 1
            }
        ));
    }

    #[test]
    fn error_trailing_tokens() {
        let err = assemble("l.nop r1\n").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::Expected {
                expected: "end of line",
                ..
            }
        ));
    }

    #[test]
    fn error_fi_window_must_fit_the_program() {
        let err = assemble("l.nop\n.fi_window 0:5\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::Expected { .. }));
        let err = assemble("l.nop\n.fi_window 1:1\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::Expected { .. }));
    }

    #[test]
    fn assembled_programs_always_encode() {
        // Every operand the parser accepts is encodable: to_words must not
        // panic even at the field extremes.
        let asm = assemble(
            "l.addi r31, r31, -32768\n\
             l.movhi r31, 0xffff\n\
             l.bf -33554432\n\
             l.j 33554431\n\
             l.lwz r31, -32768(r31)\n",
        )
        .unwrap();
        assert_eq!(asm.program.to_words().len(), 5);
    }
}
