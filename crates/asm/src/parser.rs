//! Two-pass parser: tokenize and parse each line, then resolve labels.

use crate::error::{AsmError, AsmErrorKind, SourceSpan};
use crate::Assembly;
use sfi_isa::{Instruction, Program, Reg};
use std::collections::BTreeMap;

/// Largest branch offset representable in the 26-bit encoding.
const BRANCH_MAX: i64 = (1 << 25) - 1;
/// Smallest branch offset representable in the 26-bit encoding.
const BRANCH_MIN: i64 = -(1 << 25);

/// One token on a source line: a word or a single punctuation character
/// (`,`, `:`, `(`, `)`), with its 1-based starting column.
#[derive(Debug, Clone)]
struct Tok {
    text: String,
    col: u32,
}

impl Tok {
    fn span(&self, line: u32) -> SourceSpan {
        SourceSpan::new(line, self.col, self.text.chars().count() as u32)
    }

    fn is_punct(&self) -> bool {
        matches!(self.text.as_str(), "," | ":" | "(" | ")")
    }
}

/// Splits one line into tokens, dropping `;`/`#` comments and whitespace.
fn tokenize(line: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let mut cur_col = 0u32;
    let flush = |cur: &mut String, cur_col: u32, toks: &mut Vec<Tok>| {
        if !cur.is_empty() {
            toks.push(Tok {
                text: std::mem::take(cur),
                col: cur_col,
            });
        }
    };
    for (idx, ch) in line.chars().enumerate() {
        let col = idx as u32 + 1;
        if ch == ';' || ch == '#' {
            break;
        }
        if ch.is_whitespace() || matches!(ch, ',' | ':' | '(' | ')') {
            flush(&mut cur, cur_col, &mut toks);
            if !ch.is_whitespace() {
                toks.push(Tok {
                    text: ch.to_string(),
                    col,
                });
            }
        } else {
            if cur.is_empty() {
                cur_col = col;
            }
            cur.push(ch);
        }
    }
    flush(&mut cur, cur_col, &mut toks);
    toks
}

/// Parses `text` as a decimal or `0x`/`0X` hexadecimal integer with an
/// optional leading minus sign.
fn parse_int(text: &str) -> Option<i64> {
    let (neg, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let magnitude = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        if hex.is_empty() {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()?
    } else {
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u64>().ok()?
    };
    let value = i64::try_from(magnitude).ok()?;
    Some(if neg { -value } else { value })
}

/// Whether a token looks like a number rather than a label reference.
fn is_numeric(text: &str) -> bool {
    text.strip_prefix('-')
        .unwrap_or(text)
        .starts_with(|c: char| c.is_ascii_digit())
}

/// Whether a token is a valid label name: starts with a letter or `_`,
/// continues with letters, digits, `_`, `$` or `.`.
fn is_label_name(text: &str) -> bool {
    let mut chars = text.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '.'))
}

/// Sequential token reader over one line, producing spanned errors.
struct Cursor<'a> {
    toks: &'a [Tok],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok], line: u32, start: usize) -> Self {
        Cursor {
            toks,
            i: start,
            line,
        }
    }

    /// Span of the current token, or of the end of the line.
    fn span_here(&self) -> SourceSpan {
        match self.toks.get(self.i) {
            Some(t) => t.span(self.line),
            None => {
                let col = self
                    .toks
                    .last()
                    .map(|t| t.col + t.text.chars().count() as u32)
                    .unwrap_or(1);
                SourceSpan::new(self.line, col, 1)
            }
        }
    }

    fn expected(&self, expected: &'static str) -> AsmError {
        let found = match self.toks.get(self.i) {
            Some(t) => format!("`{}`", t.text),
            None => "end of line".to_string(),
        };
        AsmError::new(AsmErrorKind::Expected { expected, found }, self.span_here())
    }

    /// Consumes a word token (not punctuation).
    fn word(&mut self, what: &'static str) -> Result<&'a Tok, AsmError> {
        match self.toks.get(self.i) {
            Some(t) if !t.is_punct() => {
                self.i += 1;
                Ok(t)
            }
            _ => Err(self.expected(what)),
        }
    }

    /// Consumes one punctuation token.
    fn punct(&mut self, p: &str, what: &'static str) -> Result<(), AsmError> {
        match self.toks.get(self.i) {
            Some(t) if t.text == p => {
                self.i += 1;
                Ok(())
            }
            _ => Err(self.expected(what)),
        }
    }

    /// Consumes a register operand (`r0`–`r31`).
    fn reg(&mut self) -> Result<Reg, AsmError> {
        let tok = self.word("a register (r0–r31)")?;
        let number = tok
            .text
            .strip_prefix('r')
            .filter(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|rest| rest.parse::<u8>().ok())
            .filter(|&n| n < 32);
        match number {
            Some(n) => Ok(Reg(n)),
            None => Err(AsmError::new(
                AsmErrorKind::BadRegister(tok.text.clone()),
                tok.span(self.line),
            )),
        }
    }

    /// Consumes a numeric operand and returns `(value, token)`.
    fn int(&mut self, what: &'static str) -> Result<(i64, &'a Tok), AsmError> {
        let tok = self.word(what)?;
        match parse_int(&tok.text) {
            Some(v) => Ok((v, tok)),
            None => Err(AsmError::new(
                AsmErrorKind::BadNumber(tok.text.clone()),
                tok.span(self.line),
            )),
        }
    }

    /// Consumes a numeric operand constrained to `range`.
    fn int_in(
        &mut self,
        what: &'static str,
        field: &'static str,
        range: std::ops::RangeInclusive<i64>,
    ) -> Result<i64, AsmError> {
        let (value, tok) = self.int(what)?;
        if range.contains(&value) {
            Ok(value)
        } else {
            Err(AsmError::new(
                AsmErrorKind::ImmediateOutOfRange {
                    text: tok.text.clone(),
                    field,
                },
                tok.span(self.line),
            ))
        }
    }

    /// Signed 16-bit immediate: `-32768..=65535`, high values reinterpreted
    /// as their two's-complement bit pattern (GNU as convention).
    fn imm_s16(&mut self) -> Result<i16, AsmError> {
        let value = self.int_in("a signed 16-bit immediate", "signed 16-bit", -32768..=65535)?;
        Ok(value as u16 as i16)
    }

    fn imm_u16(&mut self) -> Result<u16, AsmError> {
        let value = self.int_in("an unsigned 16-bit immediate", "unsigned 16-bit", 0..=65535)?;
        Ok(value as u16)
    }

    fn shamt(&mut self) -> Result<u8, AsmError> {
        let value = self.int_in("a shift amount (0–31)", "5-bit shift amount", 0..=31)?;
        Ok(value as u8)
    }

    fn u32_word(
        &mut self,
        what: &'static str,
        field: &'static str,
    ) -> Result<(u32, &'a Tok), AsmError> {
        let (value, tok) = self.int(what)?;
        match u32::try_from(value) {
            Ok(v) => Ok((v, tok)),
            Err(_) => Err(AsmError::new(
                AsmErrorKind::ImmediateOutOfRange {
                    text: tok.text.clone(),
                    field,
                },
                tok.span(self.line),
            )),
        }
    }

    fn comma(&mut self) -> Result<(), AsmError> {
        self.punct(",", "`,`")
    }

    /// Asserts the line is fully consumed.
    fn end(&self) -> Result<(), AsmError> {
        if self.i == self.toks.len() {
            Ok(())
        } else {
            Err(self.expected("end of line"))
        }
    }

    fn at_end(&self) -> bool {
        self.i == self.toks.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Bf,
    Bnf,
    J,
    Jal,
}

impl BranchKind {
    fn build(self, offset: i32) -> Instruction {
        match self {
            BranchKind::Bf => Instruction::Bf { offset },
            BranchKind::Bnf => Instruction::Bnf { offset },
            BranchKind::J => Instruction::J { offset },
            BranchKind::Jal => Instruction::Jal { offset },
        }
    }
}

#[derive(Debug)]
struct Fixup {
    pc: u32,
    label: String,
    span: SourceSpan,
    kind: BranchKind,
}

/// A `.fi_window` bound: a literal pc or a label resolved in pass 2.
#[derive(Debug)]
enum FiBound {
    Pc(u32),
    Label(String, SourceSpan),
}

#[derive(Default)]
pub(crate) struct Parser {
    instructions: Vec<Instruction>,
    line_map: Vec<u32>,
    labels: BTreeMap<String, (u32, u32)>,
    fixups: Vec<Fixup>,
    dmem: Option<(usize, u32)>,
    input: Vec<u32>,
    output: Option<((u32, u32), u32)>,
    fi_window: Option<((FiBound, FiBound), u32, SourceSpan)>,
}

impl Parser {
    pub(crate) fn assemble(source: &str) -> Result<Assembly, AsmError> {
        let mut parser = Parser::default();
        for (idx, line) in source.lines().enumerate() {
            parser.line(idx as u32 + 1, line)?;
        }
        parser.finish()
    }

    fn here(&self) -> u32 {
        self.instructions.len() as u32
    }

    fn push(&mut self, line: u32, instruction: Instruction) {
        self.instructions.push(instruction);
        self.line_map.push(line);
    }

    fn line(&mut self, line_no: u32, line: &str) -> Result<(), AsmError> {
        let toks = tokenize(line);
        let mut start = 0usize;
        // Leading `name:` label definitions and listing-style `N:` address
        // annotations (both may repeat).
        while start + 1 < toks.len() && toks[start + 1].text == ":" && !toks[start].is_punct() {
            let tok = &toks[start];
            if is_numeric(&tok.text) {
                let annotated = parse_int(&tok.text).filter(|&v| v >= 0).ok_or_else(|| {
                    AsmError::new(AsmErrorKind::BadNumber(tok.text.clone()), tok.span(line_no))
                })? as u64;
                if annotated != u64::from(self.here()) {
                    return Err(AsmError::new(
                        AsmErrorKind::AddressAnnotationMismatch {
                            annotated,
                            actual: self.here(),
                        },
                        tok.span(line_no),
                    ));
                }
            } else if is_label_name(&tok.text) {
                if let Some(&(_, first_line)) = self.labels.get(&tok.text) {
                    return Err(AsmError::new(
                        AsmErrorKind::DuplicateLabel {
                            name: tok.text.clone(),
                            first_line,
                        },
                        tok.span(line_no),
                    ));
                }
                self.labels.insert(tok.text.clone(), (self.here(), line_no));
            } else {
                break;
            }
            start += 2;
        }
        let mut cur = Cursor::new(&toks, line_no, start);
        if cur.at_end() {
            return Ok(());
        }
        let head = cur.word("an instruction, directive or label")?;
        if head.text.starts_with('.') {
            self.directive(head, &mut cur)?;
        } else {
            self.instruction(head, &mut cur)?;
        }
        cur.end()
    }

    fn instruction(&mut self, mnem: &Tok, cur: &mut Cursor) -> Result<(), AsmError> {
        use Instruction::*;
        let line = cur.line;
        let name = mnem.text.as_str();
        type Rrr = fn(Reg, Reg, Reg) -> Instruction;
        type Rri16 = fn(Reg, Reg, i16) -> Instruction;
        type Rru16 = fn(Reg, Reg, u16) -> Instruction;
        type RrSh = fn(Reg, Reg, u8) -> Instruction;
        type Rr = fn(Reg, Reg) -> Instruction;
        let rrr: Option<Rrr> = match name {
            "l.add" => Some(|rd, ra, rb| Add { rd, ra, rb }),
            "l.sub" => Some(|rd, ra, rb| Sub { rd, ra, rb }),
            "l.and" => Some(|rd, ra, rb| And { rd, ra, rb }),
            "l.or" => Some(|rd, ra, rb| Or { rd, ra, rb }),
            "l.xor" => Some(|rd, ra, rb| Xor { rd, ra, rb }),
            "l.mul" => Some(|rd, ra, rb| Mul { rd, ra, rb }),
            "l.sll" => Some(|rd, ra, rb| Sll { rd, ra, rb }),
            "l.srl" => Some(|rd, ra, rb| Srl { rd, ra, rb }),
            "l.sra" => Some(|rd, ra, rb| Sra { rd, ra, rb }),
            _ => None,
        };
        if let Some(build) = rrr {
            let rd = cur.reg()?;
            cur.comma()?;
            let ra = cur.reg()?;
            cur.comma()?;
            let rb = cur.reg()?;
            self.push(line, build(rd, ra, rb));
            return Ok(());
        }
        let rri: Option<Rri16> = match name {
            "l.addi" => Some(|rd, ra, imm| Addi { rd, ra, imm }),
            "l.muli" => Some(|rd, ra, imm| Muli { rd, ra, imm }),
            _ => None,
        };
        if let Some(build) = rri {
            let rd = cur.reg()?;
            cur.comma()?;
            let ra = cur.reg()?;
            cur.comma()?;
            let imm = cur.imm_s16()?;
            self.push(line, build(rd, ra, imm));
            return Ok(());
        }
        let rru: Option<Rru16> = match name {
            "l.andi" => Some(|rd, ra, imm| Andi { rd, ra, imm }),
            "l.ori" => Some(|rd, ra, imm| Ori { rd, ra, imm }),
            "l.xori" => Some(|rd, ra, imm| Xori { rd, ra, imm }),
            _ => None,
        };
        if let Some(build) = rru {
            let rd = cur.reg()?;
            cur.comma()?;
            let ra = cur.reg()?;
            cur.comma()?;
            let imm = cur.imm_u16()?;
            self.push(line, build(rd, ra, imm));
            return Ok(());
        }
        let rrsh: Option<RrSh> = match name {
            "l.slli" => Some(|rd, ra, shamt| Slli { rd, ra, shamt }),
            "l.srli" => Some(|rd, ra, shamt| Srli { rd, ra, shamt }),
            "l.srai" => Some(|rd, ra, shamt| Srai { rd, ra, shamt }),
            _ => None,
        };
        if let Some(build) = rrsh {
            let rd = cur.reg()?;
            cur.comma()?;
            let ra = cur.reg()?;
            cur.comma()?;
            let shamt = cur.shamt()?;
            self.push(line, build(rd, ra, shamt));
            return Ok(());
        }
        let rr: Option<Rr> = match name {
            "l.sfeq" => Some(|ra, rb| Sfeq { ra, rb }),
            "l.sfne" => Some(|ra, rb| Sfne { ra, rb }),
            "l.sfltu" => Some(|ra, rb| Sfltu { ra, rb }),
            "l.sfgeu" => Some(|ra, rb| Sfgeu { ra, rb }),
            "l.sfgtu" => Some(|ra, rb| Sfgtu { ra, rb }),
            "l.sfleu" => Some(|ra, rb| Sfleu { ra, rb }),
            "l.sflts" => Some(|ra, rb| Sflts { ra, rb }),
            "l.sfges" => Some(|ra, rb| Sfges { ra, rb }),
            "l.sfgts" => Some(|ra, rb| Sfgts { ra, rb }),
            "l.sfles" => Some(|ra, rb| Sfles { ra, rb }),
            _ => None,
        };
        if let Some(build) = rr {
            let ra = cur.reg()?;
            cur.comma()?;
            let rb = cur.reg()?;
            self.push(line, build(ra, rb));
            return Ok(());
        }
        let branch = match name {
            "l.bf" => Some(BranchKind::Bf),
            "l.bnf" => Some(BranchKind::Bnf),
            "l.j" => Some(BranchKind::J),
            "l.jal" => Some(BranchKind::Jal),
            _ => None,
        };
        if let Some(kind) = branch {
            let tok = cur.word("a branch target (offset or label)")?;
            if is_numeric(&tok.text) {
                let offset = parse_int(&tok.text).ok_or_else(|| {
                    AsmError::new(AsmErrorKind::BadNumber(tok.text.clone()), tok.span(line))
                })?;
                if !(BRANCH_MIN..=BRANCH_MAX).contains(&offset) {
                    return Err(AsmError::new(
                        AsmErrorKind::OffsetOutOfRange { offset },
                        tok.span(line),
                    ));
                }
                self.push(line, kind.build(offset as i32));
            } else if is_label_name(&tok.text) {
                self.fixups.push(Fixup {
                    pc: self.here(),
                    label: tok.text.clone(),
                    span: tok.span(line),
                    kind,
                });
                self.push(line, kind.build(0));
            } else {
                return Err(AsmError::new(
                    AsmErrorKind::Expected {
                        expected: "a branch target (offset or label)",
                        found: format!("`{}`", tok.text),
                    },
                    tok.span(line),
                ));
            }
            return Ok(());
        }
        match name {
            "l.movhi" => {
                let rd = cur.reg()?;
                cur.comma()?;
                let imm = cur.imm_u16()?;
                self.push(line, Movhi { rd, imm });
                Ok(())
            }
            "l.lwz" => {
                let rd = cur.reg()?;
                cur.comma()?;
                let offset = cur.imm_s16()?;
                cur.punct("(", "`(` before the base register")?;
                let ra = cur.reg()?;
                cur.punct(")", "`)` after the base register")?;
                self.push(line, Lwz { rd, ra, offset });
                Ok(())
            }
            "l.sw" => {
                let offset = cur.imm_s16()?;
                cur.punct("(", "`(` before the base register")?;
                let ra = cur.reg()?;
                cur.punct(")", "`)` after the base register")?;
                cur.comma()?;
                let rb = cur.reg()?;
                self.push(line, Sw { ra, rb, offset });
                Ok(())
            }
            "l.jr" => {
                let ra = cur.reg()?;
                self.push(line, Jr { ra });
                Ok(())
            }
            "l.nop" => {
                self.push(line, Nop);
                Ok(())
            }
            _ => Err(AsmError::new(
                AsmErrorKind::UnknownMnemonic(mnem.text.clone()),
                mnem.span(line),
            )),
        }
    }

    fn directive(&mut self, head: &Tok, cur: &mut Cursor) -> Result<(), AsmError> {
        let line = cur.line;
        match head.text.as_str() {
            ".dmem" => {
                if let Some((_, first_line)) = self.dmem {
                    return Err(AsmError::new(
                        AsmErrorKind::DuplicateDirective {
                            directive: ".dmem",
                            first_line,
                        },
                        head.span(line),
                    ));
                }
                let (words, tok) =
                    cur.u32_word("a data-memory size in words", "data-memory size")?;
                if words == 0 {
                    return Err(AsmError::new(
                        AsmErrorKind::ImmediateOutOfRange {
                            text: tok.text.clone(),
                            field: "positive data-memory size",
                        },
                        tok.span(line),
                    ));
                }
                self.dmem = Some((words as usize, line));
                Ok(())
            }
            ".word" => {
                let (word, tok) = cur.u32_word("a 32-bit instruction word", "32-bit word")?;
                let mut pending = vec![(word, tok.span(line))];
                while !cur.at_end() {
                    let (word, tok) = cur.u32_word("a 32-bit instruction word", "32-bit word")?;
                    pending.push((word, tok.span(line)));
                }
                for (word, span) in pending {
                    let instruction = sfi_isa::decode(word)
                        .map_err(|_| AsmError::new(AsmErrorKind::WordDoesNotDecode(word), span))?;
                    self.push(line, instruction);
                }
                Ok(())
            }
            ".input" => {
                let (word, _) = cur.u32_word("a 32-bit data word", "32-bit word")?;
                self.input.push(word);
                while !cur.at_end() {
                    let (word, _) = cur.u32_word("a 32-bit data word", "32-bit word")?;
                    self.input.push(word);
                }
                Ok(())
            }
            ".output" => {
                if let Some((_, first_line)) = self.output {
                    return Err(AsmError::new(
                        AsmErrorKind::DuplicateDirective {
                            directive: ".output",
                            first_line,
                        },
                        head.span(line),
                    ));
                }
                let (lo, lo_tok) = cur.u32_word("a data-memory word index", "word index")?;
                cur.punct(":", "`:` between the range bounds")?;
                let (hi, _) = cur.u32_word("a data-memory word index", "word index")?;
                if lo >= hi {
                    return Err(AsmError::new(
                        AsmErrorKind::Expected {
                            expected: "a non-empty `lo:hi` word range (lo < hi)",
                            found: format!("`{lo}:{hi}`"),
                        },
                        lo_tok.span(line),
                    ));
                }
                self.output = Some(((lo, hi), line));
                Ok(())
            }
            ".fi_window" => {
                if let Some((_, first_line, _)) = self.fi_window {
                    return Err(AsmError::new(
                        AsmErrorKind::DuplicateDirective {
                            directive: ".fi_window",
                            first_line,
                        },
                        head.span(line),
                    ));
                }
                let lo = self.fi_bound(cur)?;
                cur.punct(":", "`:` between the range bounds")?;
                let hi = self.fi_bound(cur)?;
                self.fi_window = Some(((lo, hi), line, head.span(line)));
                Ok(())
            }
            other => Err(AsmError::new(
                AsmErrorKind::UnknownDirective(other.to_string()),
                head.span(line),
            )),
        }
    }

    fn fi_bound(&mut self, cur: &mut Cursor) -> Result<FiBound, AsmError> {
        let tok = cur.word("a pc bound (number or label)")?;
        if is_numeric(&tok.text) {
            let (value, span) = (parse_int(&tok.text), tok.span(cur.line));
            let pc = value
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| AsmError::new(AsmErrorKind::BadNumber(tok.text.clone()), span))?;
            Ok(FiBound::Pc(pc))
        } else if is_label_name(&tok.text) {
            Ok(FiBound::Label(tok.text.clone(), tok.span(cur.line)))
        } else {
            Err(AsmError::new(
                AsmErrorKind::Expected {
                    expected: "a pc bound (number or label)",
                    found: format!("`{}`", tok.text),
                },
                tok.span(cur.line),
            ))
        }
    }

    fn lookup(&self, label: &str, span: SourceSpan) -> Result<u32, AsmError> {
        self.labels
            .get(label)
            .map(|&(pc, _)| pc)
            .ok_or_else(|| AsmError::new(AsmErrorKind::UndefinedLabel(label.to_string()), span))
    }

    fn finish(mut self) -> Result<Assembly, AsmError> {
        for fixup in std::mem::take(&mut self.fixups) {
            let target = self.lookup(&fixup.label, fixup.span)?;
            let offset = i64::from(target) - (i64::from(fixup.pc) + 1);
            if !(BRANCH_MIN..=BRANCH_MAX).contains(&offset) {
                return Err(AsmError::new(
                    AsmErrorKind::OffsetOutOfRange { offset },
                    fixup.span,
                ));
            }
            self.instructions[fixup.pc as usize] = fixup.kind.build(offset as i32);
        }
        let len = self.here();
        let fi_window = match self.fi_window.take() {
            None => None,
            Some(((lo, hi), _, span)) => {
                let lo = match lo {
                    FiBound::Pc(pc) => pc,
                    FiBound::Label(name, span) => self.lookup(&name, span)?,
                };
                let hi = match hi {
                    FiBound::Pc(pc) => pc,
                    FiBound::Label(name, span) => self.lookup(&name, span)?,
                };
                if lo >= hi || hi > len {
                    return Err(AsmError::new(
                        AsmErrorKind::Expected {
                            expected: "a non-empty pc range within the program",
                            found: format!("`{lo}:{hi}` (program has {len} instructions)"),
                        },
                        span,
                    ));
                }
                Some((lo, hi))
            }
        };
        Ok(Assembly {
            program: Program::new(self.instructions),
            line_map: self.line_map,
            dmem_words: self.dmem.map(|(words, _)| words),
            input: self.input,
            output: self.output.map(|(range, _)| range),
            fi_window,
            labels: self
                .labels
                .into_iter()
                .map(|(name, (pc, _))| (name, pc))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_punctuation_and_comments() {
        let toks = tokenize("loop: l.lwz r5, -8(r2) ; fetch");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["loop", ":", "l.lwz", "r5", ",", "-8", "(", "r2", ")"]
        );
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[2].col, 7);
    }

    #[test]
    fn parse_int_accepts_decimal_and_hex() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-3"), Some(-3));
        assert_eq!(parse_int("0xFF"), Some(255));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("0x"), None);
        assert_eq!(parse_int(""), None);
        assert_eq!(parse_int("abc"), None);
        assert_eq!(parse_int("1_000"), None);
    }

    #[test]
    fn label_names() {
        assert!(is_label_name("loop"));
        assert!(is_label_name("_start"));
        assert!(is_label_name("a.b$1"));
        assert!(!is_label_name("3loop"));
        assert!(!is_label_name(".dmem"));
        assert!(!is_label_name("-x"));
    }
}
