//! Typed, span-carrying assembly errors with rendered caret context.

use std::fmt;

/// A half-open character range on one source line, used to point error
/// messages at the offending token.
///
/// Lines and columns are 1-based (editor convention); `len` is the number
/// of characters the caret underline covers and is always at least 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSpan {
    /// 1-based source line.
    pub line: u32,
    /// 1-based character column of the first offending character.
    pub col: u32,
    /// Number of characters covered (>= 1).
    pub len: u32,
}

impl SourceSpan {
    /// A span covering `len` characters at `line:col`.
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        SourceSpan {
            line,
            col,
            len: len.max(1),
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What went wrong, independent of where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A token in instruction position is not a known mnemonic.
    UnknownMnemonic(String),
    /// A `.`-prefixed token is not a known directive.
    UnknownDirective(String),
    /// The same label name was defined twice.
    DuplicateLabel {
        /// The label name.
        name: String,
        /// Line of the first definition.
        first_line: u32,
    },
    /// A branch or directive referenced a label that is never defined.
    UndefinedLabel(String),
    /// An operand in register position is not `r0`–`r31`.
    BadRegister(String),
    /// A numeric operand does not parse as a (decimal or `0x` hex) number.
    BadNumber(String),
    /// A numeric operand parsed but does not fit its field.
    ImmediateOutOfRange {
        /// The operand as written.
        text: String,
        /// Description of the field it must fit ("signed 16-bit", …).
        field: &'static str,
    },
    /// A resolved branch offset does not fit the 26-bit encoding.
    OffsetOutOfRange {
        /// The resolved word offset.
        offset: i64,
    },
    /// A `.word` value does not decode to a valid instruction.
    WordDoesNotDecode(u32),
    /// A one-shot directive (`.dmem`, `.output`, `.fi_window`) appeared twice.
    DuplicateDirective {
        /// The directive name, including the leading dot.
        directive: &'static str,
        /// Line of the first occurrence.
        first_line: u32,
    },
    /// A listing-style `N:` address annotation disagrees with the actual
    /// instruction address at that point.
    AddressAnnotationMismatch {
        /// The annotated address.
        annotated: u64,
        /// The actual next instruction address.
        actual: u32,
    },
    /// The parser expected one thing and found another.
    Expected {
        /// What the grammar required here.
        expected: &'static str,
        /// The token actually found, or `<end of line>`.
        found: String,
    },
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::DuplicateLabel { name, first_line } => {
                write!(
                    f,
                    "duplicate label `{name}` (first defined on line {first_line})"
                )
            }
            AsmErrorKind::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            AsmErrorKind::BadRegister(t) => {
                write!(f, "`{t}` is not a register (expected r0–r31)")
            }
            AsmErrorKind::BadNumber(t) => {
                write!(f, "`{t}` is not a number (expected decimal or 0x hex)")
            }
            AsmErrorKind::ImmediateOutOfRange { text, field } => {
                write!(f, "`{text}` does not fit a {field} field")
            }
            AsmErrorKind::OffsetOutOfRange { offset } => {
                write!(f, "branch offset {offset} does not fit the 26-bit encoding")
            }
            AsmErrorKind::WordDoesNotDecode(w) => {
                write!(f, "word {w:#010x} does not decode to an instruction")
            }
            AsmErrorKind::DuplicateDirective {
                directive,
                first_line,
            } => {
                write!(
                    f,
                    "duplicate `{directive}` directive (first on line {first_line})"
                )
            }
            AsmErrorKind::AddressAnnotationMismatch { annotated, actual } => write!(
                f,
                "address annotation `{annotated}:` does not match the next \
                 instruction address {actual}"
            ),
            AsmErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
        }
    }
}

/// An assembly error: a typed [`AsmErrorKind`] pinned to a [`SourceSpan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// What went wrong.
    pub kind: AsmErrorKind,
    /// Where it went wrong.
    pub span: SourceSpan,
}

impl AsmError {
    /// Builds an error at `span`.
    pub fn new(kind: AsmErrorKind, span: SourceSpan) -> Self {
        AsmError { kind, span }
    }

    /// Renders the error with caret context, rustc-style:
    ///
    /// ```text
    /// error: unknown directive `.bogus`
    ///   --> bad.s:3:1
    ///    |
    ///  3 | .bogus 1
    ///    | ^^^^^^
    /// ```
    ///
    /// `name` is the display name of the source (usually the file path);
    /// `source` is the full source text the error was produced from.
    pub fn render(&self, name: &str, source: &str) -> String {
        let line_no = self.span.line as usize;
        let line_text = source.lines().nth(line_no.saturating_sub(1)).unwrap_or("");
        let gutter_width = line_no.to_string().len().max(2);
        let gutter = " ".repeat(gutter_width);
        let underline_pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
        let underline = "^".repeat(self.span.len as usize);
        format!(
            "error: {kind}\n{gutter}--> {name}:{line}:{col}\n{gutter} |\n{line_no:>width$} | {line_text}\n{gutter} | {underline_pad}{underline}\n",
            kind = self.kind,
            line = self.span.line,
            col = self.span.col,
            width = gutter_width,
        )
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span, self.kind)
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_token() {
        let source = "l.nop\n.bogus 1\n";
        let err = AsmError::new(
            AsmErrorKind::UnknownDirective(".bogus".into()),
            SourceSpan::new(2, 1, 6),
        );
        let rendered = err.render("bad.s", source);
        assert!(
            rendered.contains("error: unknown directive `.bogus`"),
            "{rendered}"
        );
        assert!(rendered.contains("--> bad.s:2:1"), "{rendered}");
        assert!(rendered.contains(" 2 | .bogus 1"), "{rendered}");
        assert!(rendered.contains("| ^^^^^^"), "{rendered}");
    }

    #[test]
    fn display_carries_line_and_column() {
        let err = AsmError::new(
            AsmErrorKind::BadRegister("r99".into()),
            SourceSpan::new(7, 10, 3),
        );
        assert_eq!(
            err.to_string(),
            "line 7:10: `r99` is not a register (expected r0–r31)"
        );
    }

    #[test]
    fn span_len_is_at_least_one() {
        assert_eq!(SourceSpan::new(1, 1, 0).len, 1);
    }
}
