//! Differential round-trip properties: `assemble(listing(p)) == p`.
//!
//! The listing printed by [`sfi_isa::Program::listing`] — address
//! annotations, `; -> target` comments and all — must assemble back to a
//! bit-identical program, for every builtin kernel and for random valid
//! programs. A third property feeds the assembler random token soup and
//! asserts it never panics.

use proptest::prelude::*;
use sfi_asm::assemble;
use sfi_isa::{Instruction, Program, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn branch_offset() -> impl Strategy<Value = i32> {
    -(1i32 << 25)..(1i32 << 25)
}

/// A strategy covering every `Instruction` variant (all 36).
fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Add { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sub { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::And { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Or { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Xor { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Mul { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sll { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Srl { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instruction::Sra { rd, ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Instruction::Addi { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Andi { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Ori { rd, ra, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rd, ra, imm)| Instruction::Xori { rd, ra, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, imm)| Instruction::Muli { rd, ra, imm }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Slli { rd, ra, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Srli { rd, ra, shamt }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, ra, shamt)| Instruction::Srai { rd, ra, shamt }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Movhi { rd, imm }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfeq { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfne { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfltu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgeu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgtu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfleu { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sflts { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfges { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfgts { ra, rb }),
        (reg(), reg()).prop_map(|(ra, rb)| Instruction::Sfles { ra, rb }),
        (reg(), reg(), any::<i16>()).prop_map(|(rd, ra, offset)| Instruction::Lwz {
            rd,
            ra,
            offset
        }),
        (reg(), reg(), any::<i16>()).prop_map(|(ra, rb, offset)| Instruction::Sw {
            ra,
            rb,
            offset
        }),
        branch_offset().prop_map(|offset| Instruction::Bf { offset }),
        branch_offset().prop_map(|offset| Instruction::Bnf { offset }),
        branch_offset().prop_map(|offset| Instruction::J { offset }),
        branch_offset().prop_map(|offset| Instruction::Jal { offset }),
        reg().prop_map(|ra| Instruction::Jr { ra }),
        Just(Instruction::Nop),
    ]
}

/// Asserts `assemble(p.listing())` reproduces `p` with identical words.
fn assert_roundtrip(program: &Program, what: &str) {
    let listing = program.listing();
    let asm = assemble(&listing)
        .unwrap_or_else(|err| panic!("{what}: listing must assemble: {err}\n{listing}"));
    assert_eq!(&asm.program, program, "{what}: instruction mismatch");
    assert_eq!(
        asm.program.to_words(),
        program.to_words(),
        "{what}: words not bit-identical"
    );
}

#[test]
fn every_builtin_kernel_roundtrips_through_its_listing() {
    let suite = sfi_kernels::extended_suite(3);
    assert!(suite.len() >= 9, "expected the full extended suite");
    for bench in &suite {
        assert_roundtrip(bench.program(), bench.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_programs_roundtrip_through_their_listing(
        instructions in prop::collection::vec(instruction(), 0..40)
    ) {
        let program = Program::new(instructions);
        assert_roundtrip(&program, "random program");
    }

    #[test]
    fn assembler_never_panics_on_token_soup(
        fragments in prop::collection::vec(
            prop::sample::select(vec![
                "l.add", "l.addi", "l.bogus", "l.sw", "l.movhi", ".dmem", ".word",
                ".fi_window", ".bogus", "r3", "r31", "r32", "loop", "loop:", ":",
                ",", "(", ")", "-1", "0xffffffff", "65536", "-32769", ";", "#",
                "0x", "--", "l.", ".", "9999999999999999999999", "\n", "\t",
            ]),
            0..24,
        ),
        joiner in prop::sample::select(vec![" ", "", "\n"]),
    ) {
        // Outcome (Ok or typed Err) is irrelevant — it must simply return.
        let source = fragments.join(joiner);
        let _ = assemble(&source);
    }

    #[test]
    fn assemble_of_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..128)
    ) {
        let _ = assemble(&String::from_utf8_lossy(&bytes));
    }
}
