//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the slice of criterion's API the bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], `criterion_group!` and `criterion_main!`.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations and reports min / mean /
//! max wall-clock time.  There is no statistical analysis, plotting or
//! HTML report — the goal is that `cargo bench` exercises the same code
//! paths end to end and prints comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs the closure under timing (the argument of `bench_function`).
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` iterations of `f` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&name, &bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (prefixes every entry with the group name).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        self.parent.bench_function(full, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $( $target:path ),+ $(,)? ) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $( $target:path ),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $( $group:path ),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_function(format!("{}_cycles", 8), |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs() {
        shim_group();
    }
}
