//! Property-based tests of the timing-statistics data structures.

use proptest::prelude::*;
use sfi_netlist::VoltageScaling;
use sfi_timing::{ErrorCdf, VddDelayCurve, VoltageNoise};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdf_probability_is_monotone_and_bounded(
        mut samples in prop::collection::vec(1.0f64..5000.0, 1..50),
        p1 in 0.0f64..6000.0,
        p2 in 0.0f64..6000.0,
    ) {
        samples.iter_mut().for_each(|s| *s = s.abs());
        let cdf = ErrorCdf::from_samples(samples);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let e_lo = cdf.error_probability(lo);
        let e_hi = cdf.error_probability(hi);
        prop_assert!((0.0..=1.0).contains(&e_lo));
        prop_assert!((0.0..=1.0).contains(&e_hi));
        // A longer available period can never increase the error probability.
        prop_assert!(e_hi <= e_lo + 1e-12);
    }

    #[test]
    fn cdf_extremes(samples in prop::collection::vec(1.0f64..5000.0, 1..50)) {
        let cdf = ErrorCdf::from_samples(samples);
        let max = cdf.max_delay_ps().expect("non-empty");
        let min = cdf.min_delay_ps().expect("non-empty");
        prop_assert_eq!(cdf.error_probability(max), 0.0);
        prop_assert_eq!(cdf.error_probability(min - 1.0), 1.0);
    }

    #[test]
    fn vdd_curve_monotone(v1 in 0.6f64..1.0, v2 in 0.6f64..1.0) {
        let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(curve.delay_factor(hi) <= curve.delay_factor(lo) + 1e-12);
    }

    #[test]
    fn noise_samples_respect_clipping(sigma_mv in 0.0f64..50.0, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let noise = VoltageNoise::with_sigma_mv(sigma_mv);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let v = noise.sample_volts(&mut rng);
            prop_assert!(v.abs() <= noise.max_excursion_volts() + 1e-15);
        }
    }
}
