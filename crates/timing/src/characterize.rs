//! Instruction-aware timing characterization of the ALU datapath.
//!
//! This is the "gate level characterization kernel" of the paper: for every
//! ALU instruction, a few hundred cycles with randomized operands are pushed
//! through the dynamic timing analysis, and the per-endpoint arrival times
//! are condensed into timing-error CDFs conditioned on the instruction
//! (`P_{E,V,I}(f)` in the paper's notation).

use crate::cdf::ErrorCdf;
use crate::dta::DynamicTimingAnalysis;
use crate::sta::StaticTimingAnalysis;
use crate::units::freq_mhz_to_period_ps;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfi_netlist::alu::{AluDatapath, AluOp};
use sfi_netlist::{DelayModel, VoltageScaling};

/// Distribution the characterization kernel draws its random operands from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandDistribution {
    /// Uniformly random over the full operand width.
    UniformFull,
    /// Uniformly random over the low `bits` of the operand (the paper's
    /// 16-bit value-range experiments of Fig. 4 use this with 16).
    UniformBits(u32),
}

impl OperandDistribution {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, width: usize) -> u64 {
        let bits = match self {
            OperandDistribution::UniformFull => width as u32,
            OperandDistribution::UniformBits(b) => (*b).min(width as u32),
        };
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        rng.gen::<u64>() & mask
    }
}

/// Configuration of the characterization kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizationConfig {
    /// Number of random-operand cycles analysed per ALU instruction.
    /// The paper's kernel uses about 8 kCycles across all instructions,
    /// i.e. roughly 500 per instruction.
    pub cycles_per_op: usize,
    /// Supply voltage the characterization is performed at.
    pub vdd: f64,
    /// Seed for the operand randomization (reproducible characterization).
    pub seed: u64,
    /// Operand value distribution.
    pub operands: OperandDistribution,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        CharacterizationConfig {
            cycles_per_op: 512,
            vdd: 0.7,
            seed: 0x5f1_dac16,
            operands: OperandDistribution::UniformFull,
        }
    }
}

/// The instruction-conditioned timing statistics of one ALU datapath at one
/// supply voltage: an [`ErrorCdf`] per (instruction, endpoint) pair plus the
/// STA reference data used by the pessimistic models.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct TimingCharacterization {
    vdd: f64,
    width: usize,
    cycles_per_op: usize,
    /// `cdfs[op.code()][endpoint]`
    cdfs: Vec<Vec<ErrorCdf>>,
    sta_endpoint_delays_ps: Vec<f64>,
}

impl TimingCharacterization {
    /// Reassembles a characterization from its stored parts — the inverse
    /// of walking [`TimingCharacterization::cdf`] /
    /// [`TimingCharacterization::sta_endpoint_delay_ps`] over all
    /// instructions and endpoints.  This is what the persistent
    /// characterization cache uses to rebuild a [`TimingCharacterization`]
    /// without re-running the gate-level DTA kernel.
    ///
    /// `cdfs` is indexed `[op.code()][endpoint]`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is inconsistent: `cdfs` must have one entry per
    /// [`AluOp::ALL`] member, every instruction must cover all `width`
    /// endpoints, and `sta_endpoint_delays_ps` must have `width` entries.
    pub fn from_parts(
        vdd: f64,
        width: usize,
        cycles_per_op: usize,
        cdfs: Vec<Vec<ErrorCdf>>,
        sta_endpoint_delays_ps: Vec<f64>,
    ) -> Self {
        assert_eq!(
            cdfs.len(),
            AluOp::ALL.len(),
            "expected one CDF row per ALU instruction"
        );
        for (code, row) in cdfs.iter().enumerate() {
            assert_eq!(
                row.len(),
                width,
                "instruction {code} must cover all {width} endpoints"
            );
        }
        assert_eq!(
            sta_endpoint_delays_ps.len(),
            width,
            "expected one STA delay per endpoint"
        );
        TimingCharacterization {
            vdd,
            width,
            cycles_per_op,
            cdfs,
            sta_endpoint_delays_ps,
        }
    }

    /// Supply voltage the characterization was performed at.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Operand width / number of endpoints of the characterized datapath.
    pub fn endpoint_count(&self) -> usize {
        self.width
    }

    /// Number of characterization cycles per instruction.
    pub fn cycles_per_op(&self) -> usize {
        self.cycles_per_op
    }

    /// The CDF of a single (instruction, endpoint) pair.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` is out of range.
    pub fn cdf(&self, op: AluOp, endpoint: usize) -> &ErrorCdf {
        &self.cdfs[op.code() as usize][endpoint]
    }

    /// STA (worst-case) register-to-register delay of an endpoint in
    /// picoseconds, instruction-agnostic — the data model B uses.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` is out of range.
    pub fn sta_endpoint_delay_ps(&self, endpoint: usize) -> f64 {
        self.sta_endpoint_delays_ps[endpoint]
    }

    /// The STA critical-path delay in picoseconds.
    pub fn sta_critical_path_ps(&self) -> f64 {
        self.sta_endpoint_delays_ps
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// The static timing limit in MHz at the characterization voltage.
    pub fn sta_limit_mhz(&self) -> f64 {
        crate::units::period_ps_to_freq_mhz(self.sta_critical_path_ps())
    }

    /// Timing-error probability `P_{E,V,I}(f)` of `endpoint` while
    /// instruction `op` occupies the execution stage, at a clock period of
    /// `period_ps` picoseconds and a per-cycle delay scaling factor
    /// `delay_factor` (1.0 = nominal supply; > 1.0 = droop).
    pub fn error_probability(
        &self,
        op: AluOp,
        endpoint: usize,
        period_ps: f64,
        delay_factor: f64,
    ) -> f64 {
        assert!(
            delay_factor > 0.0,
            "delay factor must be positive, got {delay_factor}"
        );
        self.cdf(op, endpoint)
            .error_probability(period_ps / delay_factor)
    }

    /// Convenience wrapper of [`TimingCharacterization::error_probability`]
    /// taking a clock frequency in MHz.
    pub fn error_probability_at_freq(
        &self,
        op: AluOp,
        endpoint: usize,
        freq_mhz: f64,
        delay_factor: f64,
    ) -> f64 {
        self.error_probability(op, endpoint, freq_mhz_to_period_ps(freq_mhz), delay_factor)
    }

    /// The lowest frequency (MHz) at which any endpoint has a non-zero error
    /// probability for the given instruction — the instruction's point of
    /// first possible failure under nominal supply.
    pub fn first_failure_frequency_mhz(&self, op: AluOp) -> f64 {
        let worst = self.cdfs[op.code() as usize]
            .iter()
            .filter_map(|cdf| cdf.max_delay_ps())
            .fold(0.0, f64::max);
        crate::units::period_ps_to_freq_mhz(worst)
    }
}

/// Runs the characterization kernel over every ALU instruction of `alu`.
///
/// Returns the per-instruction, per-endpoint [`TimingCharacterization`].
///
/// # Panics
///
/// Panics if `config.cycles_per_op` is zero or `config.vdd` is not above the
/// threshold voltage of `scaling`.
pub fn characterize_alu(
    alu: &AluDatapath,
    delays: &DelayModel,
    scaling: &VoltageScaling,
    config: &CharacterizationConfig,
) -> TimingCharacterization {
    characterize_alu_with_multipliers(alu, delays, scaling, config, None)
}

/// Variant of [`characterize_alu`] with per-node delay multipliers as
/// produced by the synthesis-like timing-budgeting pass
/// ([`crate::budget::synthesis_node_multipliers`]).
///
/// # Panics
///
/// Same conditions as [`characterize_alu`]; additionally panics if the
/// multiplier slice length does not match the netlist size.
pub fn characterize_alu_with_multipliers(
    alu: &AluDatapath,
    delays: &DelayModel,
    scaling: &VoltageScaling,
    config: &CharacterizationConfig,
    node_multipliers: Option<&[f64]>,
) -> TimingCharacterization {
    assert!(config.cycles_per_op > 0, "cycles_per_op must be non-zero");
    let dta = DynamicTimingAnalysis::new_with_multipliers(
        alu.netlist(),
        delays,
        scaling,
        config.vdd,
        node_multipliers,
    );
    let sta = StaticTimingAnalysis::run_with_multipliers(
        alu.netlist(),
        delays,
        scaling,
        config.vdd,
        node_multipliers,
    );
    let width = alu.width();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut cdfs: Vec<Vec<ErrorCdf>> = Vec::with_capacity(AluOp::ALL.len());
    for op in AluOp::ALL {
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(config.cycles_per_op); width];
        for _ in 0..config.cycles_per_op {
            let a = config.operands.sample(&mut rng, width);
            let b = config.operands.sample(&mut rng, width);
            let inputs = alu.encode_inputs(op, a, b);
            let result = dta.analyze(&inputs);
            for (endpoint, delay) in result.output_delays_ps.iter().enumerate() {
                samples[endpoint].push(*delay);
            }
        }
        cdfs.push(samples.into_iter().map(ErrorCdf::from_samples).collect());
    }

    TimingCharacterization {
        vdd: config.vdd,
        width,
        cycles_per_op: config.cycles_per_op,
        cdfs,
        sta_endpoint_delays_ps: sta.endpoint_delays().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn characterize(width: usize, cycles: usize) -> (AluDatapath, TimingCharacterization) {
        let alu = AluDatapath::build(width);
        let config = CharacterizationConfig {
            cycles_per_op: cycles,
            ..CharacterizationConfig::default()
        };
        let ch = characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &config,
        );
        (alu, ch)
    }

    #[test]
    fn shapes_and_counts() {
        let (_, ch) = characterize(8, 32);
        assert_eq!(ch.endpoint_count(), 8);
        assert_eq!(ch.cycles_per_op(), 32);
        assert_eq!(ch.vdd(), 0.7);
        for op in AluOp::ALL {
            for e in 0..8 {
                assert_eq!(ch.cdf(op, e).sample_count(), 32);
            }
        }
    }

    #[test]
    fn mul_fails_before_add_with_budgeting() {
        // The instruction-ordering property of the paper (multiplications
        // fail at lower frequencies than additions) holds for the budgeted
        // datapath, which is the configuration the experiment pipeline uses.
        let alu = AluDatapath::build(8);
        let delays = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        let mults = crate::budget::synthesis_node_multipliers(
            &alu,
            &delays,
            &scaling,
            0.7,
            &crate::budget::UnitBudgets::paper_defaults(),
        );
        let ch = characterize_alu_with_multipliers(
            &alu,
            &delays,
            &scaling,
            &CharacterizationConfig {
                cycles_per_op: 128,
                ..Default::default()
            },
            Some(&mults),
        );
        assert!(
            ch.first_failure_frequency_mhz(AluOp::Mul) < ch.first_failure_frequency_mhz(AluOp::Add)
        );
    }

    #[test]
    fn logic_ops_are_fast() {
        let (_, ch) = characterize(8, 64);
        // Single-gate logic operations have far more slack than multiplies.
        assert!(
            ch.first_failure_frequency_mhz(AluOp::Xor)
                > 1.5 * ch.first_failure_frequency_mhz(AluOp::Mul)
        );
    }

    #[test]
    fn probabilities_bounded_and_monotonic() {
        let (_, ch) = characterize(8, 64);
        let sta_period = ch.sta_critical_path_ps();
        for op in [AluOp::Add, AluOp::Mul, AluOp::SfLts] {
            for e in [0usize, 4, 7] {
                let mut prev = 1.0;
                for scale in [0.4, 0.6, 0.8, 1.0, 1.2] {
                    let p = ch.error_probability(op, e, sta_period * scale, 1.0);
                    assert!((0.0..=1.0).contains(&p));
                    assert!(
                        p <= prev + 1e-12,
                        "longer period must not increase probability"
                    );
                    prev = p;
                }
                // At the STA limit nothing fails under nominal conditions.
                assert_eq!(ch.error_probability(op, e, sta_period, 1.0), 0.0);
            }
        }
    }

    #[test]
    fn droop_increases_error_probability() {
        let (_, ch) = characterize(8, 64);
        // Pick a period right at the point where the multiplier barely passes.
        let period = ch.cdf(AluOp::Mul, 7).max_delay_ps().unwrap() * 1.001;
        let nominal = ch.error_probability(AluOp::Mul, 7, period, 1.0);
        let droop = ch.error_probability(AluOp::Mul, 7, period, 1.05);
        assert_eq!(nominal, 0.0);
        assert!(droop > 0.0);
    }

    #[test]
    fn dynamic_delays_bounded_by_sta() {
        let (_, ch) = characterize(8, 64);
        for op in AluOp::ALL {
            for e in 0..8 {
                if let Some(max) = ch.cdf(op, e).max_delay_ps() {
                    assert!(max <= ch.sta_endpoint_delay_ps(e) + 1e-9);
                }
            }
        }
        assert!(ch.sta_limit_mhz() > 0.0);
    }

    #[test]
    fn narrow_operands_have_more_slack() {
        let alu = AluDatapath::build(16);
        let full = characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 64,
                ..Default::default()
            },
        );
        let narrow = characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 64,
                operands: OperandDistribution::UniformBits(8),
                ..Default::default()
            },
        );
        // With 8-bit operands the adder carry chain is exercised less deeply,
        // so the worst observed delay is smaller (Fig. 4: 16-bit vs 32-bit add).
        let full_worst = full.cdf(AluOp::Add, 15).max_delay_ps().unwrap();
        let narrow_worst = narrow.cdf(AluOp::Add, 15).max_delay_ps().unwrap();
        assert!(narrow_worst < full_worst);
    }

    #[test]
    fn from_parts_round_trips() {
        let (_, ch) = characterize(8, 16);
        let cdfs: Vec<Vec<ErrorCdf>> = AluOp::ALL
            .iter()
            .map(|&op| (0..8).map(|e| ch.cdf(op, e).clone()).collect())
            .collect();
        let delays: Vec<f64> = (0..8).map(|e| ch.sta_endpoint_delay_ps(e)).collect();
        let rebuilt =
            TimingCharacterization::from_parts(ch.vdd(), 8, ch.cycles_per_op(), cdfs, delays);
        for op in AluOp::ALL {
            for e in 0..8 {
                assert_eq!(rebuilt.cdf(op, e), ch.cdf(op, e));
            }
        }
        assert_eq!(rebuilt.sta_limit_mhz(), ch.sta_limit_mhz());
        assert_eq!(rebuilt.cycles_per_op(), ch.cycles_per_op());
    }

    #[test]
    #[should_panic(expected = "one CDF row per ALU instruction")]
    fn from_parts_rejects_wrong_shape() {
        TimingCharacterization::from_parts(0.7, 8, 16, vec![Vec::new(); 3], vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_cycles_panics() {
        let alu = AluDatapath::build(8);
        characterize_alu(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 0,
                ..Default::default()
            },
        );
    }
}
