//! Dynamic timing analysis (DTA): value-dependent arrival times.
//!
//! In contrast to [`crate::sta`], the dynamic analysis propagates both logic
//! values and arrival times through the netlist.  When a *controlling* value
//! (a 0 at an AND/NAND input, a 1 at an OR/NOR input) arrives early, the
//! gate output settles early regardless of its other, possibly much slower
//! input — the mechanism behind the "dynamic timing slack" exploited by the
//! paper (and by its ref. 14).  This makes arrival times depend on the
//! executed instruction and on the operand data, which is exactly the
//! statistical structure model C captures.

use sfi_netlist::gate::GateKind;
use sfi_netlist::{DelayModel, Netlist, VoltageScaling};

/// Result of analysing one input vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DtaResult {
    /// Logic value of every registered output.
    pub output_values: Vec<bool>,
    /// Register-to-register delay of every registered output in picoseconds
    /// (sensitised arrival time plus sequential overhead).
    pub output_delays_ps: Vec<f64>,
}

impl DtaResult {
    /// The worst (largest) endpoint delay of this vector, in picoseconds.
    pub fn worst_delay_ps(&self) -> f64 {
        self.output_delays_ps.iter().copied().fold(0.0, f64::max)
    }
}

/// A reusable dynamic-timing-analysis engine for one netlist at one
/// operating point.
///
/// The engine keeps its own copy of the netlist and pre-computes per-gate
/// delays at construction, so analysing a vector is a single linear pass —
/// the characterization kernel evaluates hundreds of thousands of vectors.
///
/// # Example
///
/// ```
/// use sfi_netlist::alu::{AluDatapath, AluOp};
/// use sfi_netlist::{DelayModel, VoltageScaling};
/// use sfi_timing::DynamicTimingAnalysis;
///
/// let alu = AluDatapath::build(8);
/// let dta = DynamicTimingAnalysis::new(
///     alu.netlist(),
///     &DelayModel::default_28nm(),
///     &VoltageScaling::default_28nm(),
///     0.7,
/// );
/// // A multiplication by zero is resolved much earlier than a "hard" one.
/// let easy = dta.analyze(&alu.encode_inputs(AluOp::Mul, 0xFF, 0x00));
/// let hard = dta.analyze(&alu.encode_inputs(AluOp::Mul, 0xFF, 0xFF));
/// assert!(easy.worst_delay_ps() < hard.worst_delay_ps());
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTimingAnalysis {
    netlist: Netlist,
    gate_delays_ps: Vec<f64>,
    sequential_overhead_ps: f64,
    value_aware: bool,
}

impl DynamicTimingAnalysis {
    /// Creates the engine for `netlist` with the given delay model at supply
    /// voltage `vdd`.  The netlist is copied into the engine.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not above the threshold voltage of `scaling`.
    pub fn new(netlist: &Netlist, delays: &DelayModel, scaling: &VoltageScaling, vdd: f64) -> Self {
        Self::new_with_multipliers(netlist, delays, scaling, vdd, None)
    }

    /// Creates the engine with an optional per-gate delay multiplier (one
    /// entry per netlist node), as produced by the synthesis-like timing
    /// budgeting pass in [`crate::budget`].
    ///
    /// # Panics
    ///
    /// Panics if a multiplier slice is provided whose length differs from
    /// the netlist size, or if `vdd` is not above the threshold voltage.
    pub fn new_with_multipliers(
        netlist: &Netlist,
        delays: &DelayModel,
        scaling: &VoltageScaling,
        vdd: f64,
        node_multipliers: Option<&[f64]>,
    ) -> Self {
        if let Some(m) = node_multipliers {
            assert_eq!(
                m.len(),
                netlist.len(),
                "need one delay multiplier per netlist node"
            );
        }
        let factor = scaling.delay_factor(vdd);
        let gate_delays_ps = (0..netlist.len())
            .map(|i| {
                let m = node_multipliers.map_or(1.0, |m| m[i]);
                delays.gate_delay(netlist, netlist.node(i)) * factor * m
            })
            .collect();
        DynamicTimingAnalysis {
            netlist: netlist.clone(),
            gate_delays_ps,
            sequential_overhead_ps: delays.sequential_overhead() * factor,
            value_aware: true,
        }
    }

    /// Disables value-dependent (controlling-value) early termination,
    /// degenerating the analysis to a per-vector topological worst case.
    ///
    /// This exists for the ablation study in the benchmark harness: with
    /// value awareness disabled, model C collapses towards model B.
    pub fn with_value_awareness(mut self, value_aware: bool) -> Self {
        self.value_aware = value_aware;
        self
    }

    /// Whether controlling-value early termination is enabled.
    pub fn is_value_aware(&self) -> bool {
        self.value_aware
    }

    /// Sequential overhead included in reported delays, in picoseconds.
    pub fn sequential_overhead_ps(&self) -> f64 {
        self.sequential_overhead_ps
    }

    /// The netlist this engine analyses.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Analyses one primary-input vector and returns per-output values and
    /// sensitised register-to-register delays.
    ///
    /// # Panics
    ///
    /// Panics if the input vector length does not match the netlist.
    pub fn analyze(&self, inputs: &[bool]) -> DtaResult {
        let netlist = &self.netlist;
        assert_eq!(
            inputs.len(),
            netlist.input_count(),
            "expected {} input values, got {}",
            netlist.input_count(),
            inputs.len()
        );

        let mut values = vec![false; netlist.len()];
        let mut arrivals = vec![0.0f64; netlist.len()];
        let mut next_input = 0usize;

        for (i, gate) in netlist.gates().iter().enumerate() {
            match gate.kind {
                GateKind::Input => {
                    values[i] = inputs[next_input];
                    next_input += 1;
                    arrivals[i] = 0.0;
                }
                GateKind::Const(v) => {
                    values[i] = v;
                    arrivals[i] = 0.0;
                }
                kind => {
                    let d = self.gate_delays_ps[i];
                    let a = gate.a as usize;
                    let va = values[a];
                    let ta = arrivals[a];
                    if kind.fanin_count() == 1 {
                        values[i] = kind.eval(va, false);
                        arrivals[i] = ta + d;
                    } else {
                        let b = gate.b as usize;
                        let vb = values[b];
                        let tb = arrivals[b];
                        values[i] = kind.eval(va, vb);
                        arrivals[i] = if self.value_aware {
                            match kind.controlling_value() {
                                Some(c) => match (va == c, vb == c) {
                                    (true, true) => ta.min(tb) + d,
                                    (true, false) => ta + d,
                                    (false, true) => tb + d,
                                    (false, false) => ta.max(tb) + d,
                                },
                                None => ta.max(tb) + d,
                            }
                        } else {
                            ta.max(tb) + d
                        };
                    }
                }
            }
        }

        let output_values = netlist
            .outputs()
            .iter()
            .map(|o| values[o.node.index()])
            .collect();
        let output_delays_ps = netlist
            .outputs()
            .iter()
            .map(|o| arrivals[o.node.index()] + self.sequential_overhead_ps)
            .collect();
        DtaResult {
            output_values,
            output_delays_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_netlist::alu::{AluDatapath, AluOp};

    fn engine(width: usize) -> (AluDatapath, DynamicTimingAnalysis) {
        let alu = AluDatapath::build(width);
        let dta = DynamicTimingAnalysis::new(
            alu.netlist(),
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.7,
        );
        (alu, dta)
    }

    #[test]
    fn values_match_functional_evaluation() {
        let (alu, dta) = engine(8);
        for op in AluOp::ALL {
            for (a, b) in [(0u64, 0u64), (255, 255), (170, 85), (41, 200)] {
                let inputs = alu.encode_inputs(op, a, b);
                let res = dta.analyze(&inputs);
                assert_eq!(res.output_values, alu.netlist().evaluate(&inputs), "{op}");
            }
        }
    }

    #[test]
    fn dta_never_exceeds_sta() {
        use crate::sta::StaticTimingAnalysis;
        let (alu, dta) = engine(8);
        let sta = StaticTimingAnalysis::run(
            alu.netlist(),
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.7,
        );
        for op in AluOp::ALL {
            for (a, b) in [(0u64, 0u64), (255, 255), (170, 85), (41, 200), (13, 13)] {
                let inputs = alu.encode_inputs(op, a, b);
                let res = dta.analyze(&inputs);
                for (e, d) in res.output_delays_ps.iter().enumerate() {
                    assert!(
                        *d <= sta.endpoint_delay(e) + 1e-9,
                        "{op} endpoint {e}: dynamic {d} > static {}",
                        sta.endpoint_delay(e)
                    );
                }
            }
        }
    }

    #[test]
    fn data_dependence_of_multiplication() {
        let (alu, dta) = engine(8);
        let easy = dta.analyze(&alu.encode_inputs(AluOp::Mul, 0xFF, 0x00));
        let hard = dta.analyze(&alu.encode_inputs(AluOp::Mul, 0xFF, 0xFF));
        assert!(easy.worst_delay_ps() < hard.worst_delay_ps());
    }

    #[test]
    fn instruction_dependence_add_vs_mul() {
        // At the case-study width of 32 bits the multiplier path is longer
        // than the adder path for the same operands.
        let (alu, dta) = engine(32);
        let add = dta.analyze(&alu.encode_inputs(AluOp::Add, 0xABCD_1234, 0xCD12_99AB));
        let mul = dta.analyze(&alu.encode_inputs(AluOp::Mul, 0xABCD_1234, 0xCD12_99AB));
        assert!(mul.worst_delay_ps() > add.worst_delay_ps());
    }

    #[test]
    fn value_awareness_ablation_is_more_pessimistic() {
        let (alu, aware) = engine(8);
        let blind = aware.clone().with_value_awareness(false);
        assert!(aware.is_value_aware());
        assert!(!blind.is_value_aware());
        let inputs = alu.encode_inputs(AluOp::Add, 1, 1);
        let a = aware.analyze(&inputs);
        let b = blind.analyze(&inputs);
        assert!(b.worst_delay_ps() >= a.worst_delay_ps());
        // Values are unaffected by the timing mode.
        assert_eq!(a.output_values, b.output_values);
    }

    #[test]
    fn higher_voltage_shortens_delays() {
        let alu = AluDatapath::build(8);
        let slow = DynamicTimingAnalysis::new(
            alu.netlist(),
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.7,
        );
        let fast = DynamicTimingAnalysis::new(
            alu.netlist(),
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.8,
        );
        let inputs = alu.encode_inputs(AluOp::Mul, 0x7F, 0x3B);
        assert!(fast.analyze(&inputs).worst_delay_ps() < slow.analyze(&inputs).worst_delay_ps());
    }

    #[test]
    fn netlist_accessor_matches() {
        let (alu, dta) = engine(8);
        assert_eq!(dta.netlist().len(), alu.netlist().len());
        assert!(dta.sequential_overhead_ps() > 0.0);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_input_length_panics() {
        let (_alu, dta) = engine(8);
        dta.analyze(&[true, false]);
    }
}
