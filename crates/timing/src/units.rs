//! Frequency/period conversion helpers.
//!
//! The whole workspace expresses clock frequencies in megahertz and gate or
//! path delays in picoseconds; these two helpers are the single place where
//! the conversion factor lives.

/// Converts a clock frequency in MHz to the clock period in picoseconds.
///
/// # Panics
///
/// Panics if `freq_mhz` is not strictly positive.
///
/// # Example
///
/// ```
/// use sfi_timing::freq_mhz_to_period_ps;
/// assert!((freq_mhz_to_period_ps(1000.0) - 1000.0).abs() < 1e-9);
/// assert!((freq_mhz_to_period_ps(707.0) - 1414.4271).abs() < 1e-3);
/// ```
pub fn freq_mhz_to_period_ps(freq_mhz: f64) -> f64 {
    assert!(
        freq_mhz > 0.0,
        "frequency must be positive, got {freq_mhz} MHz"
    );
    1.0e6 / freq_mhz
}

/// Converts a clock period in picoseconds to the frequency in MHz.
///
/// # Panics
///
/// Panics if `period_ps` is not strictly positive.
///
/// # Example
///
/// ```
/// use sfi_timing::period_ps_to_freq_mhz;
/// assert!((period_ps_to_freq_mhz(1000.0) - 1000.0).abs() < 1e-9);
/// ```
pub fn period_ps_to_freq_mhz(period_ps: f64) -> f64 {
    assert!(
        period_ps > 0.0,
        "period must be positive, got {period_ps} ps"
    );
    1.0e6 / period_ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for f in [1.0, 100.0, 707.0, 1150.0, 2000.0] {
            let p = freq_mhz_to_period_ps(f);
            assert!((period_ps_to_freq_mhz(p) - f).abs() < 1e-9);
        }
    }

    #[test]
    fn known_values() {
        assert!((freq_mhz_to_period_ps(500.0) - 2000.0).abs() < 1e-9);
        assert!((period_ps_to_freq_mhz(2000.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_panics() {
        freq_mhz_to_period_ps(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_period_panics() {
        period_ps_to_freq_mhz(-1.0);
    }
}
