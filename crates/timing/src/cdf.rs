//! Timing-error cumulative distribution functions.
//!
//! For one endpoint and one instruction, dynamic timing analysis produces a
//! population of register-to-register path delays (one per characterization
//! cycle).  The paper turns these into the probability
//! `P_{E,V,I}(f) = v_f / n_I` that the endpoint is violated at clock
//! frequency `f`; sweeping `f` yields a CDF.  [`ErrorCdf`] stores the sorted
//! delay samples and answers that query by binary search.

use crate::units::freq_mhz_to_period_ps;

/// Empirical timing-error CDF of a single (endpoint, instruction) pair.
///
/// # Example
///
/// ```
/// use sfi_timing::ErrorCdf;
///
/// let cdf = ErrorCdf::from_samples(vec![900.0, 1000.0, 1100.0, 1200.0]);
/// // A clock period of 1050 ps is violated by the two slowest samples.
/// assert!((cdf.error_probability(1050.0) - 0.5).abs() < 1e-12);
/// assert_eq!(cdf.error_probability(2000.0), 0.0);
/// assert_eq!(cdf.error_probability(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorCdf {
    sorted_delays_ps: Vec<f64>,
}

impl ErrorCdf {
    /// Builds a CDF from raw delay samples (picoseconds, any order).
    ///
    /// Non-finite samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not a finite number.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|d| d.is_finite()),
            "delay samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        ErrorCdf {
            sorted_delays_ps: samples,
        }
    }

    /// Number of samples backing the CDF.
    pub fn sample_count(&self) -> usize {
        self.sorted_delays_ps.len()
    }

    /// Whether the CDF holds no samples (probability is then always zero).
    pub fn is_empty(&self) -> bool {
        self.sorted_delays_ps.is_empty()
    }

    /// The smallest observed delay, if any samples exist.
    pub fn min_delay_ps(&self) -> Option<f64> {
        self.sorted_delays_ps.first().copied()
    }

    /// The largest observed delay, if any samples exist.
    pub fn max_delay_ps(&self) -> Option<f64> {
        self.sorted_delays_ps.last().copied()
    }

    /// The `q`-quantile (0.0 ..= 1.0) of the delay population, if any
    /// samples exist, linearly interpolated between order statistics
    /// (type-7 estimator, the R/NumPy default).
    ///
    /// Nearest-rank indexing ([`ErrorCdf::quantile_nearest`]) biases even
    /// sample counts towards the larger neighbour — q = 0.5 of two samples
    /// returned the larger one — which overstated every median-delay
    /// report; interpolation is exact in the two-sample case and unbiased
    /// in general.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.sorted_delays_ps.is_empty() {
            return None;
        }
        let position = (self.sorted_delays_ps.len() - 1) as f64 * q;
        let lo = position.floor() as usize;
        let hi = position.ceil() as usize;
        let lower = self.sorted_delays_ps[lo];
        let upper = self.sorted_delays_ps[hi];
        Some(lower + (upper - lower) * (position - lo as f64))
    }

    /// The `q`-quantile by nearest-rank indexing: always an observed
    /// sample, at the cost of the rounding bias [`ErrorCdf::quantile`]
    /// interpolates away.  Kept for reports that must quote a physical
    /// delay sample rather than a synthetic value.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_nearest(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.sorted_delays_ps.is_empty() {
            return None;
        }
        let idx = ((self.sorted_delays_ps.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted_delays_ps[idx])
    }

    /// Probability that the endpoint is violated when the available clock
    /// period is `period_ps` picoseconds: the fraction of samples whose
    /// delay strictly exceeds the period.
    pub fn error_probability(&self, period_ps: f64) -> f64 {
        if self.sorted_delays_ps.is_empty() {
            return 0.0;
        }
        // Index of the first sample strictly greater than the period.
        let idx = self.sorted_delays_ps.partition_point(|&d| d <= period_ps);
        (self.sorted_delays_ps.len() - idx) as f64 / self.sorted_delays_ps.len() as f64
    }

    /// Probability of violation at clock frequency `freq_mhz`, optionally
    /// with a delay scaling factor (> 1.0 means slower gates, e.g. due to a
    /// supply-voltage droop).
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` or `delay_factor` is not strictly positive.
    pub fn error_probability_at(&self, freq_mhz: f64, delay_factor: f64) -> f64 {
        assert!(
            delay_factor > 0.0,
            "delay factor must be positive, got {delay_factor}"
        );
        let period = freq_mhz_to_period_ps(freq_mhz);
        // delay * factor > period  <=>  delay > period / factor
        self.error_probability(period / delay_factor)
    }

    /// The sorted delay samples (ascending), mainly for reporting.
    pub fn samples(&self) -> &[f64] {
        &self.sorted_delays_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> ErrorCdf {
        ErrorCdf::from_samples(vec![1200.0, 900.0, 1100.0, 1000.0])
    }

    #[test]
    fn sorted_and_counted() {
        let c = cdf();
        assert_eq!(c.sample_count(), 4);
        assert_eq!(c.samples(), &[900.0, 1000.0, 1100.0, 1200.0]);
        assert_eq!(c.min_delay_ps(), Some(900.0));
        assert_eq!(c.max_delay_ps(), Some(1200.0));
        assert!(!c.is_empty());
    }

    #[test]
    fn probability_monotonic_in_period() {
        let c = cdf();
        let mut prev = 1.0;
        for period in [800.0, 950.0, 1050.0, 1150.0, 1300.0] {
            let p = c.error_probability(period);
            assert!(
                p <= prev,
                "error probability must not increase with a longer period"
            );
            prev = p;
        }
    }

    #[test]
    fn probability_boundaries() {
        let c = cdf();
        // Samples equal to the period do not violate (strictly greater only).
        assert!((c.error_probability(900.0) - 0.75).abs() < 1e-12);
        assert!((c.error_probability(899.9) - 1.0).abs() < 1e-12);
        assert_eq!(c.error_probability(1200.0), 0.0);
    }

    #[test]
    fn frequency_query_with_scaling() {
        let c = cdf();
        // 1 GHz -> 1000 ps period.
        let base = c.error_probability_at(1000.0, 1.0);
        assert!((base - 0.5).abs() < 1e-12);
        // A 10 % slow-down makes more samples violate.
        assert!(c.error_probability_at(1000.0, 1.1) >= base);
        // A 10 % speed-up makes fewer samples violate.
        assert!(c.error_probability_at(1000.0, 0.9) <= base);
    }

    #[test]
    fn quantiles() {
        let c = cdf();
        assert_eq!(c.quantile(0.0), Some(900.0));
        assert_eq!(c.quantile(1.0), Some(1200.0));
        // Even sample count: the median interpolates between the two
        // central order statistics instead of rounding up to 1100.
        assert_eq!(c.quantile(0.5), Some(1050.0));
        assert_eq!(c.quantile_nearest(0.5), Some(1100.0));
    }

    #[test]
    fn interpolated_quantiles_are_unbiased_on_two_samples() {
        // The regression the nearest-rank indexing had: q = 0.5 of
        // {100, 200} returned 200 (rounding 0.5 up), biasing every
        // even-count median upward.
        let c = ErrorCdf::from_samples(vec![100.0, 200.0]);
        assert_eq!(c.quantile(0.5), Some(150.0));
        assert_eq!(c.quantile_nearest(0.5), Some(200.0));
        assert_eq!(c.quantile(0.25), Some(125.0));
        assert_eq!(c.quantile(0.0), Some(100.0));
        assert_eq!(c.quantile(1.0), Some(200.0));
    }

    #[test]
    fn quantile_variants_agree_on_exact_ranks() {
        // On odd counts at grid-aligned q both estimators hit the same
        // observed sample.
        let c = ErrorCdf::from_samples(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        for (q, expected) in [(0.0, 10.0), (0.25, 20.0), (0.5, 30.0), (1.0, 50.0)] {
            assert_eq!(c.quantile(q), Some(expected), "q = {q}");
            assert_eq!(c.quantile_nearest(q), Some(expected), "q = {q}");
        }
        // Off-grid q interpolates; nearest-rank snaps to a sample.
        assert_eq!(c.quantile(0.1), Some(14.0));
        assert_eq!(c.quantile_nearest(0.1), Some(10.0));
        // Single sample: every quantile is that sample for both.
        let single = ErrorCdf::from_samples(vec![7.5]);
        assert_eq!(single.quantile(0.3), Some(7.5));
        assert_eq!(single.quantile_nearest(0.3), Some(7.5));
    }

    #[test]
    fn empty_cdf_is_never_violated() {
        let c = ErrorCdf::default();
        assert!(c.is_empty());
        assert_eq!(c.error_probability(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.quantile_nearest(0.5), None);
        assert_eq!(c.min_delay_ps(), None);
        assert_eq!(c.max_delay_ps(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_panics() {
        ErrorCdf::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        cdf().quantile(1.5);
    }
}
