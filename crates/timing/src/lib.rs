//! Static and dynamic timing analysis, timing-error statistics, and supply
//! voltage models.
//!
//! This crate implements the characterization half of the DAC 2016 paper
//! *"Statistical Fault Injection for Impact-Evaluation of Timing Errors on
//! Application Performance"*:
//!
//! * [`sta::StaticTimingAnalysis`] computes worst-case (topological) path
//!   delays to every endpoint of a gate-level netlist — the data used by the
//!   pessimistic fault-injection **model B**.
//! * [`dta::DynamicTimingAnalysis`] computes *value-dependent* (sensitised)
//!   arrival times for concrete input vectors, the "dynamic timing slack"
//!   of the paper.
//! * [`characterize::characterize_alu`] runs the DTA over a randomized
//!   characterization kernel, independently for every ALU instruction, and
//!   condenses the per-endpoint arrival-time samples into timing-error
//!   **CDFs** ([`cdf::ErrorCdf`] inside a
//!   [`characterize::TimingCharacterization`]) — the data that drives the
//!   statistical fault-injection **model C**.
//! * [`vdd::VddDelayCurve`] is the fitted delay-vs-supply-voltage curve used
//!   to translate (noisy) supply voltages into delay scaling factors, and
//!   [`noise::VoltageNoise`] is the clipped Gaussian supply-noise model.
//! * [`calibrate::calibrate_delay_model`] rescales the synthetic delay model
//!   so the ALU's static timing limit matches a target frequency (707 MHz at
//!   0.7 V in the paper's case study).
//!
//! # Example
//!
//! ```
//! use sfi_netlist::alu::{AluDatapath, AluOp};
//! use sfi_netlist::{DelayModel, VoltageScaling};
//! use sfi_timing::characterize::{characterize_alu, CharacterizationConfig};
//!
//! let alu = AluDatapath::build(8);
//! let config = CharacterizationConfig {
//!     cycles_per_op: 64,
//!     ..CharacterizationConfig::default()
//! };
//! let ch = characterize_alu(&alu, &DelayModel::default_28nm(), &VoltageScaling::default_28nm(), &config);
//!
//! // At a very long clock period nothing fails ...
//! assert_eq!(ch.error_probability(AluOp::Mul, 7, 1e6, 1.0), 0.0);
//! // ... at a very short one every multiplication-carrying cycle fails.
//! assert!(ch.error_probability(AluOp::Mul, 7, 1.0, 1.0) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod calibrate;
pub mod cdf;
pub mod characterize;
pub mod dta;
pub mod noise;
pub mod sta;
pub mod units;
pub mod vdd;

pub use budget::{synthesis_node_multipliers, UnitBudgets};
pub use calibrate::{calibrate_delay_model, calibrate_delay_model_with_multipliers};
pub use cdf::ErrorCdf;
pub use characterize::{
    characterize_alu, characterize_alu_with_multipliers, CharacterizationConfig,
    OperandDistribution, TimingCharacterization,
};
pub use dta::DynamicTimingAnalysis;
pub use noise::VoltageNoise;
pub use sta::StaticTimingAnalysis;
pub use units::{freq_mhz_to_period_ps, period_ps_to_freq_mhz};
pub use vdd::VddDelayCurve;
