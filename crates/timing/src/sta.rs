//! Static timing analysis (STA): topological worst-case arrival times.
//!
//! STA ignores logic values entirely — every path is assumed sensitisable —
//! which is exactly the pessimism the paper's fault-injection **model B**
//! inherits and that motivates the dynamic analysis of model C.

use crate::units::period_ps_to_freq_mhz;
use sfi_netlist::{DelayModel, Netlist, VoltageScaling};

/// Result of a static timing analysis over a [`Netlist`].
///
/// All delays are in picoseconds and include the sequential overhead
/// (launch-register clock-to-q plus capture-register setup time), i.e. they
/// are directly comparable to a clock period.
///
/// # Example
///
/// ```
/// use sfi_netlist::alu::AluDatapath;
/// use sfi_netlist::{DelayModel, VoltageScaling};
/// use sfi_timing::StaticTimingAnalysis;
///
/// let alu = AluDatapath::build(8);
/// let sta = StaticTimingAnalysis::run(
///     alu.netlist(),
///     &DelayModel::default_28nm(),
///     &VoltageScaling::default_28nm(),
///     0.7,
/// );
/// // The most significant result bit is on a longer path than bit 0.
/// assert!(sta.endpoint_delay(7) >= sta.endpoint_delay(0));
/// assert!(sta.max_frequency_mhz() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StaticTimingAnalysis {
    endpoint_delays_ps: Vec<f64>,
    node_arrivals_ps: Vec<f64>,
    sequential_overhead_ps: f64,
    vdd: f64,
}

impl StaticTimingAnalysis {
    /// Runs STA over `netlist` with the given delay model at supply voltage
    /// `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not above the threshold voltage of `scaling`.
    pub fn run(netlist: &Netlist, delays: &DelayModel, scaling: &VoltageScaling, vdd: f64) -> Self {
        Self::run_with_multipliers(netlist, delays, scaling, vdd, None)
    }

    /// Runs STA with an optional per-gate delay multiplier (one entry per
    /// netlist node).  This is how the synthesis-like timing-budgeting pass
    /// (see [`crate::budget`]) injects per-unit sizing into the analysis.
    ///
    /// # Panics
    ///
    /// Panics if a multiplier slice is provided whose length differs from
    /// the netlist size, or if `vdd` is not above the threshold voltage.
    pub fn run_with_multipliers(
        netlist: &Netlist,
        delays: &DelayModel,
        scaling: &VoltageScaling,
        vdd: f64,
        node_multipliers: Option<&[f64]>,
    ) -> Self {
        if let Some(m) = node_multipliers {
            assert_eq!(
                m.len(),
                netlist.len(),
                "need one delay multiplier per netlist node"
            );
        }
        let factor = scaling.delay_factor(vdd);
        let mut arrivals = vec![0.0f64; netlist.len()];
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_source() {
                continue;
            }
            let m = node_multipliers.map_or(1.0, |m| m[i]);
            let d = delays.gate_delay(netlist, netlist.node(i)) * factor * m;
            let ta = arrivals[gate.a as usize];
            let tb = if gate.kind.fanin_count() == 2 {
                arrivals[gate.b as usize]
            } else {
                0.0
            };
            arrivals[i] = ta.max(tb) + d;
        }
        let overhead = delays.sequential_overhead() * factor;
        let endpoint_delays_ps = netlist
            .outputs()
            .iter()
            .map(|o| arrivals[o.node.index()] + overhead)
            .collect();
        StaticTimingAnalysis {
            endpoint_delays_ps,
            node_arrivals_ps: arrivals,
            sequential_overhead_ps: overhead,
            vdd,
        }
    }

    /// Supply voltage the analysis was performed at.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Sequential overhead (clock-to-q + setup) included in the endpoint
    /// delays, in picoseconds.
    pub fn sequential_overhead_ps(&self) -> f64 {
        self.sequential_overhead_ps
    }

    /// Worst-case register-to-register delay of endpoint `endpoint`
    /// (output index), in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` is out of range.
    pub fn endpoint_delay(&self, endpoint: usize) -> f64 {
        self.endpoint_delays_ps[endpoint]
    }

    /// Worst-case delays of all endpoints, in output order.
    pub fn endpoint_delays(&self) -> &[f64] {
        &self.endpoint_delays_ps
    }

    /// The critical-path delay (worst endpoint delay) in picoseconds.
    pub fn critical_path_ps(&self) -> f64 {
        self.endpoint_delays_ps.iter().copied().fold(0.0, f64::max)
    }

    /// The static timing limit: the maximum clock frequency (MHz) at which
    /// no endpoint violates its worst-case delay.
    pub fn max_frequency_mhz(&self) -> f64 {
        period_ps_to_freq_mhz(self.critical_path_ps())
    }

    /// Whether endpoint `endpoint` violates timing at the given clock period.
    pub fn violates(&self, endpoint: usize, period_ps: f64) -> bool {
        self.endpoint_delays_ps[endpoint] > period_ps
    }

    /// Internal node arrival times (without sequential overhead), mainly for
    /// inspection and tests.
    pub fn node_arrivals(&self) -> &[f64] {
        &self.node_arrivals_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_netlist::alu::AluDatapath;

    fn sta_for(width: usize, vdd: f64) -> StaticTimingAnalysis {
        let alu = AluDatapath::build(width);
        StaticTimingAnalysis::run(
            alu.netlist(),
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            vdd,
        )
    }

    #[test]
    fn critical_path_positive_and_msb_slower() {
        let sta = sta_for(16, 0.7);
        assert!(sta.critical_path_ps() > 0.0);
        assert!(sta.endpoint_delay(15) > sta.endpoint_delay(0));
        assert_eq!(sta.endpoint_delays().len(), 16);
    }

    #[test]
    fn higher_voltage_is_faster() {
        let slow = sta_for(8, 0.7);
        let fast = sta_for(8, 0.9);
        assert!(fast.critical_path_ps() < slow.critical_path_ps());
        assert!(fast.max_frequency_mhz() > slow.max_frequency_mhz());
    }

    #[test]
    fn violation_threshold() {
        let sta = sta_for(8, 0.7);
        let cp = sta.critical_path_ps();
        let worst = sta
            .endpoint_delays()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(sta.violates(worst, cp * 0.99));
        assert!(!sta.violates(worst, cp * 1.01));
    }

    #[test]
    fn overhead_included() {
        let sta = sta_for(8, 0.7);
        assert!(sta.sequential_overhead_ps() > 0.0);
        for &d in sta.endpoint_delays() {
            assert!(d >= sta.sequential_overhead_ps());
        }
        assert_eq!(sta.vdd(), 0.7);
    }
}
