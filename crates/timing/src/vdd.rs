//! Fitted delay-vs-supply-voltage curve.
//!
//! The paper extracts the relation between small supply-voltage changes and
//! path delay from the worst-case path delay characterized at five supply
//! voltages (0.6 V to 1.0 V in 100 mV steps) and interpolates between them.
//! [`VddDelayCurve`] reproduces exactly that construction: five (or more)
//! sample points, piecewise-linear interpolation, and a scaling factor
//! helper used every simulated cycle to translate the instantaneous (noisy)
//! supply voltage into a delay modulation.

use sfi_netlist::VoltageScaling;

/// Piecewise-linear delay-factor-vs-Vdd curve.
///
/// Factors are relative to the curve's nominal voltage (factor 1.0).
///
/// # Example
///
/// ```
/// use sfi_netlist::VoltageScaling;
/// use sfi_timing::VddDelayCurve;
///
/// let curve = VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5);
/// // A droop below nominal slows the circuit down.
/// assert!(curve.delay_factor(0.68) > curve.delay_factor(0.7));
/// // The per-cycle noise scaling factor is 1.0 with no noise.
/// assert!((curve.noise_scaling_factor(0.7, 0.0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VddDelayCurve {
    voltages: Vec<f64>,
    factors: Vec<f64>,
}

impl VddDelayCurve {
    /// Builds the curve by sampling `scaling` at `points` equally spaced
    /// voltages in `[v_min, v_max]` (the paper uses 0.6 V to 1.0 V with 5
    /// points).
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`, if `v_min >= v_max`, or if `v_min` is not
    /// above the threshold voltage of `scaling`.
    pub fn from_scaling(scaling: &VoltageScaling, v_min: f64, v_max: f64, points: usize) -> Self {
        assert!(
            points >= 2,
            "at least two sample points are required, got {points}"
        );
        assert!(
            v_min < v_max,
            "v_min ({v_min}) must be below v_max ({v_max})"
        );
        let step = (v_max - v_min) / (points - 1) as f64;
        let voltages: Vec<f64> = (0..points).map(|i| v_min + step * i as f64).collect();
        let factors: Vec<f64> = voltages.iter().map(|&v| scaling.delay_factor(v)).collect();
        VddDelayCurve { voltages, factors }
    }

    /// Builds a curve from explicit `(voltage, delay_factor)` samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given or the voltages are not
    /// strictly increasing.
    pub fn from_samples(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "at least two samples are required");
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "sample voltages must be strictly increasing"
        );
        VddDelayCurve {
            voltages: samples.iter().map(|s| s.0).collect(),
            factors: samples.iter().map(|s| s.1).collect(),
        }
    }

    /// The sampled voltages.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The delay factors at the sampled voltages.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Interpolated delay factor at supply voltage `vdd`.
    ///
    /// Voltages outside the sampled range are clamped to the first/last
    /// segment (linear extrapolation is avoided deliberately: a clipped
    /// noise model never needs to stray far outside the fitted range).
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        let v = &self.voltages;
        let f = &self.factors;
        if vdd <= v[0] {
            return f[0];
        }
        if vdd >= v[v.len() - 1] {
            return f[f.len() - 1];
        }
        let hi = v.partition_point(|&x| x < vdd);
        let lo = hi - 1;
        let t = (vdd - v[lo]) / (v[hi] - v[lo]);
        f[lo] + t * (f[hi] - f[lo])
    }

    /// Per-cycle delay scaling factor caused by a momentary noise excursion
    /// `noise_volts` around the nominal supply `vdd`.
    ///
    /// A value greater than 1.0 means the circuit is momentarily slower than
    /// at the nominal supply (voltage droop); the fault models multiply path
    /// delays — equivalently divide the available clock period — by it.
    pub fn noise_scaling_factor(&self, vdd: f64, noise_volts: f64) -> f64 {
        self.noise_scaling_factor_with_nominal(vdd, noise_volts, self.delay_factor(vdd))
    }

    /// Like [`VddDelayCurve::noise_scaling_factor`], but with the nominal
    /// delay factor `delay_factor(vdd)` precomputed by the caller.
    ///
    /// The nominal factor depends only on the operating point, not on the
    /// per-cycle noise sample, so per-cycle callers (the fault models'
    /// `inject` hot loops) hoist it out instead of re-interpolating the
    /// curve twice every simulated cycle.  With
    /// `nominal_factor == delay_factor(vdd)` the result is bit-identical
    /// to [`VddDelayCurve::noise_scaling_factor`].
    pub fn noise_scaling_factor_with_nominal(
        &self,
        vdd: f64,
        noise_volts: f64,
        nominal_factor: f64,
    ) -> f64 {
        self.delay_factor(vdd + noise_volts) / nominal_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VddDelayCurve {
        VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 5)
    }

    #[test]
    fn five_point_construction() {
        let c = curve();
        assert_eq!(c.voltages().len(), 5);
        assert_eq!(c.factors().len(), 5);
        assert!((c.voltages()[1] - 0.7).abs() < 1e-12);
        // Normalized to the scaling model's nominal 0.7 V.
        assert!((c.delay_factor(0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotonically_decreasing_with_voltage() {
        let c = curve();
        let mut prev = f64::INFINITY;
        for i in 0..=40 {
            let v = 0.6 + i as f64 * 0.01;
            let f = c.delay_factor(v);
            assert!(f <= prev + 1e-12, "delay factor must not increase with Vdd");
            prev = f;
        }
    }

    #[test]
    fn interpolation_matches_samples() {
        let c = curve();
        for (v, f) in c.voltages().iter().zip(c.factors()) {
            assert!((c.delay_factor(*v) - f).abs() < 1e-12);
        }
    }

    #[test]
    fn clamping_outside_range() {
        let c = curve();
        assert_eq!(c.delay_factor(0.5), c.factors()[0]);
        assert_eq!(c.delay_factor(1.2), *c.factors().last().unwrap());
    }

    #[test]
    fn noise_scaling_direction() {
        let c = curve();
        // Droop -> slower (factor > 1); overshoot -> faster (factor < 1).
        assert!(c.noise_scaling_factor(0.7, -0.020) > 1.0);
        assert!(c.noise_scaling_factor(0.7, 0.020) < 1.0);
        assert!((c.noise_scaling_factor(0.8, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hoisted_nominal_factor_is_bit_identical() {
        let c = curve();
        for vdd in [0.65, 0.7, 0.8] {
            let nominal = c.delay_factor(vdd);
            for noise in [-0.05, -0.01, 0.0, 0.013, 0.05] {
                assert_eq!(
                    c.noise_scaling_factor(vdd, noise),
                    c.noise_scaling_factor_with_nominal(vdd, noise, nominal),
                    "vdd {vdd} noise {noise}"
                );
            }
        }
    }

    #[test]
    fn explicit_samples() {
        let c = VddDelayCurve::from_samples(&[(0.6, 1.3), (0.7, 1.0), (0.8, 0.85)]);
        assert!((c.delay_factor(0.65) - 1.15).abs() < 1e-12);
        assert!((c.delay_factor(0.75) - 0.925).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_samples_panic() {
        VddDelayCurve::from_samples(&[(0.7, 1.0), (0.6, 1.3)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_points_panic() {
        VddDelayCurve::from_scaling(&VoltageScaling::default_28nm(), 0.6, 1.0, 1);
    }
}
