//! Supply-voltage noise model.
//!
//! The paper models high-frequency supply noise as a zero-mean normal
//! distribution with standard deviation `σ`, clipped at `±2σ` to avoid
//! physically unrealistic spikes from the tails.  A fresh independent sample
//! is drawn every simulated cycle.

use rand::Rng;

/// Zero-mean, clipped Gaussian supply-voltage noise.
///
/// # Example
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use sfi_timing::VoltageNoise;
///
/// let noise = VoltageNoise::with_sigma_mv(10.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let v = noise.sample_volts(&mut rng);
/// assert!(v.abs() <= 0.020 + 1e-12); // clipped at 2 sigma = 20 mV
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageNoise {
    sigma_volts: f64,
    clip_sigmas: f64,
}

impl VoltageNoise {
    /// Creates a noise source with standard deviation `sigma_volts` (in
    /// volts) and the paper's default clipping at two standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_volts` is negative.
    pub fn new(sigma_volts: f64) -> Self {
        assert!(
            sigma_volts >= 0.0,
            "noise sigma must be non-negative, got {sigma_volts}"
        );
        VoltageNoise {
            sigma_volts,
            clip_sigmas: 2.0,
        }
    }

    /// Convenience constructor taking the standard deviation in millivolts,
    /// the unit the paper quotes (σ = 0, 10, 25 mV).
    pub fn with_sigma_mv(sigma_mv: f64) -> Self {
        VoltageNoise::new(sigma_mv * 1e-3)
    }

    /// A noiseless source (σ = 0).
    pub fn none() -> Self {
        VoltageNoise::new(0.0)
    }

    /// Returns a copy with a different clipping point, expressed in standard
    /// deviations.  The paper uses 2σ.
    ///
    /// # Panics
    ///
    /// Panics if `clip_sigmas` is negative.
    pub fn with_clip_sigmas(mut self, clip_sigmas: f64) -> Self {
        assert!(
            clip_sigmas >= 0.0,
            "clip point must be non-negative, got {clip_sigmas}"
        );
        self.clip_sigmas = clip_sigmas;
        self
    }

    /// The standard deviation in volts.
    pub fn sigma_volts(&self) -> f64 {
        self.sigma_volts
    }

    /// The standard deviation in millivolts.
    pub fn sigma_mv(&self) -> f64 {
        self.sigma_volts * 1e3
    }

    /// The clipping point in standard deviations.
    pub fn clip_sigmas(&self) -> f64 {
        self.clip_sigmas
    }

    /// Maximum magnitude a sample can take, in volts.
    pub fn max_excursion_volts(&self) -> f64 {
        self.sigma_volts * self.clip_sigmas
    }

    /// Whether this source produces any noise at all.
    pub fn is_none(&self) -> bool {
        self.sigma_volts == 0.0
    }

    /// Draws one independent noise sample in volts.
    ///
    /// Uses the Box–Muller transform so only the `rand` core is required.
    pub fn sample_volts<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma_volts == 0.0 {
            return 0.0;
        }
        // Box-Muller: two uniforms -> one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let clipped = z.clamp(-self.clip_sigmas, self.clip_sigmas);
        clipped * self.sigma_volts
    }
}

impl Default for VoltageNoise {
    fn default() -> Self {
        VoltageNoise::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_silent() {
        let n = VoltageNoise::none();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(n.sample_volts(&mut rng), 0.0);
        }
        assert!(n.is_none());
        assert_eq!(n.max_excursion_volts(), 0.0);
    }

    #[test]
    fn samples_respect_clipping() {
        let n = VoltageNoise::with_sigma_mv(25.0);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = n.sample_volts(&mut rng);
            assert!(v.abs() <= n.max_excursion_volts() + 1e-15);
        }
    }

    #[test]
    fn sample_statistics_roughly_gaussian() {
        let n = VoltageNoise::with_sigma_mv(10.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let count = 50_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample_volts(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.5e-3, "mean {mean} should be close to zero");
        // Clipping at 2 sigma removes a bit of variance; expect ~0.95 sigma.
        let std = var.sqrt();
        assert!(
            (0.0085..=0.0105).contains(&std),
            "std {std} out of expected range"
        );
    }

    #[test]
    fn unit_conversions() {
        let n = VoltageNoise::with_sigma_mv(10.0);
        assert!((n.sigma_volts() - 0.010).abs() < 1e-12);
        assert!((n.sigma_mv() - 10.0).abs() < 1e-9);
        assert_eq!(n.clip_sigmas(), 2.0);
        let wide = n.with_clip_sigmas(3.0);
        assert_eq!(wide.clip_sigmas(), 3.0);
        assert!(wide.max_excursion_volts() > n.max_excursion_volts());
    }

    #[test]
    fn default_is_noiseless() {
        assert!(VoltageNoise::default().is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        VoltageNoise::new(-1.0);
    }
}
