//! Synthesis-like per-unit timing budgeting.
//!
//! The paper's case-study core is implemented with the constraint strategy
//! of its ref. 14: the execution-stage datapath is constrained so that
//! *only* the ALU endpoints limit the maximum clock frequency, every
//! functional unit just meets (a fraction of) the clock constraint, and the
//! path-delay distribution has no "timing wall" right at the limit.  A
//! synthesis tool achieves this by up-sizing cells on critical paths and
//! down-sizing (area recovery) cells with slack — which compresses the
//! worst-case delays of all datapath units towards the constraint.
//!
//! Our synthetic netlist is built from uniformly sized gates, so without a
//! corresponding pass the adder would either be far slower or far faster
//! than the multiplier, distorting the per-instruction failure ordering the
//! paper reports.  [`synthesis_node_multipliers`] emulates the sizing: it
//! computes one delay multiplier per gate such that the worst-case (STA)
//! path through each functional unit lands at a configurable fraction of
//! the multiplier's worst-case path.

use crate::sta::StaticTimingAnalysis;
use sfi_netlist::alu::{AluDatapath, AluUnit};
use sfi_netlist::{DelayModel, VoltageScaling};

/// Per-unit timing budgets, expressed as a fraction of the multiplier's
/// worst-case (STA) register-to-register path.
///
/// The multiplier always defines the static timing limit (budget 1.0); the
/// defaults place the remaining units where the paper's per-instruction
/// failure points suggest they sit on the silicon: the adder and comparator
/// close below the limit, shifter and logic with a comfortable margin (the
/// paper verifies non-ALU and simple operations stay safe up to a much
/// higher threshold frequency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitBudgets {
    /// Budget of the adder/subtractor (fraction of the multiplier path).
    pub add_sub: f64,
    /// Budget of the barrel shifters.
    pub shifter: f64,
    /// Budget of the bitwise logic unit.
    pub logic: f64,
    /// Budget of the set-flag comparator.
    pub comparator: f64,
}

impl UnitBudgets {
    /// Budgets tuned so that the per-instruction points of first failure
    /// reproduce the ordering and rough spacing of the paper's Fig. 4
    /// (multiplication fails first, 32-bit addition ~5–10 % later, narrow
    /// additions and flag comparisons later still, shifts and logic safe).
    pub fn paper_defaults() -> Self {
        UnitBudgets {
            add_sub: 0.97,
            shifter: 0.60,
            logic: 0.45,
            comparator: 0.92,
        }
    }

    /// Budget of a given unit; the multiplier is pinned to 1.0 and the
    /// operation decoder / result multiplexer are never rescaled.
    pub fn budget_of(&self, unit: AluUnit) -> Option<f64> {
        match unit {
            AluUnit::AddSub => Some(self.add_sub),
            AluUnit::Shifter => Some(self.shifter),
            AluUnit::Logic => Some(self.logic),
            AluUnit::Comparator => Some(self.comparator),
            AluUnit::Multiplier => Some(1.0),
            AluUnit::OpDecode | AluUnit::ResultMux => None,
        }
    }

    /// Validates that all budgets are positive and no larger than 1.0.
    ///
    /// # Panics
    ///
    /// Panics if any budget is outside `(0, 1]`.
    pub fn validate(&self) {
        for (name, b) in [
            ("add_sub", self.add_sub),
            ("shifter", self.shifter),
            ("logic", self.logic),
            ("comparator", self.comparator),
        ] {
            assert!(
                b > 0.0 && b <= 1.0,
                "unit budget {name} must be in (0, 1], got {b}"
            );
        }
    }
}

impl Default for UnitBudgets {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Computes one delay multiplier per netlist node such that the STA-worst
/// path through each functional unit of `alu` equals its budgeted fraction
/// of the multiplier unit's STA-worst path.
///
/// The multipliers are intended to be passed to
/// [`StaticTimingAnalysis::run_with_multipliers`],
/// [`crate::dta::DynamicTimingAnalysis::new_with_multipliers`] and
/// [`crate::characterize::characterize_alu_with_multipliers`].
///
/// # Panics
///
/// Panics if the budgets are invalid (see [`UnitBudgets::validate`]).
pub fn synthesis_node_multipliers(
    alu: &AluDatapath,
    delays: &DelayModel,
    scaling: &VoltageScaling,
    vdd: f64,
    budgets: &UnitBudgets,
) -> Vec<f64> {
    budgets.validate();
    let netlist = alu.netlist();
    let len = netlist.len();

    let run_with = |mults: &[f64]| {
        StaticTimingAnalysis::run_with_multipliers(netlist, delays, scaling, vdd, Some(mults))
            .critical_path_ps()
    };

    // Shared decode / result-mux logic is never rescaled.
    let mut only_shared = vec![0.0f64; len];
    for (unit, range) in alu.unit_ranges() {
        if matches!(unit, AluUnit::OpDecode | AluUnit::ResultMux) {
            for m in &mut only_shared[range.clone()] {
                *m = 1.0;
            }
        }
    }
    // With every functional unit at zero delay only the decode → result-mux
    // skeleton remains; no unit can be made faster than this floor.
    let floor_ps = run_with(&only_shared);

    // Isolated critical path of one unit at a given sizing factor.
    let isolated_cp = |range: &std::ops::Range<usize>, m: f64| {
        let mut mults = only_shared.clone();
        for slot in &mut mults[range.clone()] {
            *slot = m;
        }
        run_with(&mults)
    };

    // The multiplier's natural path defines the reference clock constraint.
    let mul_range = alu
        .unit_ranges()
        .iter()
        .find(|(u, _)| *u == AluUnit::Multiplier)
        .map(|(_, r)| r.clone())
        .expect("datapath has a multiplier unit");
    let reference_ps = isolated_cp(&mul_range, 1.0);

    let mut multipliers = vec![1.0f64; len];
    for (unit, range) in alu.unit_ranges() {
        if matches!(
            unit,
            AluUnit::OpDecode | AluUnit::ResultMux | AluUnit::Multiplier
        ) {
            continue;
        }
        let budget = budgets
            .budget_of(*unit)
            .expect("functional unit has a budget");
        let target_ps = budget * reference_ps;
        // The isolated critical path is monotone non-decreasing in the
        // sizing factor, so a simple bisection finds the factor that puts
        // the unit's worst path at its budget.  If the budget is below the
        // decode/mux floor the unit is simply left as fast as possible.
        let m = if target_ps <= floor_ps {
            MIN_SIZING
        } else {
            let mut lo = MIN_SIZING;
            let mut hi = MAX_SIZING;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if isolated_cp(range, mid) < target_ps {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        for slot in &mut multipliers[range.clone()] {
            *slot = m;
        }
    }
    multipliers
}

/// Smallest per-unit sizing factor the budgeting pass will apply.
const MIN_SIZING: f64 = 1.0e-3;
/// Largest per-unit sizing factor the budgeting pass will apply.
const MAX_SIZING: f64 = 1.0e3;

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_netlist::alu::AluOp;

    fn setup(width: usize) -> (AluDatapath, Vec<f64>) {
        let alu = AluDatapath::build(width);
        let mults = synthesis_node_multipliers(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.7,
            &UnitBudgets::paper_defaults(),
        );
        (alu, mults)
    }

    #[test]
    fn multiplier_unit_untouched_and_lengths_match() {
        let (alu, mults) = setup(8);
        assert_eq!(mults.len(), alu.netlist().len());
        for (unit, range) in alu.unit_ranges() {
            if *unit == AluUnit::Multiplier
                || *unit == AluUnit::OpDecode
                || *unit == AluUnit::ResultMux
            {
                for i in range.clone() {
                    assert_eq!(mults[i], 1.0, "unit {unit} must keep nominal delays");
                }
            }
        }
    }

    #[test]
    fn budgeted_sta_is_limited_by_the_multiplier() {
        let (alu, mults) = setup(8);
        let delays = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        let full = StaticTimingAnalysis::run_with_multipliers(
            alu.netlist(),
            &delays,
            &scaling,
            0.7,
            Some(&mults),
        );
        // Isolate the multiplier: its path must equal the overall critical path.
        let mut only_mul = vec![0.0f64; alu.netlist().len()];
        for (unit, range) in alu.unit_ranges() {
            if matches!(
                unit,
                AluUnit::Multiplier | AluUnit::OpDecode | AluUnit::ResultMux
            ) {
                for i in range.clone() {
                    only_mul[i] = mults[i];
                }
            }
        }
        let mul_only = StaticTimingAnalysis::run_with_multipliers(
            alu.netlist(),
            &delays,
            &scaling,
            0.7,
            Some(&only_mul),
        );
        let ratio = full.critical_path_ps() / mul_only.critical_path_ps();
        assert!((0.995..=1.005).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_unit_paths_meet_their_budgets() {
        let (alu, mults) = setup(8);
        let delays = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        let budgets = UnitBudgets::paper_defaults();
        let reference = StaticTimingAnalysis::run_with_multipliers(
            alu.netlist(),
            &delays,
            &scaling,
            0.7,
            Some(&mults),
        )
        .critical_path_ps();
        // The decode/result-mux skeleton alone sets a lower bound no unit can
        // be budgeted below.
        let mut shared_only = vec![0.0f64; alu.netlist().len()];
        for (u, range) in alu.unit_ranges() {
            if matches!(u, AluUnit::OpDecode | AluUnit::ResultMux) {
                for i in range.clone() {
                    shared_only[i] = 1.0;
                }
            }
        }
        let floor = StaticTimingAnalysis::run_with_multipliers(
            alu.netlist(),
            &delays,
            &scaling,
            0.7,
            Some(&shared_only),
        )
        .critical_path_ps();

        for (unit, budget) in [
            (AluUnit::AddSub, budgets.add_sub),
            (AluUnit::Comparator, budgets.comparator),
            (AluUnit::Shifter, budgets.shifter),
            (AluUnit::Logic, budgets.logic),
        ] {
            let mut isolated = vec![0.0f64; alu.netlist().len()];
            for (u, range) in alu.unit_ranges() {
                if *u == unit || matches!(u, AluUnit::OpDecode | AluUnit::ResultMux) {
                    for i in range.clone() {
                        isolated[i] = mults[i];
                    }
                }
            }
            let cp = StaticTimingAnalysis::run_with_multipliers(
                alu.netlist(),
                &delays,
                &scaling,
                0.7,
                Some(&isolated),
            )
            .critical_path_ps();
            let achieved = cp / reference;
            // A unit is either sitting at its budget (within the bisection
            // tolerance) or pinned at the decode/mux floor because its budget
            // asks for less than the shared skeleton alone costs.
            let at_budget = (achieved - budget).abs() < 0.02;
            let at_floor = cp <= floor * 1.001 && budget * reference <= floor;
            assert!(
                at_budget || at_floor,
                "unit {unit}: achieved fraction {achieved:.3}, budget {budget:.3}, floor {:.3}",
                floor / reference
            );
        }
    }

    #[test]
    fn budgeting_preserves_instruction_ordering() {
        use crate::characterize::{characterize_alu_with_multipliers, CharacterizationConfig};
        let (alu, mults) = setup(8);
        let ch = characterize_alu_with_multipliers(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            &CharacterizationConfig {
                cycles_per_op: 96,
                ..Default::default()
            },
            Some(&mults),
        );
        let mul = ch.first_failure_frequency_mhz(AluOp::Mul);
        let add = ch.first_failure_frequency_mhz(AluOp::Add);
        let xor = ch.first_failure_frequency_mhz(AluOp::Xor);
        assert!(mul < add, "mul must fail before add ({mul} vs {add})");
        assert!(add < xor, "add must fail before xor ({add} vs {xor})");
    }

    #[test]
    #[should_panic(expected = "unit budget")]
    fn invalid_budget_panics() {
        let alu = AluDatapath::build(8);
        let bad = UnitBudgets {
            add_sub: 1.5,
            ..UnitBudgets::paper_defaults()
        };
        synthesis_node_multipliers(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.7,
            &bad,
        );
    }
}
