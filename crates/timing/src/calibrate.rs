//! Calibration of the synthetic delay model against a target static timing
//! limit.
//!
//! The absolute gate delays of the synthetic netlist are arbitrary; what
//! matters for reproducing the paper is that the static timing limit of the
//! execution stage matches the case-study value (707 MHz at 0.7 V) so that
//! frequencies, points of first failure and over-scaling gains are reported
//! on the same axis as the paper.

use crate::sta::StaticTimingAnalysis;
use crate::units::freq_mhz_to_period_ps;
use sfi_netlist::alu::AluDatapath;
use sfi_netlist::{DelayModel, VoltageScaling};

/// Returns a copy of `delays` rescaled so that the STA limit of `alu` at
/// supply voltage `vdd` equals `target_fmax_mhz`.
///
/// # Panics
///
/// Panics if `target_fmax_mhz` is not strictly positive or `vdd` is not
/// above the threshold voltage of `scaling`.
///
/// # Example
///
/// ```
/// use sfi_netlist::alu::AluDatapath;
/// use sfi_netlist::{DelayModel, VoltageScaling};
/// use sfi_timing::{calibrate_delay_model, StaticTimingAnalysis};
///
/// let alu = AluDatapath::build(16);
/// let delays = calibrate_delay_model(
///     &alu,
///     &DelayModel::default_28nm(),
///     &VoltageScaling::default_28nm(),
///     707.0,
///     0.7,
/// );
/// let sta = StaticTimingAnalysis::run(alu.netlist(), &delays, &VoltageScaling::default_28nm(), 0.7);
/// assert!((sta.max_frequency_mhz() - 707.0).abs() < 0.5);
/// ```
pub fn calibrate_delay_model(
    alu: &AluDatapath,
    delays: &DelayModel,
    scaling: &VoltageScaling,
    target_fmax_mhz: f64,
    vdd: f64,
) -> DelayModel {
    calibrate_delay_model_with_multipliers(alu, delays, scaling, target_fmax_mhz, vdd, None)
}

/// Variant of [`calibrate_delay_model`] honouring per-node delay
/// multipliers from the synthesis-like timing-budgeting pass.
///
/// # Panics
///
/// Same conditions as [`calibrate_delay_model`]; additionally panics if the
/// multiplier slice length does not match the netlist size.
pub fn calibrate_delay_model_with_multipliers(
    alu: &AluDatapath,
    delays: &DelayModel,
    scaling: &VoltageScaling,
    target_fmax_mhz: f64,
    vdd: f64,
    node_multipliers: Option<&[f64]>,
) -> DelayModel {
    assert!(
        target_fmax_mhz > 0.0,
        "target frequency must be positive, got {target_fmax_mhz}"
    );
    let sta = StaticTimingAnalysis::run_with_multipliers(
        alu.netlist(),
        delays,
        scaling,
        vdd,
        node_multipliers,
    );
    let current_period = sta.critical_path_ps();
    let target_period = freq_mhz_to_period_ps(target_fmax_mhz);
    let scale = delays.scale() * target_period / current_period;
    delays.with_scale(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_target() {
        let alu = AluDatapath::build(8);
        let base = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        for target in [500.0, 707.0, 1000.0] {
            let cal = calibrate_delay_model(&alu, &base, &scaling, target, 0.7);
            let sta = StaticTimingAnalysis::run(alu.netlist(), &cal, &scaling, 0.7);
            assert!(
                (sta.max_frequency_mhz() - target).abs() < 0.5,
                "target {target}, got {}",
                sta.max_frequency_mhz()
            );
        }
    }

    #[test]
    fn calibration_is_idempotent() {
        let alu = AluDatapath::build(8);
        let base = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        let once = calibrate_delay_model(&alu, &base, &scaling, 707.0, 0.7);
        let twice = calibrate_delay_model(&alu, &once, &scaling, 707.0, 0.7);
        assert!((once.scale() - twice.scale()).abs() / once.scale() < 1e-9);
    }

    #[test]
    fn calibrating_at_higher_voltage_gives_larger_scale() {
        // At a higher supply the raw circuit is faster, so hitting the same
        // target frequency requires a larger scale factor.
        let alu = AluDatapath::build(8);
        let base = DelayModel::default_28nm();
        let scaling = VoltageScaling::default_28nm();
        let at07 = calibrate_delay_model(&alu, &base, &scaling, 707.0, 0.7);
        let at08 = calibrate_delay_model(&alu, &base, &scaling, 707.0, 0.8);
        assert!(at08.scale() > at07.scale());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_target_panics() {
        let alu = AluDatapath::build(8);
        calibrate_delay_model(
            &alu,
            &DelayModel::default_28nm(),
            &VoltageScaling::default_28nm(),
            0.0,
            0.7,
        );
    }
}
