//! Loopback tests of the assemble-and-submit path: `sfi-client submit
//! FILE.s` must produce byte-identical results to a hand-encoded
//! `program` recipe campaign, and a verification rejection must come
//! back with findings mapped to assembly source lines.

use sfi_core::FaultModel;
use sfi_isa::{Instruction, Program, Reg};
use sfi_serve::client::Client;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::path::PathBuf;
use std::process::Command;

/// The text-assembly source of the loopback program: sum two input
/// words into the output region.
const SOURCE: &str = "\
.dmem 8
.input 40 2
.output 3:4
        l.lwz   r1, 0(r0)
        l.lwz   r2, 4(r0)
        l.add   r3, r1, r2
        l.sw    12(r0), r3
";

/// The same program, hand-encoded.
fn hand_encoded() -> Vec<Instruction> {
    vec![
        Instruction::Lwz {
            rd: Reg(1),
            ra: Reg(0),
            offset: 0,
        },
        Instruction::Lwz {
            rd: Reg(2),
            ra: Reg(0),
            offset: 4,
        },
        Instruction::Add {
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        },
        Instruction::Sw {
            ra: Reg(0),
            rb: Reg(3),
            offset: 12,
        },
    ]
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "sfi-asm-submit-{}-{:?}-{name}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, contents).expect("write temp asm");
    path
}

/// Runs `sfi-client` against `addr` and returns (status, stdout, stderr).
fn run_client(addr: &str, args: &[&str]) -> (Option<i32>, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_sfi-client"))
        .args(["--addr", addr])
        .args(args)
        .output()
        .expect("sfi-client runs");
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn asm_submissions_match_hand_encoded_program_recipes_byte_for_byte() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    // The hand-encoded twin: same name, seed, cell and recipe the client
    // binary is expected to build from the .s file and its flags.
    let mut def = CampaignDef::new("asm-loopback", 9);
    let benchmark = def.add_benchmark(BenchmarkDef::Program {
        words: Program::new(hand_encoded()).to_words(),
        dmem_words: 8,
        fi_window: (0, 4),
        input: vec![40, 2],
        output: (3, 4),
        seed: 9,
    });
    def.cells.push(CellDef {
        benchmark,
        model: FaultModel::StatisticalDta,
        freq_mhz: 77.5,
        vdd: 0.7,
        noise_sigma_mv: 0.0,
        budget: BudgetDef::fixed(4),
    });
    let hand_job = client.submit(&def).expect("hand-encoded twin accepted").job;

    // The same campaign through `sfi-client submit FILE.s`.
    let path = temp_file("sum.s", SOURCE);
    let (code, stdout, stderr) = run_client(
        &addr,
        &[
            "submit",
            path.to_str().expect("utf-8 temp path"),
            "--freq",
            "77.5",
            "--trials",
            "4",
            "--seed",
            "9",
            "--name",
            "asm-loopback",
        ],
    );
    assert_eq!(code, Some(0), "submit failed:\n{stdout}{stderr}");
    let asm_job: u64 = stdout
        .split_whitespace()
        .nth(1)
        .and_then(|id| id.parse().ok())
        .unwrap_or_else(|| panic!("no job id in: {stdout}"));
    assert!(stdout.contains("1 cells"), "{stdout}");

    // Wait for both and compare the full result documents byte for byte.
    for job in [hand_job, asm_job] {
        let state = client.stream(job, |_| {}).expect("streams");
        assert_eq!(state, "done", "job {job}");
    }
    let hand_result = client.result(hand_job).expect("hand result").to_string();
    let asm_result = client.result(asm_job).expect("asm result").to_string();
    assert_eq!(
        hand_result, asm_result,
        "assembled submission must be byte-identical to the hand-encoded recipe"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn rejected_asm_submissions_map_findings_to_source_lines() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let addr = server.local_addr().to_string();

    // `l.add r1, r7, r7` reads the never-written r7 (V004): the daemon's
    // verification gate rejects it, and the client maps the finding back
    // through the assembler's line table (the l.add sits on line 3).
    let source = "\
.dmem 4
.output 0:1
l.add  r1, r7, r7
l.sw   0(r0), r1
";
    let path = temp_file("bad.s", source);
    let (code, stdout, stderr) =
        run_client(&addr, &["submit", path.to_str().expect("utf-8 temp path")]);
    assert_eq!(code, Some(1), "expected a rejection:\n{stdout}{stderr}");
    assert!(
        stderr.contains("static verification"),
        "names the gate:\n{stderr}"
    );
    let expected = format!("{}:3: V004", path.display());
    assert!(
        stderr.contains(&expected),
        "finding must carry the source line ({expected}):\n{stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn asm_submission_assembly_errors_exit_2_with_spans() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let addr = server.local_addr().to_string();

    let path = temp_file("broken.s", ".output 0:1\nl.frobnicate r1\n");
    let (code, _, stderr) = run_client(&addr, &["submit", path.to_str().expect("utf-8 temp path")]);
    assert_eq!(
        code,
        Some(2),
        "assembly errors are usage-class errors:\n{stderr}"
    );
    assert!(stderr.contains("unknown mnemonic"), "{stderr}");
    assert!(
        stderr.contains(":2:") && stderr.contains('^'),
        "expected a rendered span:\n{stderr}"
    );
    std::fs::remove_file(&path).ok();
}
