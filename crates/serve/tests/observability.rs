//! End-to-end observability test: drives a daemon through submit, quota
//! rejection, preemption and eviction, then asserts the story is visible
//! through every export surface — the `metrics` frame, the `events`
//! frame, the extended `pong` totals and the Prometheus listener.
//!
//! The metrics registry is process-global, so every assertion is a
//! *delta* (before/after, `>=`) rather than an absolute value — other
//! tests in this binary could in principle run campaigns too.

use sfi_campaign::{checkpoint, CampaignEngine};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_core::FaultModel;
use sfi_serve::client::Client;
use sfi_serve::jobs::{JobState, Priority};
use sfi_serve::protocol::ErrorCode;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A 2-cell median campaign straddling the failure transition.
fn two_cell_def(name: &str, sta: f64) -> CampaignDef {
    let mut def = CampaignDef::new(name, 42);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * overscale,
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(6),
        });
    }
    def
}

/// A slow, many-cell campaign for mid-run preemption.
fn long_def(name: &str, sta: f64, cells: usize, trials: usize) -> CampaignDef {
    let mut def = CampaignDef::new(name, 1);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 129,
        seed: 3,
    });
    for i in 0..cells {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * (0.9 + 0.01 * i as f64),
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(trials),
        });
    }
    def
}

/// Finds one family document by name in a `metrics` snapshot.
fn family<'a>(snapshot: &'a Json, name: &str) -> &'a Json {
    snapshot
        .get("families")
        .and_then(Json::as_arr)
        .and_then(|families| {
            families
                .iter()
                .find(|f| f.get("name").and_then(Json::as_str) == Some(name))
        })
        .unwrap_or_else(|| panic!("family {name} missing from the snapshot"))
}

/// The value of a counter family's sample matching `label` (or the single
/// unlabelled sample).
fn counter(snapshot: &Json, name: &str, label: Option<(&str, &str)>) -> u64 {
    let samples = family(snapshot, name)
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array");
    let sample = samples
        .iter()
        .find(|s| match label {
            None => true,
            Some((key, value)) => {
                s.get("labels")
                    .and_then(|l| l.get(key))
                    .and_then(Json::as_str)
                    == Some(value)
            }
        })
        .unwrap_or_else(|| panic!("no sample of {name} matches {label:?}"));
    sample
        .get("value")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{name} value is not a counter"))
}

/// The gauge value of a family's sample matching `label`.
fn gauge(snapshot: &Json, name: &str, label: Option<(&str, &str)>) -> i64 {
    let samples = family(snapshot, name)
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array");
    let sample = samples
        .iter()
        .find(|s| match label {
            None => true,
            Some((key, value)) => {
                s.get("labels")
                    .and_then(|l| l.get(key))
                    .and_then(Json::as_str)
                    == Some(value)
            }
        })
        .unwrap_or_else(|| panic!("no sample of {name} matches {label:?}"));
    sample
        .get("value")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{name} value is not a gauge")) as i64
}

/// The (count, sum) of a histogram family's single sample.
fn histogram(snapshot: &Json, name: &str) -> (u64, f64) {
    let samples = family(snapshot, name)
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array");
    let value = samples[0].get("value").expect("histogram value");
    (
        value.get("count").and_then(Json::as_u64).expect("count"),
        value.get("sum").and_then(Json::as_f64).expect("sum"),
    )
}

#[test]
fn the_full_job_story_is_visible_through_every_export_surface() {
    // Size the eviction cap from a local run: two retained results fit,
    // three do not.
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let sta = study.sta_limit_mhz(0.7);
    let evict_def = two_cell_def("evictable", sta);
    let spec = evict_def.instantiate().expect("instantiates");
    let local = CampaignEngine::new().run(&study, &spec);
    let single = local.to_json(&spec).to_string().len()
        + local
            .cells
            .iter()
            .map(|cell| checkpoint::cell_to_json(cell).to_string().len())
            .sum::<usize>();

    let server = Server::start(ServeConfig {
        result_cap_bytes: Some(single * 2 + single / 2),
        max_queued_per_client: Some(1),
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::fast_for_tests()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let info = client.ping().expect("pong");
    assert!(info.metrics_enabled, "the Prometheus listener is on");
    let before = client.metrics().expect("metrics frame");

    // --- Submit and finish a small campaign. -------------------------
    let ticket = client.submit(&evict_def).expect("accepted");
    let status = client.wait(ticket.job).expect("terminal");
    assert_eq!(status.state, JobState::Done);

    let after = client.metrics().expect("metrics frame");
    let delta = |name: &str, label: Option<(&str, &str)>| {
        counter(&after, name, label) - counter(&before, name, label)
    };
    assert!(delta("sfi_trials_total", None) >= 12, "2 cells x 6 trials");
    assert!(delta("sfi_iss_cycles_total", None) > 0);
    assert!(
        delta("sfi_iss_injected_faults_total", Some(("model", "dta"))) > 0,
        "the 1.25x-STA cell must inject DTA faults"
    );
    assert!(delta("sfi_engine_cells_finished_total", None) >= 2);
    assert!(delta("sfi_sched_jobs_submitted_total", None) >= 1);
    let (wait_before, _) = histogram(&before, "sfi_sched_job_wait_seconds");
    let (wait_after, _) = histogram(&after, "sfi_sched_job_wait_seconds");
    assert!(wait_after > wait_before, "the dispatch observed a wait");
    let (run_before, run_sum_before) = histogram(&before, "sfi_sched_job_run_seconds");
    let (run_after, run_sum_after) = histogram(&after, "sfi_sched_job_run_seconds");
    assert!(run_after > run_before, "the terminal job observed a run");
    assert!(
        run_sum_after >= run_sum_before,
        "monotonic-clock run times never go negative"
    );
    // Idle daemon: the running-slots gauge is back to zero, queues empty.
    assert_eq!(gauge(&after, "sfi_sched_running_jobs", None), 0);
    assert_eq!(
        gauge(
            &after,
            "sfi_sched_queue_depth",
            Some(("priority", "normal"))
        ),
        0
    );

    // --- Quota rejection. --------------------------------------------
    // One slot is busy with a long low-priority job; a second client can
    // queue exactly one job before hitting its quota.
    let low = client
        .submit_with(
            &long_def("preempt-victim", sta, 48, 30),
            Priority::Low,
            Some("batch"),
        )
        .expect("accepted");
    loop {
        let status = client.status(low.job).expect("status");
        if status.state == JobState::Running && status.completed_cells >= 1 {
            break;
        }
        assert!(!status.is_terminal(), "must still be running");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let queued = client
        .submit_with(
            &two_cell_def("queued-ok", sta),
            Priority::Low,
            Some("quota"),
        )
        .expect("first queued job fits the quota");
    let err = client
        .submit_with(
            &two_cell_def("queued-over", sta),
            Priority::Low,
            Some("quota"),
        )
        .expect_err("second queued job exceeds the quota");
    assert_eq!(err.code(), Some(ErrorCode::QuotaExceeded), "{err}");

    // --- Preemption. --------------------------------------------------
    let mut urgent_def = CampaignDef::new("urgent", 9);
    let crc = urgent_def.add_benchmark(BenchmarkDef::Crc32 { words: 16, seed: 3 });
    urgent_def.cells.push(CellDef {
        benchmark: crc,
        model: FaultModel::StatisticalDta,
        freq_mhz: sta * 1.05,
        vdd: 0.7,
        noise_sigma_mv: 10.0,
        budget: BudgetDef::fixed(4),
    });
    let high = client
        .submit_with(&urgent_def, Priority::High, Some("interactive"))
        .expect("accepted");
    assert_eq!(
        client.wait(high.job).expect("terminal").state,
        JobState::Done
    );
    let low_status = client.wait(low.job).expect("terminal");
    assert_eq!(low_status.state, JobState::Done);
    assert!(low_status.preemptions >= 1);
    assert_eq!(
        client.wait(queued.job).expect("terminal").state,
        JobState::Done
    );

    // --- Eviction. ----------------------------------------------------
    // The long job's retained bytes blow well past the cap, so by now at
    // least one earlier result has been evicted; two more small jobs make
    // it deterministic regardless of ordering.
    let extra = client.submit(&evict_def).expect("accepted");
    assert_eq!(
        client.wait(extra.job).expect("terminal").state,
        JobState::Done
    );

    let end = client.metrics().expect("metrics frame");
    assert!(
        counter(&end, "sfi_sched_preemptions_total", None)
            > counter(&before, "sfi_sched_preemptions_total", None)
    );
    assert!(
        counter(&end, "sfi_sched_quota_rejections_total", None)
            > counter(&before, "sfi_sched_quota_rejections_total", None)
    );
    assert!(
        counter(&end, "sfi_sched_evictions_total", None)
            > counter(&before, "sfi_sched_evictions_total", None)
    );
    assert!(
        counter(&end, "sfi_sched_evicted_bytes_total", None)
            > counter(&before, "sfi_sched_evicted_bytes_total", None)
    );

    // The same cumulative totals ride on pong, for clients that do not
    // speak the metrics frame.
    let info = client.ping().expect("pong");
    assert!(info.preemptions_total >= 1);
    assert!(info.evictions_total >= 1);

    // --- Events. -------------------------------------------------------
    let (events, _dropped) = client.events(None, None).expect("events frame");
    let events = events.as_arr().expect("array");
    assert!(!events.is_empty());
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    for expected in [
        "job_submitted",
        "job_started",
        "job_done",
        "job_preempted",
        "result_evicted",
    ] {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
    // Timestamps are monotonic (oldest first) and the job filter works.
    let stamps: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("ts_us").and_then(Json::as_u64))
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "oldest first");
    let (filtered, _) = client.events(Some(5), Some(low.job)).expect("events frame");
    let filtered = filtered.as_arr().expect("array");
    assert!(filtered.len() <= 5);
    assert!(filtered
        .iter()
        .all(|e| e.get("job").and_then(Json::as_u64) == Some(low.job)));

    // --- Prometheus listener. -----------------------------------------
    let addr = server.metrics_addr().expect("listener bound");
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    for needle in [
        "# TYPE sfi_trials_total counter",
        "# TYPE sfi_sched_queue_depth gauge",
        "# TYPE sfi_sched_job_wait_seconds histogram",
        "sfi_sched_job_wait_seconds_bucket{le=\"+Inf\"}",
        "sfi_iss_injected_faults_total{model=\"dta\"}",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in exposition");
    }

    server.shutdown();
}
