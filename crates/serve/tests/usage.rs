//! Usage-text drift tests: `--help` of both serve binaries must exit 0
//! and mention every flag (and subcommand) the argument parsers accept,
//! so the USAGE strings cannot silently fall behind the parsers.

use std::process::Command;

fn help_output(bin: &str) -> String {
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .unwrap_or_else(|err| panic!("cannot run {bin} --help: {err}"));
    assert!(
        output.status.success(),
        "{bin} --help must exit 0, got {:?}",
        output.status
    );
    let text = String::from_utf8(output.stdout).expect("help is UTF-8");
    assert!(!text.is_empty(), "{bin} --help must print the usage text");
    text
}

#[test]
fn sfi_serve_help_mentions_every_accepted_flag() {
    // Keep in sync with the `match argv[i].as_str()` arms in
    // crates/serve/src/bin/sfi-serve.rs.
    let flags = [
        "--addr",
        "--fast",
        "--threads",
        "--max-concurrent-jobs",
        "--max-queued-per-client",
        "--max-running-per-client",
        "--result-cap-bytes",
        "--cache-dir",
        "--checkpoint-dir",
        "--state-dir",
        "--drain-timeout",
        "--conn-timeout",
        "--max-connections",
        "--drain-on-stdin",
        "--metrics-addr",
        "--event-buffer",
        "--alert-queue-depth",
        "--alert-hold-seconds",
        "--alert-drop-rate",
        "--help",
    ];
    let help = help_output(env!("CARGO_BIN_EXE_sfi-serve"));
    for flag in flags {
        assert!(help.contains(flag), "sfi-serve --help must mention {flag}");
    }
}

#[test]
fn sfi_client_help_mentions_every_command_and_flag() {
    // Keep in sync with the command dispatch and the per-command flag
    // loops in crates/serve/src/bin/sfi-client.rs.
    let commands = [
        "ping", "submit", "demo", "status", "stream", "result", "cancel", "poff", "metrics",
        "events", "trace", "alerts", "drain", "shutdown",
    ];
    let flags = [
        "--addr",
        "--priority",
        "--client",
        "--key",
        "--freq",
        "--vdd",
        "--noise",
        "--resolution",
        "--trials",
        "--seed",
        "--model",
        "--dmem",
        "--name",
        "--limit",
        "--job",
        "--chrome",
    ];
    let help = help_output(env!("CARGO_BIN_EXE_sfi-client"));
    for command in commands {
        assert!(
            help.contains(command),
            "sfi-client --help must mention the {command} command"
        );
    }
    for flag in flags {
        assert!(help.contains(flag), "sfi-client --help must mention {flag}");
    }
    for priority in ["low", "normal", "high"] {
        assert!(
            help.contains(priority),
            "sfi-client --help must name the {priority} priority class"
        );
    }
}
