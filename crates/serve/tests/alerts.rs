//! Loopback tests for the tracing/alerting surface: a queue-depth alert
//! that demonstrably fires and resolves, and a `trace` frame carrying
//! job-lifecycle, cell and trial spans.
//!
//! These tests live in their own test binary (= their own process): the
//! alert engine and trace store are process-global singletons, and the
//! fire/resolve assertions need a queue-depth story no concurrent test
//! can perturb.

use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_serve::client::Client;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The alert engine, trace store and scheduler gauges are process-global;
/// both tests in this binary tell queue-depth stories, so they must not
/// overlap in time.
static STORY: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    STORY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A slow, many-cell campaign that keeps the single job slot busy.
fn long_def(name: &str, sta: f64, cells: usize, trials: usize) -> CampaignDef {
    let mut def = CampaignDef::new(name, 1);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 129,
        seed: 3,
    });
    for i in 0..cells {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * (0.9 + 0.01 * i as f64),
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(trials),
        });
    }
    def
}

/// Finds one rule's status document in an `alerts` frame payload.
fn rule_status(alerts: &Json, rule: &str) -> Json {
    alerts
        .as_arr()
        .expect("alerts is an array")
        .iter()
        .find(|s| s.get("rule").and_then(Json::as_str) == Some(rule))
        .unwrap_or_else(|| panic!("rule {rule} missing from the alerts frame"))
        .clone()
}

/// Polls `alerts` until the rule's firing state matches, or panics after
/// the deadline.  Alert evaluation is poll-driven: each `alerts` request
/// advances the rule state machine against a fresh registry snapshot.
fn wait_for_firing(client: &mut Client, rule: &str, want: bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let alerts = client.alerts().expect("alerts frame");
        let status = rule_status(&alerts, rule);
        if status.get("firing").and_then(Json::as_bool) == Some(want) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "rule {rule} never reached firing={want}: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn queue_depth_alert_fires_and_resolves() {
    let _story = serialize();
    let server = Server::start(ServeConfig {
        max_concurrent_jobs: 1,
        // Arm at > 2 queued jobs with no hold so a single saturated
        // evaluation fires; the drop-rate rule keeps its default.
        alert_queue_depth: 2.0,
        alert_hold_seconds: 0.0,
        ..ServeConfig::fast_for_tests()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");

    // One running job holds the slot; four more pile up in the queue.
    let runner = client
        .submit(&long_def("alert-runner", info.sta_limit_mhz, 6, 400))
        .expect("submits");
    let queued: Vec<u64> = (0..4)
        .map(|i| {
            client
                .submit(&long_def(
                    &format!("alert-queued-{i}"),
                    info.sta_limit_mhz,
                    2,
                    5,
                ))
                .expect("submits")
                .job
        })
        .collect();

    let firing = wait_for_firing(&mut client, "scheduler_queue_saturated", true);
    assert_eq!(
        firing.get("family").and_then(Json::as_str),
        Some("sfi_sched_queue_depth")
    );
    assert!(
        firing.get("value").and_then(Json::as_f64).expect("value") > 2.0,
        "firing status reports the saturated depth: {firing}"
    );
    assert!(
        firing.get("since_us").and_then(Json::as_u64).is_some(),
        "a firing rule carries its since timestamp: {firing}"
    );
    let fired_total = firing
        .get("fired_total")
        .and_then(Json::as_u64)
        .expect("fired_total");
    assert!(fired_total >= 1);

    // Drain the queue: cancel the waiting jobs and the runner.
    for job in queued {
        client.cancel(job).expect("cancels queued job");
    }
    client.cancel(runner.job).expect("cancels runner");
    let resolved = wait_for_firing(&mut client, "scheduler_queue_saturated", false);
    assert!(
        resolved
            .get("resolved_total")
            .and_then(Json::as_u64)
            .expect("resolved_total")
            >= 1,
        "the rule resolved after the queue drained: {resolved}"
    );
    assert_eq!(
        resolved.get("since_us").cloned(),
        Some(Json::Null),
        "a resolved rule has no since timestamp"
    );

    server.shutdown();
}

#[test]
fn trace_frame_carries_lifecycle_and_engine_spans() {
    let _story = serialize();
    let server = Server::start(ServeConfig::fast_for_tests()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");

    let mut def = CampaignDef::new("trace-loopback", 42);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: info.sta_limit_mhz * overscale,
            vdd: info.nominal_vdd,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(6),
        });
    }
    let ticket = client.submit(&def).expect("submits");
    client.wait(ticket.job).expect("job finishes");

    // Job-filtered fetch: the lifecycle spans plus the engine spans the
    // scheduler tagged with this job id.
    let (spans, _dropped) = client.trace(None, Some(ticket.job)).expect("trace frame");
    let records = spans.as_arr().expect("spans is an array");
    let names: Vec<&str> = records
        .iter()
        .filter_map(|r| r.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "job_queued",
        "job_running",
        "job_lifetime",
        "campaign",
        "cell",
        "trial",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected} missing from job-filtered trace: {names:?}"
        );
    }
    assert!(
        names.contains(&"worker_utilization"),
        "per-worker utilization counters are tagged with the job: {names:?}"
    );
    for record in records {
        assert_eq!(
            record.get("job").and_then(Json::as_u64),
            Some(ticket.job),
            "job-filtered records all carry the job id: {record}"
        );
        let ph = record.get("ph").and_then(Json::as_str).expect("ph");
        assert!(ph == "X" || ph == "C", "known phase: {record}");
        assert!(record.get("ts_us").and_then(Json::as_u64).is_some());
    }
    // Span records nest: this campaign's trial spans parent to its
    // campaign span.  (Anchor on the campaign name — the global store may
    // hold records from other jobs that reused the same numeric id.)
    let campaign_id = records
        .iter()
        .find(|r| {
            r.get("name").and_then(Json::as_str) == Some("campaign")
                && r.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("trace-loopback")
        })
        .and_then(|r| r.get("id"))
        .and_then(Json::as_u64)
        .expect("campaign span id");
    assert!(
        records.iter().any(|r| {
            r.get("name").and_then(Json::as_str) == Some("trial")
                && r.get("parent").and_then(Json::as_u64) == Some(campaign_id)
        }),
        "trial spans parent to the campaign span"
    );

    // The limit knob caps the fetch.
    let (limited, _) = client
        .trace(Some(2), Some(ticket.job))
        .expect("trace frame");
    assert!(limited.as_arr().expect("array").len() <= 2);

    server.shutdown();
}
