//! Chaos tests of the serve daemon's crash/fault robustness: kill -9
//! mid-campaign with bit-identical journal recovery, graceful drain,
//! torn journal tails, fault-injected connections (mid-frame cuts, byte
//! corruption) against the retrying client, and silent-peer deadlines.
//!
//! The kill -9 test drives the real `sfi-serve` binary as a child
//! process — an in-process server cannot be SIGKILLed without taking
//! the test harness down with it.  Everything else runs in-process.

use sfi_campaign::checkpoint;
use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_serve::chaos::{ChaosProxy, FaultPlan};
use sfi_serve::client::{Client, RetryPolicy, RetryingClient};
use sfi_serve::jobs::{JobState, Priority};
use sfi_serve::protocol::ErrorCode;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfi_chaos_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 2-cell median campaign straddling the failure transition.
fn two_cell_def(sta: f64) -> CampaignDef {
    let mut def = CampaignDef::new("chaos", 42);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * overscale,
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(6),
        });
    }
    def
}

/// A campaign slow enough that a kill or drain lands mid-run.
fn long_def(name: &str, sta: f64, cells: usize, trials: usize) -> CampaignDef {
    let mut def = CampaignDef::new(name, 1);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 129,
        seed: 3,
    });
    for i in 0..cells {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * (0.9 + 0.01 * i as f64),
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(trials),
        });
    }
    def
}

/// Sums a counter family across its samples from a `metrics` snapshot.
fn counter_total(snapshot: &Json, family: &str) -> u64 {
    snapshot
        .get("families")
        .and_then(Json::as_arr)
        .expect("snapshot has families")
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some(family))
        .unwrap_or_else(|| panic!("metric family {family} is registered"))
        .get("samples")
        .and_then(Json::as_arr)
        .expect("family has samples")
        .iter()
        .filter_map(|s| s.get("value").and_then(Json::as_str))
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

/// The real daemon binary as a child process, killable with SIGKILL.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sfi-serve"))
            .args(["--fast", "--addr", "127.0.0.1:0", "--threads", "1"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("daemon stdout reads") == 0 {
                panic!("daemon exited before announcing its address");
            }
            if let Some(rest) = line.trim().strip_prefix("sfi-serve listening on ") {
                break rest.parse().expect("announced address parses");
            }
        };
        // Keep draining stdout so the pipe can never fill and block the
        // daemon.
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Daemon { child, addr }
    }

    /// SIGKILL: no drain, no journal flush beyond what already hit disk.
    fn kill_nine(mut self) {
        self.child.kill().expect("SIGKILL lands");
        self.child.wait().expect("child reaped");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn kill_nine_mid_campaign_then_restart_recovers_bit_identically() {
    let dir = temp_dir("kill9");
    let state = dir.to_str().expect("utf-8 temp path").to_string();

    // Submit a slow campaign and SIGKILL the daemon once at least one
    // cell has been journaled but the job is still running.
    let daemon = Daemon::start(&["--state-dir", &state]);
    let mut client = Client::connect(daemon.addr).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;
    let def = long_def("chaos-kill9", sta, 6, 30);
    let ticket = client
        .submit_keyed(&def, Priority::Normal, Some("chaos"), Some("kill9-1"))
        .expect("accepted");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client.status(ticket.job).expect("status");
        if status.completed_cells >= 1 {
            assert!(
                !status.is_terminal(),
                "campaign finished before the kill could land; make it longer"
            );
            break;
        }
        assert!(Instant::now() < deadline, "no cell completed in time");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(client);
    daemon.kill_nine();

    // Restart on the same state dir: the job resumes from its journaled
    // cells and finishes.
    let daemon = Daemon::start(&["--state-dir", &state]);
    let mut client = Client::connect(daemon.addr).expect("reconnects");
    let status = client.wait(ticket.job).expect("job survives the restart");
    assert_eq!(status.state, JobState::Done);
    assert!(!status.evicted, "a resumed job retains its result");

    // The idempotency key survived the crash: resubmitting returns the
    // original job instead of creating a duplicate.
    let again = client
        .submit_keyed(&def, Priority::Normal, Some("chaos"), Some("kill9-1"))
        .expect("resubmit accepted");
    assert_eq!(again.job, ticket.job);

    // Streamed cells: exactly one per cell index, none lost or doubled.
    let mut streamed = Vec::new();
    client
        .stream(ticket.job, |cell| streamed.push(cell.to_string()))
        .expect("streams");
    let mut decoded: Vec<_> = streamed
        .iter()
        .map(|text| {
            checkpoint::cell_from_json(&Json::parse(text).expect("cell parses"))
                .expect("cell decodes")
        })
        .collect();
    decoded.sort_by_key(|cell| cell.cell);
    assert_eq!(decoded.len(), def.cells.len());
    for (index, cell) in decoded.iter().enumerate() {
        assert_eq!(cell.cell, index, "deduped cell set covers every cell once");
    }

    let recovered_doc = client.result(ticket.job).expect("result").to_string();
    let snapshot = client.metrics().expect("metrics");
    assert!(
        counter_total(&snapshot, "sfi_recovered_jobs_total") >= 1,
        "the restart must count the recovered job"
    );
    assert!(
        counter_total(&snapshot, "sfi_journal_replayed_records_total") >= 2,
        "the restart must count replayed journal records"
    );
    drop(client);
    drop(daemon);

    // A clean, uninterrupted daemon run of the same campaign produces
    // byte-identical result JSON and streamed cells.
    let daemon = Daemon::start(&[]);
    let mut client = Client::connect(daemon.addr).expect("connects");
    let clean = client.submit(&def).expect("accepted");
    let mut clean_cells = Vec::new();
    let state = client
        .stream(clean.job, |cell| clean_cells.push(cell.to_string()))
        .expect("streams");
    assert_eq!(state, "done");
    let clean_doc = client.result(clean.job).expect("result").to_string();

    assert_eq!(
        recovered_doc, clean_doc,
        "recovered result must be byte-identical to an uninterrupted run"
    );
    streamed.sort();
    clean_cells.sort();
    assert_eq!(
        streamed, clean_cells,
        "recovered streamed cell set must be byte-identical to an uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_finishes_running_jobs_refuses_new_submits_and_exits() {
    let mut config = ServeConfig::fast_for_tests();
    config.drain_timeout_seconds = 120.0;
    let server = Server::start(config).expect("daemon starts");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    let info = client.ping().expect("pong");
    assert!(!info.draining, "a fresh daemon is not draining");
    let def = long_def("chaos-drain", info.sta_limit_mhz, 3, 25);
    let ticket = client.submit(&def).expect("accepted");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client.status(ticket.job).expect("status");
        if status.state == JobState::Running {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Drain from a second connection: the running job keeps going, new
    // submits are refused with the typed transient error, and pong
    // reports the drain.
    let mut other = Client::connect(addr).expect("connects");
    assert_eq!(other.drain().expect("drain starts"), 1);
    let _ = other.drain().expect("drain is idempotent");
    assert!(other.ping().expect("pong").draining);
    let err = other
        .submit(&two_cell_def(info.sta_limit_mhz))
        .expect_err("draining daemon refuses submits");
    assert_eq!(err.code(), Some(ErrorCode::Draining));

    // The in-flight job runs to completion...
    let status = client.wait(ticket.job).expect("job finishes");
    assert_eq!(status.state, JobState::Done);
    drop(client);
    drop(other);

    // ...and the daemon then exits on its own: join() returns without
    // anyone sending `shutdown`.
    server.join();
}

#[test]
fn silent_connections_are_dropped_at_the_deadline() {
    let mut config = ServeConfig::fast_for_tests();
    config.conn_timeout_seconds = 0.25;
    let server = Server::start(config).expect("daemon starts");

    let mut idle = TcpStream::connect(server.local_addr()).expect("connects");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("sets timeout");
    let start = Instant::now();
    let mut buf = [0u8; 16];
    // Say nothing: the daemon must hang up on us, not wedge the slot.
    match idle.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("daemon sent {n} unsolicited bytes to a silent peer"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "silent peer outlived the 0.25s connection deadline"
    );

    // A live client still works, and the timeout was counted.
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let snapshot = client.metrics().expect("metrics");
    assert!(counter_total(&snapshot, "sfi_conn_timeouts_total") >= 1);
    drop(client);
    server.shutdown();
}

#[test]
fn a_mid_frame_cut_is_retried_and_the_keyed_submit_lands_exactly_once() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let mut direct = Client::connect(server.local_addr()).expect("connects");
    let sta = direct.ping().expect("pong").sta_limit_mhz;
    let def = two_cell_def(sta);

    // The proxy forwards 40 client bytes, then severs the connection
    // mid-frame — once.  The retry reconnects and passes clean.
    let plan = FaultPlan {
        cut_after: Some(40),
        ..FaultPlan::default()
    };
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy starts");
    let before = counter_total(
        &direct.metrics().expect("metrics"),
        "sfi_client_retries_total",
    );

    let mut retrying =
        RetryingClient::new(proxy.local_addr(), RetryPolicy::fast_for_tests()).expect("resolves");
    let ticket = retrying
        .submit(&def, Priority::Normal, Some("chaos"), "cut-1")
        .expect("submit survives the cut");
    assert!(proxy.cut_taken(), "the fault fired");
    let after = counter_total(
        &direct.metrics().expect("metrics"),
        "sfi_client_retries_total",
    );
    assert!(after > before, "the retry was counted");

    // Exactly one job landed: the direct resubmit with the same key
    // returns the same id, and the daemon saw one submission.
    let again = direct
        .submit_keyed(&def, Priority::Normal, Some("chaos"), Some("cut-1"))
        .expect("resubmit accepted");
    assert_eq!(again.job, ticket.job);
    assert_eq!(direct.ping().expect("pong").jobs, 1);

    // The streamed job completes through the (now clean) proxy.
    let status = retrying.wait(ticket.job).expect("job finishes");
    assert_eq!(status.state, JobState::Done);
    drop(retrying);
    drop(direct);
    drop(proxy);
    server.shutdown();
}

#[test]
fn a_corrupted_frame_gets_a_typed_error_and_the_daemon_survives() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let mut direct = Client::connect(server.local_addr()).expect("connects");
    let sta = direct.ping().expect("pong").sta_limit_mhz;
    let def = two_cell_def(sta);

    // Flip a bit in the very first client byte: `{` becomes `[`, so the
    // submit frame is no longer a JSON object.
    let plan = FaultPlan {
        corrupt_at: Some(0),
        ..FaultPlan::default()
    };
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy starts");
    let mut through = Client::connect(proxy.local_addr()).expect("connects");
    let err = through
        .submit(&def)
        .expect_err("corrupted frame is refused");
    assert_eq!(err.code(), Some(ErrorCode::BadRequest));
    assert!(proxy.corrupt_taken(), "the fault fired");

    // Same connection, next frame clean: the daemon kept serving.
    let ticket = through.submit(&def).expect("clean resubmit accepted");
    let status = through.wait(ticket.job).expect("job finishes");
    assert_eq!(status.state, JobState::Done);
    drop(through);
    drop(direct);
    drop(proxy);
    server.shutdown();
}

#[test]
fn permanent_rejections_are_not_retried() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");

    // A spec whose cell names a benchmark that does not exist: the
    // daemon answers bad_request, which the policy must not retry —
    // with a 500ms base delay, a single retry would blow the elapsed
    // bound.
    let mut bad = CampaignDef::new("chaos-bad", 1);
    bad.cells.push(CellDef {
        benchmark: 7,
        model: FaultModel::StatisticalDta,
        freq_mhz: 100.0,
        vdd: 0.7,
        noise_sigma_mv: 10.0,
        budget: BudgetDef::fixed(2),
    });
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(500),
        max_delay: Duration::from_millis(500),
        ..RetryPolicy::default()
    };
    let mut retrying = RetryingClient::new(server.local_addr(), policy).expect("resolves");
    let start = Instant::now();
    let err = retrying
        .submit(&bad, Priority::Normal, None, "bad-1")
        .expect_err("bad spec is refused");
    assert_eq!(err.code(), Some(ErrorCode::BadRequest));
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "a permanent rejection must surface immediately, not back off"
    );
    drop(retrying);
    server.shutdown();
}

#[test]
fn a_torn_journal_tail_is_tolerated_and_the_prefix_survives() {
    let dir = temp_dir("torn_tail");
    let mut config = ServeConfig::fast_for_tests();
    config.state_dir = Some(dir.clone());

    // Run one campaign to completion, then stop the daemon cleanly.
    let server = Server::start(config.clone()).expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;
    let def = two_cell_def(sta);
    let ticket = client
        .submit_keyed(&def, Priority::Normal, Some("torn"), Some("torn-1"))
        .expect("accepted");
    let status = client.wait(ticket.job).expect("job finishes");
    assert_eq!(status.state, JobState::Done);
    drop(client);
    server.shutdown();

    // Tear the journal: a record header that promises more bytes than
    // the file holds, as a crash mid-append would leave behind.
    let path = dir.join("journal.log");
    let before = std::fs::metadata(&path).expect("journal exists").len();
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("journal opens");
    file.write_all(&[64, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, b'{'])
        .expect("torn tail written");
    drop(file);

    // Restart: the daemon recovers the intact prefix and keeps serving.
    let server = Server::start(config).expect("daemon restarts over the torn journal");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let status = client.status(ticket.job).expect("job survived");
    assert_eq!(status.state, JobState::Done);
    assert!(
        status.evicted,
        "result bytes are not journaled, so a recovered terminal job reports evicted"
    );
    let err = client
        .result(ticket.job)
        .expect_err("result was not retained");
    assert_eq!(err.code(), Some(ErrorCode::ResultEvicted));

    // The idempotency key was replayed too.
    let again = client
        .submit_keyed(&def, Priority::Normal, Some("torn"), Some("torn-1"))
        .expect("resubmit accepted");
    assert_eq!(again.job, ticket.job, "idempotency keys survive restarts");

    // Startup compaction rewrote the journal without the torn tail.
    let after = std::fs::metadata(&path)
        .expect("journal still exists")
        .len();
    assert!(
        after < before,
        "compaction must shrink the journal ({after} vs {before} bytes)"
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
