//! Doc-sync test for `docs/PROTOCOL.md`.
//!
//! The protocol document is frozen v1 reference material, so it must not
//! drift from the implementation.  This test extracts every JSON example
//! from the document — each `{...}` line inside a fenced ```json block,
//! plus every `→` (client) and `←` (server) line of the transcript — and
//! round-trips it through the real wire types: the example must decode
//! (as a [`Request`] or [`Response`]) and re-encode to exactly the same
//! JSON value.  It also checks *coverage*: every request type, every
//! response type and every error code the implementation knows must
//! appear among the document's examples.

use sfi_core::json::Json;
use sfi_serve::protocol::{Request, Response};
use sfi_serve::wire::CampaignDef;
use std::path::PathBuf;

fn protocol_doc() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("cannot read {}: {err}", path.display()))
}

/// One extracted example and where it may appear.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    /// From a ```json block: either side of the conversation.
    Either,
    /// A transcript `→` line: must be a client request.
    ClientToServer,
    /// A transcript `←` line: must be a server response.
    ServerToClient,
}

fn extract_examples(doc: &str) -> Vec<(usize, Direction, String)> {
    let mut examples = Vec::new();
    let mut in_json_block = false;
    for (number, line) in doc.lines().enumerate() {
        let line_no = number + 1;
        let trimmed = line.trim();
        if trimmed.starts_with("```") {
            in_json_block = trimmed == "```json";
            continue;
        }
        if in_json_block && trimmed.starts_with('{') {
            examples.push((line_no, Direction::Either, trimmed.to_string()));
        } else if let Some(rest) = trimmed.strip_prefix('→') {
            examples.push((line_no, Direction::ClientToServer, rest.trim().to_string()));
        } else if let Some(rest) = trimmed.strip_prefix('←') {
            examples.push((line_no, Direction::ServerToClient, rest.trim().to_string()));
        }
    }
    examples
}

/// Decodes `doc` as a request and checks the re-encoding is identical;
/// returns the request's wire type name on success.
fn round_trips_as_request(doc: &Json) -> Option<&'static str> {
    let request = Request::from_json(doc).ok()?;
    (request.to_json() == *doc).then_some(match request {
        Request::Ping => "ping",
        Request::Submit(_) => "submit",
        Request::Status(_) => "status",
        Request::Stream(_) => "stream",
        Request::Result(_) => "result",
        Request::Poff(_) => "poff",
        Request::Metrics => "metrics",
        Request::Events { .. } => "events",
        Request::Trace { .. } => "trace",
        Request::Alerts => "alerts",
        Request::Cancel(_) => "cancel",
        Request::Drain => "drain",
        Request::Shutdown => "shutdown",
    })
}

/// Decodes `doc` as a response and checks the re-encoding is identical;
/// returns `(wire type name, error code)` on success.
fn round_trips_as_response(doc: &Json) -> Option<(&'static str, Option<&'static str>)> {
    let response = Response::from_json(doc).ok()?;
    (response.to_json() == *doc).then(|| match response {
        Response::Pong(_) => ("pong", None),
        Response::Submitted { .. } => ("submitted", None),
        Response::Status(_) => ("status", None),
        Response::Cell { .. } => ("cell", None),
        Response::End { .. } => ("end", None),
        Response::ResultDoc { .. } => ("result", None),
        Response::Poff(_) => ("poff", None),
        Response::Metrics { .. } => ("metrics", None),
        Response::Events { .. } => ("events", None),
        Response::Trace { .. } => ("trace", None),
        Response::Alerts { .. } => ("alerts", None),
        Response::Cancelled { .. } => ("cancelled", None),
        Response::DrainStarted { .. } => ("drain_started", None),
        Response::Bye => ("bye", None),
        Response::Error { code, .. } => ("error", Some(code.as_str())),
    })
}

#[test]
fn every_json_example_in_the_protocol_doc_round_trips_through_the_wire_types() {
    let doc = protocol_doc();
    let examples = extract_examples(&doc);
    assert!(
        examples.len() >= 25,
        "the protocol document should carry a rich example set, found {}",
        examples.len()
    );

    let mut request_kinds = Vec::new();
    let mut response_kinds = Vec::new();
    let mut error_codes = Vec::new();
    for (line_no, direction, text) in &examples {
        let parsed = Json::parse(text).unwrap_or_else(|err| {
            panic!("docs/PROTOCOL.md:{line_no}: example is not valid JSON ({err}): {text}")
        });
        let as_request = round_trips_as_request(&parsed);
        let as_response = round_trips_as_response(&parsed);
        match direction {
            Direction::ClientToServer => {
                let kind = as_request.unwrap_or_else(|| {
                    panic!(
                        "docs/PROTOCOL.md:{line_no}: → example must round-trip as a \
                         Request: {text}"
                    )
                });
                request_kinds.push(kind);
            }
            Direction::ServerToClient => {
                let (kind, code) = as_response.unwrap_or_else(|| {
                    panic!(
                        "docs/PROTOCOL.md:{line_no}: ← example must round-trip as a \
                         Response: {text}"
                    )
                });
                response_kinds.push(kind);
                error_codes.extend(code);
            }
            Direction::Either => {
                match (as_request, as_response) {
                    (Some(kind), _) => request_kinds.push(kind),
                    (None, Some((kind, code))) => {
                        response_kinds.push(kind);
                        error_codes.extend(code);
                    }
                    // A frame always carries "type"; an object without it
                    // is a bare campaign definition (the `spec` payload),
                    // which must round-trip through the wire codec too.
                    (None, None) if parsed.get("type").is_none() => {
                        let def = CampaignDef::from_json(&parsed).unwrap_or_else(|err| {
                            panic!(
                                "docs/PROTOCOL.md:{line_no}: bare example must decode \
                                 as a campaign definition ({err}): {text}"
                            )
                        });
                        assert_eq!(
                            def.to_json(),
                            parsed,
                            "docs/PROTOCOL.md:{line_no}: campaign definition must \
                             re-encode identically"
                        );
                        def.instantiate().unwrap_or_else(|err| {
                            panic!(
                                "docs/PROTOCOL.md:{line_no}: documented campaign must \
                                 instantiate ({err})"
                            )
                        });
                    }
                    (None, None) => panic!(
                        "docs/PROTOCOL.md:{line_no}: example round-trips as neither a \
                         Request nor a Response: {text}"
                    ),
                }
            }
        }
    }

    // Coverage: the document must exercise the complete vocabulary.
    for kind in [
        "ping", "submit", "status", "stream", "result", "poff", "metrics", "events", "trace",
        "alerts", "cancel", "drain", "shutdown",
    ] {
        assert!(
            request_kinds.contains(&kind),
            "docs/PROTOCOL.md carries no example of the '{kind}' request"
        );
    }
    for kind in [
        "pong",
        "submitted",
        "status",
        "cell",
        "end",
        "result",
        "poff",
        "metrics",
        "events",
        "trace",
        "alerts",
        "cancelled",
        "drain_started",
        "bye",
        "error",
    ] {
        assert!(
            response_kinds.contains(&kind),
            "docs/PROTOCOL.md carries no example of the '{kind}' response"
        );
    }
    for code in [
        "bad_request",
        "unknown_job",
        "quota_exceeded",
        "result_evicted",
        "no_result",
        "result_too_large",
        "shutting_down",
        "draining",
    ] {
        assert!(
            error_codes.contains(&code),
            "docs/PROTOCOL.md carries no error example with code '{code}'"
        );
    }
}

#[test]
fn the_documented_limits_match_the_implementation() {
    let doc = protocol_doc();
    // The limits table quotes the implementation constants; if one moves,
    // the document must move with it.
    for (name, value) in [
        ("max frame bytes", sfi_serve::protocol::MAX_FRAME_BYTES),
        ("max cells", sfi_serve::wire::MAX_CELLS),
        ("max benchmarks", sfi_serve::wire::MAX_BENCHMARKS),
        ("max trials per cell", sfi_serve::wire::MAX_TRIALS_PER_CELL),
        ("max client id bytes", sfi_serve::wire::MAX_CLIENT_ID_BYTES),
        ("max program words", sfi_serve::wire::MAX_PROGRAM_WORDS),
        (
            "max guest dmem words",
            sfi_serve::wire::MAX_GUEST_DMEM_WORDS,
        ),
    ] {
        // Accept the thousands-separated spelling used in prose tables.
        let plain = value.to_string();
        let spaced = plain
            .as_bytes()
            .rchunks(3)
            .rev()
            .map(|chunk| std::str::from_utf8(chunk).unwrap())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(
            doc.contains(&plain) || doc.contains(&spaced),
            "docs/PROTOCOL.md must quote the current value of {name} ({plain})"
        );
    }
}
