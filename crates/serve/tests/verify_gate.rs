//! Loopback tests of the static-verification submission gate: guest
//! programs with error-level analyzer findings are rejected with a typed
//! `detail` payload before any job is enqueued, every error rule is
//! demonstrable over the wire, and clean guest programs run end to end.
//!
//! This file is deliberately its own test binary: the scheduler metrics
//! it asserts on (`sfi_sched_jobs_submitted_total`) are process-global,
//! so sharing a process with the other loopback suites would make the
//! "metric unchanged" assertions racy.

use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_isa::{Instruction, Program, Reg};
use sfi_serve::client::{Client, ClientError};
use sfi_serve::jobs::JobState;
use sfi_serve::protocol::ErrorCode;
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};

/// Wraps instructions into a one-benchmark, one-cell campaign definition.
fn guest_def(
    name: &str,
    instructions: Vec<Instruction>,
    fi_window: (u32, u32),
    freq_mhz: f64,
) -> CampaignDef {
    let words = Program::new(instructions).to_words();
    let mut def = CampaignDef::new(name, 7);
    let benchmark = def.add_benchmark(BenchmarkDef::Program {
        words,
        dmem_words: 16,
        fi_window,
        input: vec![40, 2],
        output: (3, 4),
        seed: 1,
    });
    def.cells.push(CellDef {
        benchmark,
        model: FaultModel::StatisticalDta,
        freq_mhz,
        vdd: 0.7,
        noise_sigma_mv: 10.0,
        budget: BudgetDef::fixed(4),
    });
    def
}

/// Unpacks a server-side rejection into `(code, message, detail)`.
fn rejection(error: ClientError) -> (ErrorCode, String, Option<Json>) {
    match error {
        ClientError::Server {
            code,
            message,
            detail,
        } => (code, message, detail),
        other => panic!("expected a server rejection, got {other}"),
    }
}

/// The rule codes of a `verification` detail payload's findings, with the
/// payload shape asserted along the way.
fn finding_codes(detail: &Json) -> Vec<String> {
    assert_eq!(
        detail.get("kind").and_then(Json::as_str),
        Some("verification")
    );
    assert_eq!(detail.get("benchmark").and_then(Json::as_u64), Some(0));
    let findings = detail
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    findings
        .iter()
        .map(|f| {
            assert!(f.get("severity").and_then(Json::as_str).is_some());
            assert!(f.get("message").and_then(Json::as_str).is_some());
            assert!(f.get("start_pc").and_then(Json::as_u64).is_some());
            assert!(f.get("end_pc").and_then(Json::as_u64).is_some());
            f.get("code")
                .and_then(Json::as_str)
                .expect("finding code")
                .to_string()
        })
        .collect()
}

fn sched_jobs_submitted(snapshot: &Json) -> u64 {
    let families = snapshot
        .get("families")
        .and_then(Json::as_arr)
        .expect("families array");
    families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some("sfi_sched_jobs_submitted_total"))
        .and_then(|f| f.get("samples"))
        .and_then(Json::as_arr)
        .and_then(|samples| samples.first())
        .and_then(|s| s.get("value"))
        .and_then(Json::as_u64)
        .expect("submitted-jobs counter")
}

#[test]
fn guest_programs_are_gated_by_static_verification() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");
    let freq = info.sta_limit_mhz * 0.9;
    let before = client.metrics().expect("metrics frame");
    let mut accepted_jobs = 0u64;

    // --- A broken program is rejected with the full typed report. ------
    // `l.bf +100` dangles (V001) and tests an undefined flag (V006);
    // `l.add r3,r7,r0` reads the never-written r7 (V004).
    let broken = guest_def(
        "broken",
        vec![
            Instruction::Bf { offset: 100 },
            Instruction::Add {
                rd: Reg(3),
                ra: Reg(7),
                rb: Reg(0),
            },
        ],
        (0, 2),
        freq,
    );
    let (code, message, detail) = rejection(client.submit(&broken).expect_err("gated"));
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(
        message.contains("static verification"),
        "message names the gate: {message}"
    );
    assert!(message.contains("3 error(s)"), "{message}");
    let codes = finding_codes(&detail.expect("typed rejection payload"));
    assert_eq!(codes, ["V001", "V006", "V004"], "ordered by pc, then rule");

    // --- Every wire-reachable error rule is demonstrable. --------------
    // (V009 cannot travel: an empty `words` array fails the structural
    // bounds at decode; an out-of-program fi_window likewise, so V008 is
    // shown via a window covering only unreachable code.)
    let set_flag = Instruction::Sfeq {
        ra: Reg(0),
        rb: Reg(0),
    };
    let rule_cases: Vec<(&str, Vec<Instruction>, (u32, u32))> = vec![
        (
            "V001",
            vec![set_flag, Instruction::Bf { offset: 100 }, Instruction::Nop],
            (0, 3),
        ),
        ("V002", vec![Instruction::J { offset: -1 }], (0, 1)),
        (
            "V004",
            vec![Instruction::Add {
                rd: Reg(3),
                ra: Reg(4),
                rb: Reg(5),
            }],
            (0, 1),
        ),
        (
            "V006",
            vec![Instruction::Bf { offset: 0 }, Instruction::Nop],
            (0, 2),
        ),
        (
            "V007",
            vec![
                // dmem is 16 words = 64 bytes; byte address 64 is one past
                // the end.
                Instruction::Addi {
                    rd: Reg(3),
                    ra: Reg(0),
                    imm: 64,
                },
                Instruction::Sw {
                    ra: Reg(3),
                    rb: Reg(0),
                    offset: 0,
                },
            ],
            (0, 2),
        ),
        (
            "V008",
            vec![
                Instruction::J { offset: 1 },
                Instruction::Nop,
                Instruction::Nop,
            ],
            (1, 2),
        ),
    ];
    for (rule, instructions, window) in rule_cases {
        let def = guest_def(rule, instructions, window, freq);
        let (code, _, detail) = rejection(client.submit(&def).expect_err("gated"));
        assert_eq!(code, ErrorCode::BadRequest, "{rule}");
        let codes = finding_codes(&detail.unwrap_or_else(|| panic!("{rule}: typed payload")));
        assert!(codes.contains(&rule.to_string()), "{rule} in {codes:?}");
    }

    // --- Undecodable words are a plain bad_request (no analyzer ran). --
    let mut undecodable = guest_def("undecodable", vec![Instruction::Nop], (0, 1), freq);
    undecodable.benchmarks[0] = BenchmarkDef::Program {
        words: vec![u32::MAX],
        dmem_words: 16,
        fi_window: (0, 1),
        input: vec![],
        output: (3, 4),
        seed: 1,
    };
    let (code, message, detail) = rejection(client.submit(&undecodable).expect_err("gated"));
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("does not decode"), "{message}");
    assert!(detail.is_none(), "decode failures carry no findings");

    // None of the rejections enqueued anything.
    assert_eq!(client.ping().expect("pong").jobs, 0, "no job enqueued");
    let mid = client.metrics().expect("metrics frame");
    assert_eq!(
        sched_jobs_submitted(&mid),
        sched_jobs_submitted(&before),
        "rejected submissions never reach the scheduler"
    );

    // --- A clean guest program runs end to end. ------------------------
    // Adds input words 0 and 1, stores the sum to output word 3.
    let clean = guest_def(
        "clean",
        vec![
            Instruction::Lwz {
                rd: Reg(3),
                ra: Reg(0),
                offset: 0,
            },
            Instruction::Lwz {
                rd: Reg(4),
                ra: Reg(0),
                offset: 4,
            },
            Instruction::Add {
                rd: Reg(5),
                ra: Reg(3),
                rb: Reg(4),
            },
            Instruction::Sw {
                ra: Reg(0),
                rb: Reg(5),
                offset: 12,
            },
        ],
        (0, 4),
        freq,
    );
    let ticket = client.submit(&clean).expect("clean program accepted");
    accepted_jobs += 1;
    assert_eq!(ticket.total_cells, 1);
    let status = client.wait(ticket.job).expect("terminal");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.executed_trials, 4);

    // --- Warnings alone do not reject. ---------------------------------
    // r3 is read before its first write (V005, warning) but written later,
    // so the program is accepted and still runs.
    let warned = guest_def(
        "warnings-only",
        vec![
            Instruction::Addi {
                rd: Reg(4),
                ra: Reg(3),
                imm: 1,
            },
            Instruction::Addi {
                rd: Reg(3),
                ra: Reg(0),
                imm: 7,
            },
        ],
        (0, 2),
        freq,
    );
    let ticket = client.submit(&warned).expect("warnings are advisory");
    accepted_jobs += 1;
    let status = client.wait(ticket.job).expect("terminal");
    assert_eq!(status.state, JobState::Done);

    let after = client.metrics().expect("metrics frame");
    assert_eq!(
        sched_jobs_submitted(&after) - sched_jobs_submitted(&before),
        accepted_jobs,
        "exactly the accepted submissions reached the scheduler"
    );

    server.shutdown();
}

#[test]
fn poff_requests_are_gated_too() {
    let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");

    let spin = BenchmarkDef::Program {
        words: Program::new(vec![Instruction::J { offset: -1 }]).to_words(),
        dmem_words: 16,
        fi_window: (0, 1),
        input: vec![],
        output: (0, 1),
        seed: 1,
    };
    let request = sfi_serve::protocol::PoffRequest {
        benchmark: spin,
        model: FaultModel::StatisticalDta,
        vdd: 0.7,
        noise_sigma_mv: 10.0,
        lo_mhz: info.sta_limit_mhz * 0.8,
        hi_mhz: info.sta_limit_mhz * 1.2,
        resolution_mhz: 50.0,
        trials: 4,
        seed: 1,
    };
    let (code, message, detail) = rejection(client.poff(&request).expect_err("gated"));
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("static verification"), "{message}");
    let codes = finding_codes(&detail.expect("typed rejection payload"));
    assert!(codes.contains(&"V002".to_string()), "{codes:?}");

    server.shutdown();
}
