//! End-to-end loopback tests of the serve daemon: protocol round trips,
//! bit-identical results vs the direct engine, multi-job scheduling
//! (concurrency, priorities + preemption, per-client quotas, result
//! eviction), cancellation, malformed requests, warm
//! characterization-cache restarts and graceful shutdown.

use sfi_campaign::{checkpoint, CampaignEngine, CampaignResult, CampaignSpec};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_core::FaultModel;
use sfi_serve::client::Client;
use sfi_serve::jobs::{JobState, Priority};
use sfi_serve::protocol::{read_frame, write_frame, ErrorCode, PoffRequest};
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfi_serve_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_fast_server() -> Server {
    Server::start(ServeConfig::fast_for_tests()).expect("daemon starts")
}

/// A 2-cell median campaign straddling the failure transition.
fn two_cell_def(sta: f64) -> CampaignDef {
    let mut def = CampaignDef::new("loopback", 42);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * overscale,
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(6),
        });
    }
    def
}

/// A longer campaign: `cells` median cells mostly below the STA limit, so
/// trials are slow enough for mid-run cancellation/preemption to land.
fn long_def(name: &str, sta: f64, cells: usize, trials: usize) -> CampaignDef {
    let mut def = CampaignDef::new(name, 1);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 129,
        seed: 3,
    });
    for i in 0..cells {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * (0.9 + 0.01 * i as f64),
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(trials),
        });
    }
    def
}

/// Runs `def` directly on a local engine over a fresh fast study.
fn direct_run(def: &CampaignDef) -> (CampaignSpec, CampaignResult) {
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let spec = def.instantiate().expect("instantiates");
    let result = CampaignEngine::new().run(&study, &spec);
    (spec, result)
}

/// The bytes the daemon retains for a finished job: the result document
/// plus every streamed cell frame payload.
fn retained_bytes(spec: &CampaignSpec, result: &CampaignResult) -> usize {
    result.to_json(spec).to_string().len()
        + result
            .cells
            .iter()
            .map(|cell| checkpoint::cell_to_json(cell).to_string().len())
            .sum::<usize>()
}

#[test]
fn daemon_results_are_bit_identical_to_direct_engine_runs() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let info = client.ping().expect("pong");
    assert_eq!(info.v, 1);
    assert!(!info.characterization_cache_hit, "no cache configured");
    assert_eq!(info.max_concurrent_jobs, 1);

    let def = two_cell_def(info.sta_limit_mhz);
    let ticket = client.submit(&def).expect("accepted");
    assert_eq!(ticket.total_cells, 2);
    assert_eq!(ticket.priority, Priority::Normal);

    // Stream the cells as they complete.
    let mut streamed = Vec::new();
    let state = client
        .stream(ticket.job, |cell| {
            streamed.push(checkpoint::cell_from_json(cell).expect("cell decodes"))
        })
        .expect("streams");
    assert_eq!(state, "done");
    assert_eq!(streamed.len(), 2);

    // The same campaign, run directly on an engine with the same spec.
    let (spec, direct) = direct_run(&def);

    streamed.sort_by_key(|cell| cell.cell);
    for (served, local) in streamed.iter().zip(&direct.cells) {
        assert_eq!(served.cell, local.cell);
        assert_eq!(served.trials.len(), local.trials.len());
        for (a, b) in served.trials.iter().zip(&local.trials) {
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.correct, b.correct);
            assert_eq!(a.output_error.to_bits(), b.output_error.to_bits());
            assert_eq!(
                a.fi_rate_per_kcycle.to_bits(),
                b.fi_rate_per_kcycle.to_bits()
            );
            assert_eq!(a.cycles, b.cycles);
        }
    }

    // The retained result document equals the direct engine's export.
    let doc = client.result(ticket.job).expect("result");
    assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());

    // Status agrees.
    let status = client.status(ticket.job).expect("status");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.priority, Priority::Normal);
    assert_eq!(status.client, "anonymous");
    assert_eq!(status.completed_cells, 2);
    assert_eq!(status.executed_trials, 12);
    assert_eq!(status.preemptions, 0);
    assert!(!status.evicted);

    client.shutdown().expect("bye");
    server.join();
}

#[test]
fn two_jobs_run_concurrently_with_bit_identical_results() {
    let server = Server::start(ServeConfig {
        max_concurrent_jobs: 2,
        threads: Some(2),
        ..ServeConfig::fast_for_tests()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let info = client.ping().expect("pong");
    assert_eq!(info.max_concurrent_jobs, 2);
    assert_eq!(info.threads_per_job, 1, "2 threads split across 2 slots");

    let sta = info.sta_limit_mhz;
    let def_a = long_def("concurrent-a", sta, 12, 10);
    let def_b = long_def("concurrent-b", sta, 12, 10);
    let a = client.submit(&def_a).expect("accepted");
    let b = client.submit(&def_b).expect("accepted");

    // Both jobs must be observed running at the same instant.
    let mut observed_concurrent = false;
    for _ in 0..500 {
        let sa = client.status(a.job).expect("status");
        let sb = client.status(b.job).expect("status");
        if sa.state == JobState::Running && sb.state == JobState::Running {
            observed_concurrent = true;
            break;
        }
        if sa.is_terminal() && sb.is_terminal() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        observed_concurrent,
        "with two scheduler slots both jobs must make progress concurrently"
    );

    assert_eq!(client.wait(a.job).expect("terminal").state, JobState::Done);
    assert_eq!(client.wait(b.job).expect("terminal").state, JobState::Done);

    // Each result is bit-identical to a direct single-job engine run.
    for (def, ticket) in [(&def_a, a), (&def_b, b)] {
        let (spec, direct) = direct_run(def);
        let doc = client.result(ticket.job).expect("result");
        assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());
    }

    server.shutdown();
}

#[test]
fn queued_quota_rejects_the_excess_submission_per_client() {
    let server = Server::start(ServeConfig {
        max_queued_per_client: Some(1),
        ..ServeConfig::fast_for_tests()
    })
    .expect("daemon starts");
    let mut alice = Client::connect(server.local_addr()).expect("connects");
    let mut bob = Client::connect(server.local_addr()).expect("connects");
    let sta = alice.ping().expect("pong").sta_limit_mhz;

    // Alice's first job occupies the single scheduler slot...
    let running = alice
        .submit_with(
            &long_def("alice-1", sta, 64, 50),
            Priority::Normal,
            Some("alice"),
        )
        .expect("accepted");
    // (wait until the scheduler actually moved it out of the queue, so
    // the quota below counts only genuinely queued jobs)
    while alice.status(running.job).expect("status").state == JobState::Queued {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // ...her second waits in the queue, saturating her queued quota...
    let queued = alice
        .submit_with(&two_cell_def(sta), Priority::Normal, Some("alice"))
        .expect("accepted");
    // ...so her third submission is rejected with the typed error.
    let err = alice
        .submit_with(&two_cell_def(sta), Priority::Normal, Some("alice"))
        .expect_err("quota exhausted");
    assert_eq!(err.code(), Some(ErrorCode::QuotaExceeded), "{err}");

    // Quotas are accounted per client id: bob still has his own slot...
    let bob_job = bob
        .submit_with(&two_cell_def(sta), Priority::Normal, Some("bob"))
        .expect("accepted");
    // ...and exactly one, like alice.
    let err = bob
        .submit_with(&two_cell_def(sta), Priority::Normal, Some("bob"))
        .expect_err("quota exhausted");
    assert_eq!(err.code(), Some(ErrorCode::QuotaExceeded), "{err}");

    // Cancelling the queued job frees alice's quota immediately.
    alice.cancel(queued.job).expect("cancels");
    alice
        .submit_with(&two_cell_def(sta), Priority::Normal, Some("alice"))
        .expect("quota freed");

    // Drain: cancel the long runner so the daemon shuts down promptly.
    alice.cancel(running.job).expect("cancels");
    let _ = alice.wait(running.job).expect("terminal");
    let _ = bob.wait(bob_job.job).expect("terminal");
    server.shutdown();
}

#[test]
fn high_priority_preempts_low_and_the_resumed_result_is_bit_identical() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // A long low-priority campaign, slow enough that the high-priority
    // job arrives mid-run.
    let low_def = long_def("preempt-victim", sta, 48, 30);
    let low = client
        .submit_with(&low_def, Priority::Low, Some("batch"))
        .expect("accepted");

    // Wait until it is actually running and has completed at least one
    // cell, so the preemption checkpoint is non-trivial.
    loop {
        let status = client.status(low.job).expect("status");
        if status.state == JobState::Running && status.completed_cells >= 1 {
            break;
        }
        assert!(
            !status.is_terminal(),
            "the low job must not finish before the high one is submitted"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The high-priority job takes the single slot away from it.
    let mut urgent_def = CampaignDef::new("urgent", 9);
    let crc = urgent_def.add_benchmark(BenchmarkDef::Crc32 { words: 16, seed: 3 });
    urgent_def.cells.push(CellDef {
        benchmark: crc,
        model: FaultModel::StatisticalDta,
        freq_mhz: sta * 1.05,
        vdd: 0.7,
        noise_sigma_mv: 10.0,
        budget: BudgetDef::fixed(4),
    });
    let high = client
        .submit_with(&urgent_def, Priority::High, Some("interactive"))
        .expect("accepted");
    let high_status = client.wait(high.job).expect("terminal");
    assert_eq!(high_status.state, JobState::Done);

    // While the high job ran, the low one was preempted back into the
    // queue; it resumes and completes.
    let low_status = client.wait(low.job).expect("terminal");
    assert_eq!(low_status.state, JobState::Done);
    assert!(
        low_status.preemptions >= 1,
        "the low job must have been preempted at least once, got {}",
        low_status.preemptions
    );
    assert_eq!(low_status.completed_cells, 48);

    // The preempted-and-resumed result is bit-identical to a direct,
    // never-interrupted engine run of the same spec.
    let (spec, direct) = direct_run(&low_def);
    let doc = client.result(low.job).expect("result");
    assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());

    // The stream replays every cell exactly once despite the preemption.
    let mut cells = Vec::new();
    let state = client
        .stream(low.job, |cell| {
            cells.push(checkpoint::cell_from_json(cell).expect("cell decodes").cell)
        })
        .expect("streams");
    assert_eq!(state, "done");
    let mut sorted = cells.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 48, "48 distinct cells");
    assert_eq!(cells.len(), 48, "no duplicates in the stream");

    server.shutdown();
}

#[test]
fn results_are_evicted_lru_once_the_cap_is_exceeded() {
    // Size the cap from a local run of the same campaign: it holds two
    // retained results but not three.
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let def = two_cell_def(study.sta_limit_mhz(0.7));
    let spec = def.instantiate().expect("instantiates");
    let local = CampaignEngine::new().run(&study, &spec);
    let single = retained_bytes(&spec, &local);
    let cap = single * 2 + single / 2;

    let server = Server::start(ServeConfig {
        result_cap_bytes: Some(cap),
        ..ServeConfig::fast_for_tests()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let submit_and_wait = |client: &mut Client| {
        let ticket = client.submit(&def).expect("accepted");
        let status = client.wait(ticket.job).expect("terminal");
        assert_eq!(status.state, JobState::Done);
        ticket.job
    };

    let job1 = submit_and_wait(&mut client);
    let job2 = submit_and_wait(&mut client);
    // Both fit under the cap; fetching job1 makes job2 the LRU entry.
    let doc1 = client.result(job1).expect("retained");
    assert_eq!(doc1.to_string(), local.to_json(&spec).to_string());
    let info = client.ping().expect("pong");
    assert_eq!(info.result_cap_bytes, Some(cap));
    assert_eq!(info.retained_result_bytes, single * 2);

    // The third finished job pushes the total over the cap: the
    // least-recently-fetched result (job2) is evicted.
    let job3 = submit_and_wait(&mut client);
    let err = client.result(job2).expect_err("evicted");
    assert_eq!(err.code(), Some(ErrorCode::ResultEvicted), "{err}");
    let err = client.stream(job2, |_| {}).expect_err("cells evicted too");
    assert_eq!(err.code(), Some(ErrorCode::ResultEvicted), "{err}");

    // The status survives eviction and reports it.
    let status = client.status(job2).expect("status");
    assert_eq!(status.state, JobState::Done);
    assert!(status.evicted);

    // The touched and the fresh results are still retrievable.
    assert!(client.result(job1).is_ok());
    assert!(client.result(job3).is_ok());
    assert_eq!(
        client.ping().expect("pong").retained_result_bytes,
        single * 2
    );

    server.shutdown();
}

#[test]
fn poff_query_brackets_the_sta_limit() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // Model B is a hard threshold at the STA limit — the daemon's answer
    // must bracket it to the requested resolution.
    let reply = client
        .poff(&PoffRequest {
            benchmark: BenchmarkDef::Median {
                values: 21,
                seed: 3,
            },
            model: FaultModel::StaPeriodViolation,
            vdd: 0.7,
            noise_sigma_mv: 0.0,
            lo_mhz: sta * 0.9,
            hi_mhz: sta * 1.3,
            resolution_mhz: sta * 0.01,
            trials: 2,
            seed: 9,
        })
        .expect("poff");
    let poff = reply.poff_mhz.expect("fails above the STA limit");
    assert!(
        poff > sta && poff <= sta * 1.011,
        "PoFF {poff:.1} MHz should bracket STA {sta:.1} MHz"
    );
    assert!(reply.cells_evaluated >= 3);
    assert!(!reply.evaluated.is_empty());

    // Uncharacterized voltages are rejected, not a daemon panic.
    let err = client
        .poff(&PoffRequest {
            benchmark: BenchmarkDef::Median {
                values: 21,
                seed: 3,
            },
            model: FaultModel::StaPeriodViolation,
            vdd: 0.95,
            noise_sigma_mv: 0.0,
            lo_mhz: 600.0,
            hi_mhz: 900.0,
            resolution_mhz: 10.0,
            trials: 2,
            seed: 9,
        })
        .expect_err("uncharacterized voltage");
    assert_eq!(err.code(), Some(ErrorCode::BadRequest), "{err}");

    // The same guard applies to submitted campaigns: a cell whose model
    // needs a characterization the daemon lacks is rejected at submit
    // time with a clean error instead of failing the job at run time.
    let mut def = two_cell_def(sta);
    def.cells[0].vdd = 0.95;
    let err = client.submit(&def).expect_err("uncharacterized cell vdd");
    assert_eq!(err.code(), Some(ErrorCode::BadRequest), "{err}");

    server.shutdown();
}

#[test]
fn jobs_can_be_cancelled() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // A long campaign: plenty of cells so cancellation lands mid-run.
    let def = long_def("cancelme", sta, 64, 50);
    let ticket = client.submit(&def).expect("accepted");
    client.cancel(ticket.job).expect("cancels");
    let status = client.wait(ticket.job).expect("terminal");
    assert_eq!(status.state, JobState::Cancelled);
    assert!(
        status.completed_cells < 64,
        "cancellation must cut the campaign short, got {} cells",
        status.completed_cells
    );

    // Streaming a cancelled job terminates with the cancelled state.
    let state = client.stream(ticket.job, |_| {}).expect("stream ends");
    assert_eq!(state, "cancelled");

    // A cancelled job retains no result document.
    let err = client.result(ticket.job).expect_err("no result");
    assert_eq!(err.code(), Some(ErrorCode::NoResult), "{err}");

    // Unknown jobs are typed server errors, not hangs.
    let err = client.status(9999).expect_err("unknown job");
    assert_eq!(err.code(), Some(ErrorCode::UnknownJob), "{err}");

    server.shutdown();
}

#[test]
fn malformed_requests_get_error_frames_and_the_connection_survives() {
    let server = start_fast_server();
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let roundtrip = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        use std::io::Write as _;
        writer.write_all(line.as_bytes()).expect("writes");
        writer.write_all(b"\n").expect("writes");
        writer.flush().expect("flushes");
        read_frame(reader)
            .expect("io ok")
            .expect("not eof")
            .expect("server frames always parse")
    };

    // Not JSON at all.
    let reply = roundtrip(&mut writer, &mut reader, "this is not json");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("bad_request")
    );

    // Valid JSON, unknown request type.
    let reply = roundtrip(&mut writer, &mut reader, "{\"type\":\"frobnicate\"}");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("bad_request")
    );

    // Valid type, bad payload.
    let reply = roundtrip(
        &mut writer,
        &mut reader,
        "{\"type\":\"submit\",\"spec\":{\"name\":\"x\"}}",
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // An out-of-vocabulary priority is rejected, not defaulted.
    let reply = roundtrip(
        &mut writer,
        &mut reader,
        "{\"type\":\"submit\",\"priority\":\"urgent\",\"spec\":{\"name\":\"x\",\"seed\":\"1\",\
         \"benchmarks\":[],\"cells\":[]}}",
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // The connection is still usable for a real request.
    write_frame(
        &mut writer,
        &Json::obj([("type", Json::Str("ping".into()))]),
    )
    .expect("writes");
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("pong"));
    assert_eq!(reply.get("v").and_then(Json::as_u64), Some(1));

    server.shutdown();
}

#[test]
fn warm_cache_restart_skips_the_dta_rebuild() {
    let cache_dir = temp_dir("warmcache");
    let config = ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::fast_for_tests()
    };

    // Cold start: computes and persists the characterization.
    let first = Server::start(config.clone()).expect("cold start");
    assert!(!first.cache_hit());
    let mut client = Client::connect(first.local_addr()).expect("connects");
    let cold_info = client.ping().expect("pong");
    assert!(!cold_info.characterization_cache_hit);
    client.shutdown().expect("bye");
    first.join();

    // Second daemon start with the same config: warm, and the physics is
    // identical.
    let second = Server::start(config).expect("warm start");
    assert!(second.cache_hit(), "second start must hit the cache");
    let mut client = Client::connect(second.local_addr()).expect("connects");
    let warm_info = client.ping().expect("pong");
    assert!(warm_info.characterization_cache_hit);
    assert_eq!(warm_info.sta_limit_mhz, cold_info.sta_limit_mhz);
    assert_eq!(warm_info.study_fingerprint, cold_info.study_fingerprint);

    // Warm-served campaign results equal a cold direct run.
    let def = two_cell_def(warm_info.sta_limit_mhz);
    let ticket = client.submit(&def).expect("accepted");
    let doc = {
        let state = client.stream(ticket.job, |_| {}).expect("streams");
        assert_eq!(state, "done");
        client.result(ticket.job).expect("result")
    };
    let (spec, direct) = direct_run(&def);
    assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());

    second.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let server = start_fast_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connects");
    client.shutdown().expect("bye");
    // join() returns because the accept loop and scheduler exited.
    server.join();
    // New connections are refused or die immediately — either way, no
    // daemon is left behind serving pings.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.ping().is_err(), "daemon must be gone after shutdown");
    }
}

#[test]
fn zoo_kernels_are_constructible_by_wire_recipe_and_exact_fault_free() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // The recipes exactly as a remote client would send them over the
    // wire (kind + parameters, decimal-string seeds).
    let recipes = [
        r#"{"kind":"fft","n":16,"seed":"3"}"#,
        r#"{"kind":"fir","taps":4,"outputs":16,"seed":"3"}"#,
        r#"{"kind":"crc32","words":16,"seed":"3"}"#,
        r#"{"kind":"bitonic","n":16,"seed":"3"}"#,
    ];
    let mut def = CampaignDef::new("zoo", 7);
    for recipe in recipes {
        let doc = Json::parse(recipe).expect("valid JSON");
        let b = def.add_benchmark(BenchmarkDef::from_json(&doc).expect("recipe decodes"));
        def.cells.push(CellDef {
            benchmark: b,
            model: FaultModel::None,
            freq_mhz: sta,
            vdd: 0.7,
            noise_sigma_mv: 0.0,
            budget: BudgetDef::fixed(2),
        });
    }
    let ticket = client.submit(&def).expect("accepted");
    let mut cells = Vec::new();
    let state = client
        .stream(ticket.job, |cell| {
            cells.push(checkpoint::cell_from_json(cell).expect("cell decodes"));
        })
        .expect("streams");
    assert_eq!(state, "done");
    assert_eq!(cells.len(), 4);
    for cell in &cells {
        assert_eq!(cell.trials.len(), 2);
        for trial in &cell.trials {
            assert!(trial.finished && trial.correct);
            assert_eq!(trial.output_error, 0.0, "fault-free nominal runs are exact");
        }
    }

    // An unknown recipe kind is rejected at submit time with an error
    // quoting the full supported set.
    use std::io::Write as _;
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let bad = "{\"type\":\"submit\",\"spec\":{\"name\":\"x\",\"seed\":\"1\",\
               \"benchmarks\":[{\"kind\":\"sha256\",\"seed\":\"1\"}],\"cells\":[]}}";
    writer.write_all(bad.as_bytes()).expect("writes");
    writer.write_all(b"\n").expect("writes");
    writer.flush().expect("flushes");
    let reply = read_frame(&mut reader)
        .expect("io ok")
        .expect("not eof")
        .expect("server frames always parse");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("bad_request")
    );
    let message = reply
        .get("message")
        .and_then(Json::as_str)
        .expect("error message");
    assert!(
        message.contains("unknown benchmark kind 'sha256'"),
        "{message}"
    );
    for kind in sfi_serve::wire::supported_kinds() {
        assert!(message.contains(kind), "{message} must list {kind}");
    }

    server.shutdown();
}
