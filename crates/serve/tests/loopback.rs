//! End-to-end loopback tests of the serve daemon: protocol round trips,
//! bit-identical results vs the direct engine, cancellation, malformed
//! requests, warm characterization-cache restarts and graceful shutdown.

use sfi_campaign::{checkpoint, CampaignEngine};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_core::FaultModel;
use sfi_serve::client::Client;
use sfi_serve::protocol::{read_frame, write_frame, PoffRequest};
use sfi_serve::server::{ServeConfig, Server};
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfi_serve_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_fast_server() -> Server {
    Server::start(ServeConfig::fast_for_tests()).expect("daemon starts")
}

/// A 2-cell median campaign straddling the failure transition.
fn two_cell_def(sta: f64) -> CampaignDef {
    let mut def = CampaignDef::new("loopback", 42);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 21,
        seed: 3,
    });
    for overscale in [0.95, 1.25] {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * overscale,
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(6),
        });
    }
    def
}

#[test]
fn daemon_results_are_bit_identical_to_direct_engine_runs() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let info = client.ping().expect("pong");
    assert_eq!(info.protocol, 1);
    assert!(!info.characterization_cache_hit, "no cache configured");

    let def = two_cell_def(info.sta_limit_mhz);
    let ticket = client.submit(&def).expect("accepted");
    assert_eq!(ticket.total_cells, 2);

    // Stream the cells as they complete.
    let mut streamed = Vec::new();
    let state = client
        .stream(ticket.job, |cell| {
            streamed.push(checkpoint::cell_from_json(cell).expect("cell decodes"))
        })
        .expect("streams");
    assert_eq!(state, "done");
    assert_eq!(streamed.len(), 2);

    // The same campaign, run directly on an engine with the same spec.
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let spec = def.instantiate().expect("instantiates");
    let direct = CampaignEngine::new().run(&study, &spec);

    streamed.sort_by_key(|cell| cell.cell);
    for (served, local) in streamed.iter().zip(&direct.cells) {
        assert_eq!(served.cell, local.cell);
        assert_eq!(served.trials.len(), local.trials.len());
        for (a, b) in served.trials.iter().zip(&local.trials) {
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.correct, b.correct);
            assert_eq!(a.output_error.to_bits(), b.output_error.to_bits());
            assert_eq!(
                a.fi_rate_per_kcycle.to_bits(),
                b.fi_rate_per_kcycle.to_bits()
            );
            assert_eq!(a.cycles, b.cycles);
        }
    }

    // The retained result document equals the direct engine's export.
    let doc = client.result(ticket.job).expect("result");
    assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());

    // Status agrees.
    let status = client.status(ticket.job).expect("status");
    assert_eq!(status.state, "done");
    assert_eq!(status.completed_cells, 2);
    assert_eq!(status.executed_trials, 12);

    client.shutdown().expect("bye");
    server.join();
}

#[test]
fn poff_query_brackets_the_sta_limit() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // Model B is a hard threshold at the STA limit — the daemon's answer
    // must bracket it to the requested resolution.
    let reply = client
        .poff(&PoffRequest {
            benchmark: BenchmarkDef::Median {
                values: 21,
                seed: 3,
            },
            model: FaultModel::StaPeriodViolation,
            vdd: 0.7,
            noise_sigma_mv: 0.0,
            lo_mhz: sta * 0.9,
            hi_mhz: sta * 1.3,
            resolution_mhz: sta * 0.01,
            trials: 2,
            seed: 9,
        })
        .expect("poff");
    let poff = reply.poff_mhz.expect("fails above the STA limit");
    assert!(
        poff > sta && poff <= sta * 1.011,
        "PoFF {poff:.1} MHz should bracket STA {sta:.1} MHz"
    );
    assert!(reply.cells_evaluated >= 3);
    assert!(!reply.evaluated.is_empty());

    // Uncharacterized voltages are rejected, not a daemon panic.
    let err = client
        .poff(&PoffRequest {
            benchmark: BenchmarkDef::Median {
                values: 21,
                seed: 3,
            },
            model: FaultModel::StaPeriodViolation,
            vdd: 0.95,
            noise_sigma_mv: 0.0,
            lo_mhz: 600.0,
            hi_mhz: 900.0,
            resolution_mhz: 10.0,
            trials: 2,
            seed: 9,
        })
        .expect_err("uncharacterized voltage");
    assert!(matches!(err, sfi_serve::client::ClientError::Server(_)));

    // The same guard applies to submitted campaigns: a cell whose model
    // needs a characterization the daemon lacks is rejected at submit
    // time with a clean error instead of failing the job at run time.
    let mut def = two_cell_def(sta);
    def.cells[0].vdd = 0.95;
    let err = client.submit(&def).expect_err("uncharacterized cell vdd");
    assert!(matches!(err, sfi_serve::client::ClientError::Server(_)));

    server.shutdown();
}

#[test]
fn jobs_can_be_cancelled() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // A long campaign: plenty of cells so cancellation lands mid-run.
    let mut def = CampaignDef::new("cancelme", 1);
    let median = def.add_benchmark(BenchmarkDef::Median {
        values: 129,
        seed: 3,
    });
    for i in 0..64 {
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: sta * (0.9 + 0.01 * i as f64),
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(50),
        });
    }
    let ticket = client.submit(&def).expect("accepted");
    client.cancel(ticket.job).expect("cancels");
    let status = client.wait(ticket.job).expect("terminal");
    assert_eq!(status.state, "cancelled");
    assert!(
        status.completed_cells < 64,
        "cancellation must cut the campaign short, got {} cells",
        status.completed_cells
    );

    // Streaming a cancelled job terminates with the cancelled state.
    let state = client.stream(ticket.job, |_| {}).expect("stream ends");
    assert_eq!(state, "cancelled");

    // A cancelled job retains no result document.
    assert!(matches!(
        client.result(ticket.job),
        Err(sfi_serve::client::ClientError::Server(_))
    ));

    // Unknown jobs are server errors, not hangs.
    assert!(matches!(
        client.status(9999),
        Err(sfi_serve::client::ClientError::Server(_))
    ));

    server.shutdown();
}

#[test]
fn malformed_requests_get_error_frames_and_the_connection_survives() {
    let server = start_fast_server();
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let roundtrip = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        use std::io::Write as _;
        writer.write_all(line.as_bytes()).expect("writes");
        writer.write_all(b"\n").expect("writes");
        writer.flush().expect("flushes");
        read_frame(reader)
            .expect("io ok")
            .expect("not eof")
            .expect("server frames always parse")
    };

    // Not JSON at all.
    let reply = roundtrip(&mut writer, &mut reader, "this is not json");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // Valid JSON, unknown request type.
    let reply = roundtrip(&mut writer, &mut reader, "{\"type\":\"frobnicate\"}");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // Valid type, bad payload.
    let reply = roundtrip(
        &mut writer,
        &mut reader,
        "{\"type\":\"submit\",\"spec\":{\"name\":\"x\"}}",
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // The connection is still usable for a real request.
    write_frame(
        &mut writer,
        &Json::obj([("type", Json::Str("ping".into()))]),
    )
    .expect("writes");
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("pong"));

    server.shutdown();
}

#[test]
fn warm_cache_restart_skips_the_dta_rebuild() {
    let cache_dir = temp_dir("warmcache");
    let config = ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::fast_for_tests()
    };

    // Cold start: computes and persists the characterization.
    let first = Server::start(config.clone()).expect("cold start");
    assert!(!first.cache_hit());
    let mut client = Client::connect(first.local_addr()).expect("connects");
    let cold_info = client.ping().expect("pong");
    assert!(!cold_info.characterization_cache_hit);
    client.shutdown().expect("bye");
    first.join();

    // Second daemon start with the same config: warm, and the physics is
    // identical.
    let second = Server::start(config).expect("warm start");
    assert!(second.cache_hit(), "second start must hit the cache");
    let mut client = Client::connect(second.local_addr()).expect("connects");
    let warm_info = client.ping().expect("pong");
    assert!(warm_info.characterization_cache_hit);
    assert_eq!(warm_info.sta_limit_mhz, cold_info.sta_limit_mhz);
    assert_eq!(warm_info.study_fingerprint, cold_info.study_fingerprint);

    // Warm-served campaign results equal a cold direct run.
    let def = two_cell_def(warm_info.sta_limit_mhz);
    let ticket = client.submit(&def).expect("accepted");
    let doc = {
        let state = client.stream(ticket.job, |_| {}).expect("streams");
        assert_eq!(state, "done");
        client.result(ticket.job).expect("result")
    };
    let study = CaseStudy::build(CaseStudyConfig::fast_for_tests());
    let spec = def.instantiate().expect("instantiates");
    let direct = CampaignEngine::new().run(&study, &spec);
    assert_eq!(doc.to_string(), direct.to_json(&spec).to_string());

    second.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let server = start_fast_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connects");
    client.shutdown().expect("bye");
    // join() returns because the accept loop and scheduler exited.
    server.join();
    // New connections are refused or die immediately — either way, no
    // daemon is left behind serving pings.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.ping().is_err(), "daemon must be gone after shutdown");
    }
}

#[test]
fn zoo_kernels_are_constructible_by_wire_recipe_and_exact_fault_free() {
    let server = start_fast_server();
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let sta = client.ping().expect("pong").sta_limit_mhz;

    // The recipes exactly as a remote client would send them over the
    // wire (kind + parameters, decimal-string seeds).
    let recipes = [
        r#"{"kind":"fft","n":16,"seed":"3"}"#,
        r#"{"kind":"fir","taps":4,"outputs":16,"seed":"3"}"#,
        r#"{"kind":"crc32","words":16,"seed":"3"}"#,
        r#"{"kind":"bitonic","n":16,"seed":"3"}"#,
    ];
    let mut def = CampaignDef::new("zoo", 7);
    for recipe in recipes {
        let doc = Json::parse(recipe).expect("valid JSON");
        let b = def.add_benchmark(BenchmarkDef::from_json(&doc).expect("recipe decodes"));
        def.cells.push(CellDef {
            benchmark: b,
            model: FaultModel::None,
            freq_mhz: sta,
            vdd: 0.7,
            noise_sigma_mv: 0.0,
            budget: BudgetDef::fixed(2),
        });
    }
    let ticket = client.submit(&def).expect("accepted");
    let mut cells = Vec::new();
    let state = client
        .stream(ticket.job, |cell| {
            cells.push(checkpoint::cell_from_json(cell).expect("cell decodes"));
        })
        .expect("streams");
    assert_eq!(state, "done");
    assert_eq!(cells.len(), 4);
    for cell in &cells {
        assert_eq!(cell.trials.len(), 2);
        for trial in &cell.trials {
            assert!(trial.finished && trial.correct);
            assert_eq!(trial.output_error, 0.0, "fault-free nominal runs are exact");
        }
    }

    // An unknown recipe kind is rejected at submit time with an error
    // quoting the full supported set.
    use std::io::Write as _;
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let bad = "{\"type\":\"submit\",\"spec\":{\"name\":\"x\",\"seed\":\"1\",\
               \"benchmarks\":[{\"kind\":\"sha256\",\"seed\":\"1\"}],\"cells\":[]}}";
    writer.write_all(bad.as_bytes()).expect("writes");
    writer.write_all(b"\n").expect("writes");
    writer.flush().expect("flushes");
    let reply = read_frame(&mut reader)
        .expect("io ok")
        .expect("not eof")
        .expect("server frames always parse");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));
    let message = reply
        .get("message")
        .and_then(Json::as_str)
        .expect("error message");
    assert!(
        message.contains("unknown benchmark kind 'sha256'"),
        "{message}"
    );
    for kind in sfi_serve::wire::supported_kinds() {
        assert!(message.contains(kind), "{message} must list {kind}");
    }

    server.shutdown();
}
