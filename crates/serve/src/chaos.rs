//! A fault-injecting TCP proxy for robustness tests.
//!
//! [`ChaosProxy`] sits between a client and the daemon and forwards
//! bytes both ways while injecting faults from a [`FaultPlan`]: fixed
//! per-chunk delays, a one-shot mid-stream disconnect after a byte
//! offset, and one-shot byte corruption at an offset.  The disconnect
//! and corruption are *one-shot across the proxy's lifetime*: the first
//! connection to reach the offset takes the fault, later connections
//! forward cleanly — exactly the shape a retrying client must survive.
//!
//! The proxy is deterministic (no randomness, no clocks beyond the
//! configured delay), so chaos tests assert exact outcomes instead of
//! flakiness statistics.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The faults one [`ChaosProxy`] injects into client→server traffic.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sleep this long before forwarding each client→server chunk.
    pub delay: Option<Duration>,
    /// Close the connection (both directions) after forwarding this many
    /// client→server bytes — a mid-frame disconnect when the offset lands
    /// inside a frame.  One-shot: only the first connection to reach the
    /// offset is cut.
    pub cut_after: Option<usize>,
    /// XOR `0x20` into the client→server byte at this stream offset,
    /// corrupting one frame in flight.  One-shot, like `cut_after`.
    pub corrupt_at: Option<usize>,
}

struct Shared {
    plan: FaultPlan,
    cut_taken: AtomicBool,
    corrupt_taken: AtomicBool,
    stop: AtomicBool,
}

/// A running proxy: accepts on an ephemeral local port and forwards to
/// the upstream address, faults included.  Dropping it stops the accept
/// loop; in-flight pump threads exit when either side closes.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            plan,
            cut_taken: AtomicBool::new(false),
            corrupt_taken: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let accept = {
            let shared = shared.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(client) = stream else { continue };
                    let Ok(server) = TcpStream::connect(upstream) else {
                        continue;
                    };
                    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone())
                    else {
                        continue;
                    };
                    let shared = shared.clone();
                    thread::spawn(move || pump_with_faults(client_r, server, &shared));
                    thread::spawn(move || pump_clean(server_r, client));
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the one-shot disconnect fault has fired.
    pub fn cut_taken(&self) -> bool {
        self.shared.cut_taken.load(Ordering::SeqCst)
    }

    /// Whether the one-shot corruption fault has fired.
    pub fn corrupt_taken(&self) -> bool {
        self.shared.corrupt_taken.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Forwards client→server chunks, applying the fault plan.
fn pump_with_faults(mut from: TcpStream, mut to: TcpStream, shared: &Shared) {
    let mut offset = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        if let Some(delay) = shared.plan.delay {
            thread::sleep(delay);
        }
        if let Some(at) = shared.plan.corrupt_at {
            if offset <= at && at < offset + n && !shared.corrupt_taken.swap(true, Ordering::SeqCst)
            {
                chunk[at - offset] ^= 0x20;
            }
        }
        if let Some(at) = shared.plan.cut_after {
            if offset + n >= at && !shared.cut_taken.swap(true, Ordering::SeqCst) {
                // Forward the prefix up to the cut offset, then drop the
                // connection on the floor mid-frame.
                let keep = at.saturating_sub(offset).min(n);
                let _ = to.write_all(&chunk[..keep]);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        offset += n;
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Forwards server→client chunks untouched.
fn pump_clean(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            // Serve exactly one connection, then exit.
            if let Some(stream) = listener.incoming().flatten().next() {
                let mut read = stream.try_clone().expect("clones");
                let mut write = stream;
                let mut buf = [0u8; 4096];
                loop {
                    match read.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if write.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn a_clean_plan_forwards_bytes_unchanged() {
        let (upstream, server) = echo_server();
        let proxy = ChaosProxy::start(upstream, FaultPlan::default()).expect("starts");
        let mut stream = TcpStream::connect(proxy.local_addr()).expect("connects");
        stream.write_all(b"hello journal\n").expect("writes");
        let mut reply = [0u8; 14];
        stream.read_exact(&mut reply).expect("reads");
        assert_eq!(&reply, b"hello journal\n");
        drop(stream);
        server.join().expect("echo exits");
    }

    #[test]
    fn corruption_flips_exactly_one_byte_once() {
        let (upstream, server) = echo_server();
        let plan = FaultPlan {
            corrupt_at: Some(1),
            ..FaultPlan::default()
        };
        let proxy = ChaosProxy::start(upstream, plan).expect("starts");
        let mut stream = TcpStream::connect(proxy.local_addr()).expect("connects");
        stream.write_all(b"abcd").expect("writes");
        let mut reply = [0u8; 4];
        stream.read_exact(&mut reply).expect("reads");
        assert_eq!(&reply, b"aBcd", "byte 1 XOR 0x20 flips case");
        assert!(proxy.corrupt_taken());
        drop(stream);
        server.join().expect("echo exits");
    }

    #[test]
    fn the_cut_drops_the_connection_mid_stream() {
        let (upstream, server) = echo_server();
        let plan = FaultPlan {
            cut_after: Some(2),
            ..FaultPlan::default()
        };
        let proxy = ChaosProxy::start(upstream, plan).expect("starts");
        let mut stream = TcpStream::connect(proxy.local_addr()).expect("connects");
        stream
            .write_all(b"abcdef")
            .expect("the local write buffers");
        let mut reply = Vec::new();
        let n = stream.read_to_end(&mut reply).unwrap_or(0);
        assert!(
            n <= 2,
            "at most the pre-cut prefix echoes back, got {reply:?}"
        );
        assert!(proxy.cut_taken());
        drop(stream);
        server.join().expect("echo exits");
    }
}
