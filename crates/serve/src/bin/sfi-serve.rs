//! The campaign daemon binary.
//!
//! Builds (or cache-restores) the characterized case study, then serves
//! campaign queries over TCP until a client sends `shutdown`.

use sfi_core::study::CaseStudyConfig;
use sfi_serve::server::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage: sfi-serve [options]

options:
  --addr HOST:PORT      listen address (default 127.0.0.1:7433; port 0 = ephemeral)
  --fast                serve the scaled-down 8-bit case study instead of the paper's 32-bit one
  --threads N           campaign engine worker threads (0 or omitted = all CPUs)
  --cache-dir DIR       persistent characterization cache (restarts skip the DTA rebuild)
  --checkpoint-dir DIR  per-job campaign checkpoints (identical re-submissions resume)
  --help                print this help
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sfi-serve: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| fail(format!("{flag} needs a value")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => config.addr = value(&mut i, "--addr"),
            "--fast" => {
                config.study = CaseStudyConfig {
                    voltages: vec![0.7, 0.8],
                    ..CaseStudyConfig::fast_for_tests()
                }
            }
            "--threads" => {
                let n: usize = value(&mut i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads needs an unsigned integer"));
                // 0 means "auto" (all CPUs), like the figure binaries.
                config.threads = (n > 0).then_some(n);
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value(&mut i, "--cache-dir"))),
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(PathBuf::from(value(&mut i, "--checkpoint-dir")))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    match Server::start(config) {
        Ok(server) => server.join(),
        Err(err) => {
            eprintln!("sfi-serve: failed to start: {err}");
            exit(1);
        }
    }
}
