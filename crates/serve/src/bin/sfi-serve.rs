//! The campaign daemon binary.
//!
//! Builds (or cache-restores) the characterized case study, then serves
//! campaign queries over TCP until a client sends `shutdown`.

use sfi_core::study::CaseStudyConfig;
use sfi_serve::server::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage: sfi-serve [options]

options:
  --addr HOST:PORT           listen address (default 127.0.0.1:7433; port 0 = ephemeral)
  --fast                     serve the scaled-down 8-bit case study instead of the paper's
                             32-bit one
  --threads N                global engine worker-thread budget shared by all running jobs
                             (0 or omitted = all CPUs)
  --max-concurrent-jobs N    jobs the scheduler runs at once, each on an equal share of the
                             thread budget (default 1)
  --max-queued-per-client N  per-client queued-jobs quota; excess submits are rejected with
                             a quota_exceeded error (0 or omitted = unlimited)
  --max-running-per-client N per-client running-jobs quota; excess jobs wait in the queue
                             (0 or omitted = unlimited)
  --result-cap-bytes N       byte cap on retained result JSON; least-recently-fetched
                             results are evicted above it and report result_evicted
                             (0 or omitted = retain everything until shutdown)
  --cache-dir DIR            persistent characterization cache (restarts skip the DTA
                             rebuild)
  --checkpoint-dir DIR       per-job campaign checkpoints (identical re-submissions resume)
  --state-dir DIR            durable job journal: every transition is fsync'd here, and a
                             restarted daemon replays it — queued jobs come back queued,
                             interrupted jobs resume from their completed cells with
                             bit-identical results
  --drain-timeout S          seconds a 'drain' waits for running jobs before cancelling
                             them and exiting anyway (default 30)
  --conn-timeout S           per-connection read/write deadline in seconds; silent peers
                             are disconnected past it (default 300; 0 = no deadline)
  --max-connections N        cap on concurrently served connections; excess connections
                             get one quota_exceeded error frame and are closed
                             (0 or omitted = unlimited)
  --drain-on-stdin           begin a drain when stdin reaches EOF — lets a supervisor
                             trigger graceful shutdown by closing the daemon's stdin
  --metrics-addr HOST:PORT   serve the Prometheus text exposition on this address (the
                             'metrics' wire frame works without it; port 0 = ephemeral)
  --event-buffer N           capacity of the structured-event ring buffer (default 1024;
                             overflow drops the oldest events and counts them)
  --alert-queue-depth N      queue-depth level (total queued jobs) above which the
                             scheduler_queue_saturated alert arms (default 8)
  --alert-hold-seconds S     seconds the queue must stay saturated before the alert fires
                             (default 5; 0 = fire on the first saturated evaluation)
  --alert-drop-rate R        event-ring drop rate (events/second) above which the
                             event_ring_dropping alert fires (default 0 = any drops)
  --help                     print this help

Scheduling: submitted jobs carry a priority class (low/normal/high); dispatch is strict
priority order, FIFO within a class, and a queued job may cooperatively preempt a running
lower-priority one (the preempted job resumes bit-identically from its completed cells).
The wire protocol is documented in docs/PROTOCOL.md.
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sfi-serve: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

/// Parses the next argument as a finite non-negative float (alert
/// thresholds and hold durations).
fn nonnegative(argv: &[String], i: &mut usize, flag: &str) -> f64 {
    *i += 1;
    argv.get(*i)
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .unwrap_or_else(|| fail(format!("{flag} needs a non-negative number")))
}

fn main() {
    let mut config = ServeConfig::default();
    let mut drain_on_stdin = false;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| fail(format!("{flag} needs a value")))
    };
    let unsigned = |i: &mut usize, flag: &str| -> usize {
        value(i, flag)
            .parse()
            .unwrap_or_else(|_| fail(format!("{flag} needs an unsigned integer")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => config.addr = value(&mut i, "--addr"),
            "--fast" => {
                config.study = CaseStudyConfig {
                    voltages: vec![0.7, 0.8],
                    ..CaseStudyConfig::fast_for_tests()
                }
            }
            "--threads" => {
                // 0 means "auto" (all CPUs), like the figure binaries.
                let n = unsigned(&mut i, "--threads");
                config.threads = (n > 0).then_some(n);
            }
            "--max-concurrent-jobs" => {
                let n = unsigned(&mut i, "--max-concurrent-jobs");
                if n == 0 {
                    fail("--max-concurrent-jobs must be at least 1");
                }
                config.max_concurrent_jobs = n;
            }
            "--max-queued-per-client" => {
                let n = unsigned(&mut i, "--max-queued-per-client");
                config.max_queued_per_client = (n > 0).then_some(n);
            }
            "--max-running-per-client" => {
                let n = unsigned(&mut i, "--max-running-per-client");
                config.max_running_per_client = (n > 0).then_some(n);
            }
            "--result-cap-bytes" => {
                let n = unsigned(&mut i, "--result-cap-bytes");
                config.result_cap_bytes = (n > 0).then_some(n);
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value(&mut i, "--cache-dir"))),
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(PathBuf::from(value(&mut i, "--checkpoint-dir")))
            }
            "--state-dir" => config.state_dir = Some(PathBuf::from(value(&mut i, "--state-dir"))),
            "--drain-timeout" => {
                config.drain_timeout_seconds = nonnegative(&argv, &mut i, "--drain-timeout")
            }
            "--conn-timeout" => {
                config.conn_timeout_seconds = nonnegative(&argv, &mut i, "--conn-timeout")
            }
            "--max-connections" => {
                let n = unsigned(&mut i, "--max-connections");
                config.max_connections = (n > 0).then_some(n);
            }
            "--drain-on-stdin" => drain_on_stdin = true,
            "--metrics-addr" => config.metrics_addr = Some(value(&mut i, "--metrics-addr")),
            "--event-buffer" => {
                let n = unsigned(&mut i, "--event-buffer");
                if n == 0 {
                    fail("--event-buffer must be at least 1");
                }
                config.event_buffer = Some(n);
            }
            "--alert-queue-depth" => {
                config.alert_queue_depth = nonnegative(&argv, &mut i, "--alert-queue-depth")
            }
            "--alert-hold-seconds" => {
                config.alert_hold_seconds = nonnegative(&argv, &mut i, "--alert-hold-seconds")
            }
            "--alert-drop-rate" => {
                config.alert_drop_rate = nonnegative(&argv, &mut i, "--alert-drop-rate")
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    match Server::start(config) {
        Ok(server) => {
            if drain_on_stdin {
                // The workspace is unsafe-free, so there is no SIGTERM
                // handler; supervisors that want a graceful stop keep the
                // daemon's stdin open and close it to trigger a drain
                // (delivered through the daemon's own wire protocol).
                let addr = server.local_addr();
                std::thread::spawn(move || {
                    let mut sink = Vec::new();
                    let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
                    if let Ok(mut client) = sfi_serve::client::Client::connect(addr) {
                        let _ = client.drain();
                    }
                });
            }
            server.join()
        }
        Err(err) => {
            eprintln!("sfi-serve: failed to start: {err}");
            exit(1);
        }
    }
}
