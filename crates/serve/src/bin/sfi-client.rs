//! Command-line client for the campaign daemon.
//!
//! One subcommand per protocol request, plus `demo` (submit a small
//! builtin campaign and stream its results — handy for smoke tests).

use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_serve::asm_submit::{
    campaign_from_asm, findings_with_lines, is_verification_detail, AsmCellParams,
};
use sfi_serve::client::Client;
use sfi_serve::jobs::Priority;
use sfi_serve::protocol::PoffRequest;
use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use std::process::exit;

const USAGE: &str = "\
usage: sfi-client [--addr HOST:PORT] COMMAND [args]

commands:
  ping                  print server info (STA limit, cache status, scheduler slots,
                        quotas, retained result bytes)
  submit FILE           submit a campaign definition (JSON, see docs/PROTOCOL.md) and
                        print the job id; a FILE ending in .s is assembled into a
                        one-cell 'program' campaign first (see docs/ASM.md), and a
                        verification rejection is mapped back to source lines
      [--priority low|normal|high]   scheduling class (default normal; high may preempt)
      [--client ID]                  client id the per-client quotas are accounted against
      [--key KEY]                    idempotency key: resubmitting the same (client, key)
                                     returns the original job instead of a duplicate
                        flags for .s submissions only:
      [--freq MHZ]                   cell clock (default 0.95 × the server's STA limit)
      [--vdd V]                      supply voltage (default 0.7)
      [--noise MV]                   voltage-noise sigma in mV (default 0)
      [--model b|b+|c]               fault model (default c, statistical DTA)
      [--trials N]                   Monte-Carlo trials of the cell (default 20)
      [--seed S]                     campaign + program seed (default 1)
      [--dmem N]                     data-memory words when FILE has no .dmem (default 4096)
      [--name NAME]                  campaign name (default: the file stem)
  demo                  submit a small builtin median campaign, stream it, print a summary
  status JOB            print one job-status line (state, priority, progress, preemptions)
  stream JOB            stream a job's cells as JSON lines to stdout
  result JOB            print a finished job's full result document
  cancel JOB            cancel a queued or running job
  metrics               print a snapshot of the daemon's metrics registry (engine,
                        scheduler and ISS counters, gauges and latency histograms)
  events                print recent structured events, oldest first, as JSON lines
      [--limit N]                    at most N events (default 100)
      [--job JOB]                    only events tagged with this job id
  trace                 print recent trace records (spans and utilization counters),
                        oldest first, as JSON lines
      [--limit N]                    at most N records (default 1000)
      [--job JOB]                    only records tagged with this job id
      [--chrome FILE]                write a Chrome trace-event file instead (load it
                                     in chrome://tracing or ui.perfetto.dev)
  alerts                evaluate the daemon's alert rules and print one status line
                        per rule (firing state, observed value vs threshold)
  poff KERNEL LO HI     bisect the point of first failure of a builtin kernel
                        (KERNEL: median | matmul8 | matmul16 | kmeans | dijkstra
                                 | fft | fir | crc32 | bitonic)
      [--vdd V] [--noise MV] [--resolution MHZ] [--trials N] [--seed S] [--model b|b+|c]
  drain                 stop the daemon gracefully: refuse new submits (typed 'draining'
                        error), let running jobs finish within the daemon's
                        --drain-timeout, journal queued jobs for a restart, then exit
  shutdown              stop the daemon immediately (running jobs are cancelled at the
                        next trial boundary; with --state-dir their cells are journaled)

default address: 127.0.0.1:7433
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sfi-client: {message}");
    exit(1);
}

fn usage_fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sfi-client: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_job(arg: Option<&String>) -> u64 {
    arg.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage_fail("expected a numeric job id"))
}

fn builtin_kernel(name: &str) -> BenchmarkDef {
    match name {
        "median" => BenchmarkDef::Median {
            values: 129,
            seed: 3,
        },
        "matmul8" => BenchmarkDef::MatMul {
            n: 16,
            element_bits: 8,
            seed: 3,
        },
        "matmul16" => BenchmarkDef::MatMul {
            n: 16,
            element_bits: 16,
            seed: 3,
        },
        "kmeans" => BenchmarkDef::KMeans {
            points: 8,
            clusters: 2,
            iterations: 12,
            seed: 3,
        },
        "dijkstra" => BenchmarkDef::Dijkstra { nodes: 10, seed: 3 },
        "fft" => BenchmarkDef::Fft { n: 64, seed: 3 },
        "fir" => BenchmarkDef::Fir {
            taps: 16,
            outputs: 64,
            seed: 3,
        },
        "crc32" => BenchmarkDef::Crc32 {
            words: 128,
            seed: 3,
        },
        "bitonic" => BenchmarkDef::Bitonic { n: 64, seed: 3 },
        other => usage_fail(format!(
            "unknown kernel '{other}' (supported: median, matmul8, matmul16, \
             kmeans, dijkstra, fft, fir, crc32, bitonic)"
        )),
    }
}

fn print_status(status: &sfi_serve::jobs::JobStatus) {
    println!(
        "job {} {} [{}, client {}] ({}/{} cells, {} trials{}{}{})",
        status.job,
        status.state.as_str(),
        status.priority.as_str(),
        status.client,
        status.completed_cells,
        status.total_cells,
        status.executed_trials,
        if status.preemptions > 0 {
            format!(", {} preemption(s)", status.preemptions)
        } else {
            String::new()
        },
        if status.evicted {
            ", result evicted"
        } else {
            ""
        },
        status
            .error
            .as_deref()
            .map(|e| format!(", error: {e}"))
            .unwrap_or_default()
    );
}

/// Pretty-prints a metrics snapshot document (`{"families": [...]}`): one
/// line per sample, histograms as count/sum plus their cumulative buckets.
fn print_metrics(snapshot: &Json) {
    let empty = Vec::new();
    let families = snapshot
        .get("families")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for family in families {
        let name = family.get("name").and_then(Json::as_str).unwrap_or("?");
        let kind = family.get("kind").and_then(Json::as_str).unwrap_or("?");
        let samples = family
            .get("samples")
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        for sample in samples {
            let labels = match sample.get("labels") {
                Some(Json::Obj(map)) if !map.is_empty() => {
                    let pairs: Vec<String> = map
                        .iter()
                        .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                        .collect();
                    format!("{{{}}}", pairs.join(","))
                }
                _ => String::new(),
            };
            match kind {
                "histogram" => {
                    let value = sample.get("value");
                    let count = value
                        .and_then(|v| v.get("count"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    let sum = value
                        .and_then(|v| v.get("sum"))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0);
                    println!("{name}{labels}  count {count}, sum {sum:.6}");
                    let buckets = value
                        .and_then(|v| v.get("buckets"))
                        .and_then(Json::as_arr)
                        .unwrap_or(&empty);
                    for bucket in buckets {
                        println!(
                            "  le {:>8}  {}",
                            bucket.get("le").and_then(Json::as_str).unwrap_or("?"),
                            bucket.get("count").and_then(Json::as_u64).unwrap_or(0),
                        );
                    }
                }
                _ => {
                    let value = match sample.get("value") {
                        Some(Json::Str(s)) => s.clone(),
                        Some(Json::Num(n)) => format!("{n}"),
                        _ => "?".into(),
                    };
                    println!("{name}{labels}  {value}");
                }
            }
        }
    }
}

/// Converts one wire trace record (`trace` frame `spans` entry) to a
/// Chrome trace-event object: decimal-string timestamps become numbers,
/// `ts_us`/`dur_us` become `ts`/`dur`, and span ids join the args.
fn chrome_event_from_wire(record: &Json) -> Option<Json> {
    let ph = record.get("ph").and_then(Json::as_str)?;
    let name = record.get("name").and_then(Json::as_str).unwrap_or("?");
    let tid = record.get("tid").and_then(Json::as_u64).unwrap_or(0);
    let ts = record.get("ts_us").and_then(Json::as_u64).unwrap_or(0);
    let mut pairs = vec![
        ("name", Json::Str(name.into())),
        ("ph", Json::Str(ph.into())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(tid as f64)),
        ("ts", Json::Num(ts as f64)),
    ];
    let mut args: Vec<(String, Json)> = Vec::new();
    match ph {
        "X" => {
            let cat = record.get("cat").and_then(Json::as_str).unwrap_or("span");
            pairs.push(("cat", Json::Str(cat.into())));
            let dur = record.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
            pairs.push(("dur", Json::Num(dur as f64)));
            for key in ["id", "parent", "job"] {
                if let Some(v) = record.get(key).and_then(Json::as_u64) {
                    args.push((key.to_string(), Json::Num(v as f64)));
                }
            }
            if let Some(Json::Obj(map)) = record.get("args") {
                for (key, value) in map {
                    // Wire u64s travel as decimal strings; numbers read
                    // better in the trace viewer's args pane.
                    let decoded = match value.as_u64() {
                        Some(n) => Json::Num(n as f64),
                        None => value.clone(),
                    };
                    args.push((key.clone(), decoded));
                }
            }
        }
        "C" => {
            if let Some(Json::Obj(map)) = record.get("series") {
                for (key, value) in map {
                    args.push((key.clone(), value.clone()));
                }
            }
        }
        _ => return None,
    }
    pairs.push((
        "args",
        Json::Obj(
            args.into_iter()
                .collect::<std::collections::BTreeMap<_, _>>(),
        ),
    ));
    Some(Json::obj(pairs))
}

/// Renders wire trace records as a Chrome trace-event JSON array, sorted
/// by timestamp so `ts` is monotonic within the file.
fn chrome_trace_from_wire(records: &[Json]) -> String {
    let mut events: Vec<(u64, Json)> = records
        .iter()
        .filter_map(|record| {
            let ts = record.get("ts_us").and_then(Json::as_u64).unwrap_or(0);
            chrome_event_from_wire(record).map(|event| (ts, event))
        })
        .collect();
    events.sort_by_key(|&(ts, _)| ts);
    let body: Vec<String> = events
        .into_iter()
        .map(|(_, event)| event.to_string())
        .collect();
    format!("[{}]\n", body.join(",\n "))
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut addr = "127.0.0.1:7433".to_string();
    let mut rest = &argv[1..];
    if rest.first().map(String::as_str) == Some("--addr") {
        addr = rest
            .get(1)
            .cloned()
            .unwrap_or_else(|| usage_fail("--addr needs a value"));
        rest = &rest[2..];
    }
    let Some(command) = rest.first() else {
        usage_fail("no command given");
    };
    if command == "--help" || command == "-h" {
        println!("{USAGE}");
        return;
    }

    let mut client = Client::connect(&addr)
        .unwrap_or_else(|err| fail(format!("cannot connect to {addr}: {err}")));
    let outcome = run(&mut client, command, &rest[1..]);
    if let Err(err) = outcome {
        fail(err);
    }
}

fn run(
    client: &mut Client,
    command: &str,
    args: &[String],
) -> Result<(), sfi_serve::client::ClientError> {
    match command {
        "ping" => {
            let info = client.ping()?;
            println!(
                "protocol v{}, STA limit {:.1} MHz @ {} V, voltages {:?}, \
                 characterization {}, {} job(s) so far",
                info.v,
                info.sta_limit_mhz,
                info.nominal_vdd,
                info.voltages,
                if info.characterization_cache_hit {
                    "cache hit"
                } else {
                    "computed"
                },
                info.jobs
            );
            println!(
                "scheduler: {}/{} job slot(s) busy × {} thread(s), queued quota {}, \
                 running quota {}, retained {} result byte(s){}",
                info.running_jobs,
                info.max_concurrent_jobs,
                info.threads_per_job,
                match info.max_queued_per_client {
                    Some(n) => n.to_string(),
                    None => "unlimited".into(),
                },
                match info.max_running_per_client {
                    Some(n) => n.to_string(),
                    None => "unlimited".into(),
                },
                info.retained_result_bytes,
                match info.result_cap_bytes {
                    Some(n) => format!(" of {n} cap"),
                    None => " (no cap)".into(),
                },
            );
            println!(
                "observability: Prometheus listener {}, {} preemption(s), {} eviction(s)",
                if info.metrics_enabled { "on" } else { "off" },
                info.preemptions_total,
                info.evictions_total,
            );
            if info.draining {
                println!("state: DRAINING (new submits are refused)");
            }
        }
        "submit" => {
            let path = args
                .first()
                .unwrap_or_else(|| usage_fail("submit needs a FILE"));
            let is_asm = path.ends_with(".s");
            let mut priority = Priority::Normal;
            let mut client_id: Option<String> = None;
            let mut key: Option<String> = None;
            let mut params = AsmCellParams::default();
            let mut freq: Option<f64> = None;
            let mut name: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                let value = |i: &mut usize| -> String {
                    *i += 1;
                    args.get(*i)
                        .cloned()
                        .unwrap_or_else(|| usage_fail("flag needs a value"))
                };
                let asm_only = |flag: &str| {
                    if !is_asm {
                        usage_fail(format!("{flag} only applies to .s submissions"));
                    }
                };
                match args[i].as_str() {
                    "--priority" => {
                        let name = value(&mut i);
                        priority = Priority::parse(&name).unwrap_or_else(|| {
                            usage_fail(format!(
                                "unknown priority '{name}' (expected low, normal or high)"
                            ))
                        });
                    }
                    "--client" => client_id = Some(value(&mut i)),
                    "--key" => key = Some(value(&mut i)),
                    "--freq" => {
                        asm_only("--freq");
                        freq = Some(
                            value(&mut i)
                                .parse()
                                .unwrap_or_else(|_| usage_fail("--freq")),
                        );
                    }
                    "--vdd" => {
                        asm_only("--vdd");
                        params.vdd = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--vdd"));
                    }
                    "--noise" => {
                        asm_only("--noise");
                        params.noise_sigma_mv = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--noise"));
                    }
                    "--model" => {
                        asm_only("--model");
                        params.model = match value(&mut i).as_str() {
                            "b" => FaultModel::StaPeriodViolation,
                            "b+" => FaultModel::StaWithNoise,
                            "c" => FaultModel::StatisticalDta,
                            other => usage_fail(format!("unknown model '{other}'")),
                        };
                    }
                    "--trials" => {
                        asm_only("--trials");
                        params.trials = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--trials"));
                    }
                    "--seed" => {
                        asm_only("--seed");
                        params.seed = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--seed"));
                    }
                    "--dmem" => {
                        asm_only("--dmem");
                        params.default_dmem_words = value(&mut i)
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage_fail("--dmem"));
                    }
                    "--name" => {
                        asm_only("--name");
                        name = Some(value(&mut i));
                    }
                    other => usage_fail(format!("unknown flag '{other}'")),
                }
                i += 1;
            }
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|err| fail(format!("cannot read {path}: {err}")));
            let (def, assembly) = if is_asm {
                params.freq_mhz = match freq {
                    Some(freq) => freq,
                    // Default to a deterministic just-below-the-STA-limit
                    // clock so a plain submit runs fault-free.
                    None => client.ping()?.sta_limit_mhz * 0.95,
                };
                let name = name.unwrap_or_else(|| {
                    std::path::Path::new(path)
                        .file_stem()
                        .map(|stem| stem.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "asm".into())
                });
                let (def, assembly) = campaign_from_asm(&name, path, &text, &params)
                    .unwrap_or_else(|err| {
                        eprintln!("{err}");
                        exit(2);
                    });
                (def, Some(assembly))
            } else {
                let doc = Json::parse(&text)
                    .unwrap_or_else(|err| fail(format!("{path} is not valid JSON: {err}")));
                let def = CampaignDef::from_json(&doc)
                    .unwrap_or_else(|err| fail(format!("{path}: {err}")));
                (def, None)
            };
            let submitted =
                client.submit_keyed(&def, priority, client_id.as_deref(), key.as_deref());
            // A verification rejection of an assembled submission is
            // reported with findings mapped back to source lines.
            if let (
                Some(assembly),
                Err(sfi_serve::client::ClientError::Server {
                    message,
                    detail: Some(detail),
                    ..
                }),
            ) = (&assembly, &submitted)
            {
                if is_verification_detail(detail) {
                    eprintln!("sfi-client: {message}");
                    for line in findings_with_lines(path, assembly, detail) {
                        eprintln!("{line}");
                    }
                    exit(1);
                }
            }
            let ticket = submitted?;
            println!(
                "job {} submitted ({} cells, {} priority)",
                ticket.job,
                ticket.total_cells,
                ticket.priority.as_str()
            );
        }
        "demo" => {
            let info = client.ping()?;
            let mut def = CampaignDef::new("demo", 7);
            let median = def.add_benchmark(BenchmarkDef::Median {
                values: 21,
                seed: 3,
            });
            for overscale in [0.95, 1.15] {
                def.cells.push(CellDef {
                    benchmark: median,
                    model: FaultModel::StatisticalDta,
                    freq_mhz: info.sta_limit_mhz * overscale,
                    vdd: info.nominal_vdd,
                    noise_sigma_mv: 10.0,
                    budget: BudgetDef::fixed(5),
                });
            }
            let ticket = client.submit(&def)?;
            println!(
                "job {} submitted ({} cells), streaming…",
                ticket.job, ticket.total_cells
            );
            let state = client.stream(ticket.job, |cell| {
                println!("  cell {}", cell);
            })?;
            println!("job {} {state}", ticket.job);
        }
        "status" => {
            let status = client.status(parse_job(args.first()))?;
            print_status(&status);
        }
        "stream" => {
            let job = parse_job(args.first());
            let state = client.stream(job, |cell| println!("{cell}"))?;
            println!("job {job} {state}");
        }
        "result" => {
            let doc = client.result(parse_job(args.first()))?;
            println!("{doc}");
        }
        "cancel" => {
            let job = parse_job(args.first());
            client.cancel(job)?;
            println!("job {job} cancelled");
        }
        "metrics" => {
            let snapshot = client.metrics()?;
            print_metrics(&snapshot);
        }
        "events" => {
            let mut limit = None;
            let mut job = None;
            let mut i = 0;
            while i < args.len() {
                let value = |i: &mut usize| -> String {
                    *i += 1;
                    args.get(*i)
                        .cloned()
                        .unwrap_or_else(|| usage_fail("flag needs a value"))
                };
                match args[i].as_str() {
                    "--limit" => {
                        limit = Some(
                            value(&mut i)
                                .parse()
                                .unwrap_or_else(|_| usage_fail("--limit")),
                        )
                    }
                    "--job" => {
                        job = Some(
                            value(&mut i)
                                .parse()
                                .unwrap_or_else(|_| usage_fail("--job")),
                        )
                    }
                    other => usage_fail(format!("unknown flag '{other}'")),
                }
                i += 1;
            }
            let (events, dropped) = client.events(limit, job)?;
            for event in events.as_arr().unwrap_or_default() {
                println!("{event}");
            }
            if dropped > 0 {
                eprintln!("({dropped} older event(s) dropped by the ring buffer)");
            }
        }
        "trace" => {
            let mut limit = None;
            let mut job = None;
            let mut chrome: Option<String> = None;
            let mut i = 0;
            while i < args.len() {
                let value = |i: &mut usize| -> String {
                    *i += 1;
                    args.get(*i)
                        .cloned()
                        .unwrap_or_else(|| usage_fail("flag needs a value"))
                };
                match args[i].as_str() {
                    "--limit" => {
                        limit = Some(
                            value(&mut i)
                                .parse()
                                .unwrap_or_else(|_| usage_fail("--limit")),
                        )
                    }
                    "--job" => {
                        job = Some(
                            value(&mut i)
                                .parse()
                                .unwrap_or_else(|_| usage_fail("--job")),
                        )
                    }
                    "--chrome" => chrome = Some(value(&mut i)),
                    other => usage_fail(format!("unknown flag '{other}'")),
                }
                i += 1;
            }
            let (spans, dropped) = client.trace(limit, job)?;
            let records = spans.as_arr().map(<[Json]>::to_vec).unwrap_or_default();
            match chrome {
                Some(path) => {
                    let text = chrome_trace_from_wire(&records);
                    let events = records.len();
                    std::fs::write(&path, text)
                        .unwrap_or_else(|err| fail(format!("cannot write {path}: {err}")));
                    println!(
                        "wrote {events} trace event(s) to {path} \
                         (load in chrome://tracing or ui.perfetto.dev)"
                    );
                }
                None => {
                    for record in &records {
                        println!("{record}");
                    }
                }
            }
            if dropped > 0 {
                eprintln!("({dropped} older record(s) dropped by the trace store)");
            }
        }
        "alerts" => {
            let alerts = client.alerts()?;
            for status in alerts.as_arr().unwrap_or_default() {
                let rule = status.get("rule").and_then(Json::as_str).unwrap_or("?");
                let family = status.get("family").and_then(Json::as_str).unwrap_or("?");
                let firing = status
                    .get("firing")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                let value = status.get("value").and_then(Json::as_f64).unwrap_or(0.0);
                let threshold = status
                    .get("threshold")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let fired = status
                    .get("fired_total")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                println!(
                    "{rule} [{family}] {}  value {value}, threshold {threshold}, \
                     fired {fired} time(s)",
                    if firing { "FIRING" } else { "ok" },
                );
            }
        }
        "poff" => {
            if args.len() < 3 {
                usage_fail("poff needs KERNEL LO HI");
            }
            let benchmark = builtin_kernel(&args[0]);
            let lo: f64 = args[1]
                .parse()
                .unwrap_or_else(|_| usage_fail("LO must be MHz"));
            let hi: f64 = args[2]
                .parse()
                .unwrap_or_else(|_| usage_fail("HI must be MHz"));
            let mut request = PoffRequest {
                benchmark,
                model: FaultModel::StatisticalDta,
                vdd: 0.7,
                noise_sigma_mv: 0.0,
                lo_mhz: lo,
                hi_mhz: hi,
                resolution_mhz: (hi - lo) / 64.0,
                trials: 20,
                seed: 9,
            };
            let mut i = 3;
            while i < args.len() {
                let value = |i: &mut usize| -> String {
                    *i += 1;
                    args.get(*i)
                        .cloned()
                        .unwrap_or_else(|| usage_fail("flag needs a value"))
                };
                match args[i].as_str() {
                    "--vdd" => {
                        request.vdd = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--vdd"))
                    }
                    "--noise" => {
                        request.noise_sigma_mv = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--noise"))
                    }
                    "--resolution" => {
                        request.resolution_mhz = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--resolution"))
                    }
                    "--trials" => {
                        request.trials = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--trials"))
                    }
                    "--seed" => {
                        request.seed = value(&mut i)
                            .parse()
                            .unwrap_or_else(|_| usage_fail("--seed"))
                    }
                    "--model" => {
                        request.model = match value(&mut i).as_str() {
                            "b" => FaultModel::StaPeriodViolation,
                            "b+" => FaultModel::StaWithNoise,
                            "c" => FaultModel::StatisticalDta,
                            other => usage_fail(format!("unknown model '{other}'")),
                        }
                    }
                    other => usage_fail(format!("unknown flag '{other}'")),
                }
                i += 1;
            }
            let reply = client.poff(&request)?;
            match reply.poff_mhz {
                Some(freq) => println!(
                    "PoFF: {freq:.1} MHz ({} cells evaluated)",
                    reply.cells_evaluated
                ),
                None => println!(
                    "no failure up to {:.1} MHz ({} cells evaluated)",
                    request.hi_mhz, reply.cells_evaluated
                ),
            }
            for point in &reply.evaluated {
                println!(
                    "  {:>8.1} MHz  correct {:.3}",
                    point.freq_mhz, point.correct_fraction
                );
            }
        }
        "drain" => {
            let running = client.drain()?;
            println!("drain started ({running} job(s) still running)");
        }
        "shutdown" => {
            client.shutdown()?;
            println!("daemon shut down");
        }
        other => usage_fail(format!("unknown command '{other}'")),
    }
    Ok(())
}
