//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON object on one line, terminated by `\n`.  The
//! client sends [`Request`] frames; the server answers with one or more
//! [`Response`] frames.  All requests are answered by exactly one response
//! except `stream`, which emits one `cell` frame per campaign cell (in
//! completion order, as they finish) followed by a terminating `end`
//! frame.  Responses to invalid input are `error` frames; the connection
//! stays open, so one bad request does not cost a reconnect.
//!
//! | request    | fields                     | response(s)                        |
//! |------------|----------------------------|------------------------------------|
//! | `ping`     | —                          | `pong` (server info)               |
//! | `submit`   | `spec` ([`CampaignDef`])   | `submitted` (job id, cell count)   |
//! | `status`   | `job`                      | `status` (state, progress)         |
//! | `stream`   | `job`                      | `cell`* then `end`                 |
//! | `result`   | `job`                      | `result` (full checkpoint document)|
//! | `poff`     | [`PoffRequest`] fields     | `poff` (bisection outcome)         |
//! | `cancel`   | `job`                      | `cancelled`                        |
//! | `shutdown` | —                          | `bye`, then the daemon exits       |
//!
//! Cell payloads use the campaign checkpoint cell format
//! (`sfi_campaign::checkpoint::cell_to_json`), and the `result` document
//! is byte-identical to a checkpoint of the same campaign — the formats
//! were designed to be shared.

use crate::wire::{model_from_json, model_to_json, CampaignDef, WireError};
use sfi_core::json::Json;
use sfi_core::FaultModel;
use std::io::{self, BufRead, Write};

/// Protocol version, reported by `pong`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's size: a line longer than this is a protocol
/// error and the connection is closed (the reader cannot resynchronize
/// reliably once it abandons a line).
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one frame: the document on a single line, `\n` terminated.
pub fn write_frame(writer: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut line = doc.to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one frame.
///
/// Returns `Ok(None)` on a clean EOF, `Ok(Some(Err(..)))` on a malformed
/// frame (the connection is still synchronized — the bad line was fully
/// consumed), and an [`io::Error`] on transport problems, including frames
/// longer than [`MAX_FRAME_BYTES`].
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Option<Result<Json, WireError>>> {
    loop {
        let mut line = Vec::new();
        let mut limited = io::Read::take(&mut *reader, MAX_FRAME_BYTES as u64 + 1);
        let n = limited.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if line.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
            ));
        }
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text.trim(),
            Err(_) => return Ok(Some(Err(WireError("frame is not valid UTF-8".into())))),
        };
        if text.is_empty() {
            // Tolerate blank lines between frames (useful for hand-typed
            // sessions over netcat).
            continue;
        }
        return Ok(Some(
            Json::parse(text).map_err(|e| WireError(format!("malformed frame: {e}"))),
        ));
    }
}

/// A PoFF bisection query: locate the point of first failure of one
/// benchmark under one model, without building a full campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PoffRequest {
    /// The benchmark to search.
    pub benchmark: crate::wire::BenchmarkDef,
    /// The fault model.
    pub model: FaultModel,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Supply-noise sigma in millivolts.
    pub noise_sigma_mv: f64,
    /// Lower end of the searched range, MHz.
    pub lo_mhz: f64,
    /// Upper end of the searched range, MHz.
    pub hi_mhz: f64,
    /// Bracket resolution, MHz.
    pub resolution_mhz: f64,
    /// Monte-Carlo trials per evaluated frequency.
    pub trials: usize,
    /// Search seed.
    pub seed: u64,
}

impl PoffRequest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::Str("poff".into())),
            ("benchmark", self.benchmark.to_json()),
            ("model", model_to_json(self.model)),
            ("vdd", Json::Num(self.vdd)),
            ("noise_sigma_mv", Json::Num(self.noise_sigma_mv)),
            ("lo_mhz", Json::Num(self.lo_mhz)),
            ("hi_mhz", Json::Num(self.hi_mhz)),
            ("resolution_mhz", Json::Num(self.resolution_mhz)),
            ("trials", Json::Num(self.trials as f64)),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        let req = PoffRequest {
            benchmark: crate::wire::BenchmarkDef::from_json(
                value
                    .get("benchmark")
                    .ok_or_else(|| WireError("missing member 'benchmark'".into()))?,
            )?,
            model: model_from_json(
                value
                    .get("model")
                    .ok_or_else(|| WireError("missing member 'model'".into()))?,
            )?,
            vdd: finite(value, "vdd")?,
            noise_sigma_mv: finite(value, "noise_sigma_mv")?,
            lo_mhz: finite(value, "lo_mhz")?,
            hi_mhz: finite(value, "hi_mhz")?,
            resolution_mhz: finite(value, "resolution_mhz")?,
            trials: u64_member(value, "trials")? as usize,
            seed: u64_member(value, "seed")?,
        };
        if req.vdd <= 0.0 {
            return Err(WireError("'vdd' must be positive".into()));
        }
        if req.noise_sigma_mv < 0.0 {
            return Err(WireError("'noise_sigma_mv' must be non-negative".into()));
        }
        if !(req.lo_mhz > 0.0 && req.hi_mhz > req.lo_mhz) {
            return Err(WireError(
                "'lo_mhz'/'hi_mhz' must form a positive, non-empty range".into(),
            ));
        }
        if req.resolution_mhz <= 0.0 {
            return Err(WireError("'resolution_mhz' must be positive".into()));
        }
        if req.trials == 0 || req.trials > crate::wire::MAX_TRIALS_PER_CELL {
            return Err(WireError(format!(
                "'trials' must be in 1..={}",
                crate::wire::MAX_TRIALS_PER_CELL
            )));
        }
        Ok(req)
    }
}

fn finite(value: &Json, key: &str) -> Result<f64, WireError> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| WireError(format!("'{key}' must be a finite number")))
}

fn u64_member(value: &Json, key: &str) -> Result<u64, WireError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError(format!("'{key}' must be an unsigned integer")))
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / server-info probe.
    Ping,
    /// Submit a campaign for execution.
    Submit(CampaignDef),
    /// Poll one job's status.
    Status(u64),
    /// Stream a job's per-cell results as they complete.
    Stream(u64),
    /// Fetch a finished job's full result document.
    Result(u64),
    /// Run a PoFF bisection query synchronously.
    Poff(PoffRequest),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Stop the daemon gracefully.
    Shutdown,
}

impl Request {
    /// Serializes to a frame document.
    pub fn to_json(&self) -> Json {
        let typed = |t: &str| Json::obj([("type", Json::Str(t.into()))]);
        let with_job = |t: &str, job: u64| {
            Json::obj([
                ("type", Json::Str(t.into())),
                ("job", Json::Str(job.to_string())),
            ])
        };
        match self {
            Request::Ping => typed("ping"),
            Request::Submit(def) => Json::obj([
                ("type", Json::Str("submit".into())),
                ("spec", def.to_json()),
            ]),
            Request::Status(job) => with_job("status", *job),
            Request::Stream(job) => with_job("stream", *job),
            Request::Result(job) => with_job("result", *job),
            Request::Poff(req) => req.to_json(),
            Request::Cancel(job) => with_job("cancel", *job),
            Request::Shutdown => typed("shutdown"),
        }
    }

    /// Decodes a frame document.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError("missing request 'type'".into()))?;
        match kind {
            "ping" => Ok(Request::Ping),
            "submit" => Ok(Request::Submit(CampaignDef::from_json(
                value
                    .get("spec")
                    .ok_or_else(|| WireError("missing member 'spec'".into()))?,
            )?)),
            "status" => Ok(Request::Status(u64_member(value, "job")?)),
            "stream" => Ok(Request::Stream(u64_member(value, "job")?)),
            "result" => Ok(Request::Result(u64_member(value, "job")?)),
            "poff" => Ok(Request::Poff(PoffRequest::from_json(value)?)),
            "cancel" => Ok(Request::Cancel(u64_member(value, "job")?)),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError(format!("unknown request type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BenchmarkDef, BudgetDef, CellDef};
    use std::io::BufReader;

    fn demo_def() -> CampaignDef {
        let mut def = CampaignDef::new("proto", 42);
        let b = def.add_benchmark(BenchmarkDef::Dijkstra { nodes: 10, seed: 1 });
        def.cells.push(CellDef {
            benchmark: b,
            model: FaultModel::StaWithNoise,
            freq_mhz: 700.0,
            vdd: 0.7,
            noise_sigma_mv: 5.0,
            budget: BudgetDef::fixed(3),
        });
        def
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = [
            Request::Ping,
            Request::Submit(demo_def()),
            Request::Status(7),
            Request::Stream(7),
            Request::Result(u64::MAX),
            Request::Poff(PoffRequest {
                benchmark: BenchmarkDef::Median {
                    values: 21,
                    seed: 3,
                },
                model: FaultModel::StaPeriodViolation,
                vdd: 0.7,
                noise_sigma_mv: 0.0,
                lo_mhz: 600.0,
                hi_mhz: 900.0,
                resolution_mhz: 5.0,
                trials: 4,
                seed: 11,
            }),
            Request::Cancel(7),
            Request::Shutdown,
        ];
        // All frames through one pipe, in order.
        let mut buf = Vec::new();
        for req in &requests {
            write_frame(&mut buf, &req.to_json()).expect("writes");
        }
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), requests.len());

        let mut reader = BufReader::new(buf.as_slice());
        for req in &requests {
            let frame = read_frame(&mut reader)
                .expect("io ok")
                .expect("not eof")
                .expect("parses");
            let back = Request::from_json(&frame).expect("decodes");
            assert_eq!(&back, req);
        }
        assert!(
            read_frame(&mut reader).expect("io ok").is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn campaign_spec_survives_the_submit_frame() {
        // The acceptance-relevant property: a spec pushed through the
        // protocol framing instantiates to the same campaign fingerprint.
        let def = demo_def();
        let direct = def.instantiate().expect("instantiates");

        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Submit(def).to_json()).expect("writes");
        let mut reader = BufReader::new(buf.as_slice());
        let frame = read_frame(&mut reader).unwrap().unwrap().unwrap();
        let Request::Submit(received) = Request::from_json(&frame).unwrap() else {
            panic!("not a submit");
        };
        let remote = received.instantiate().expect("instantiates");
        assert_eq!(remote.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn malformed_frames_are_reported_not_fatal() {
        let mut reader = BufReader::new("{\"type\":}\n{\"type\":\"ping\"}\n".as_bytes());
        let bad = read_frame(&mut reader).expect("io ok").expect("not eof");
        assert!(bad.is_err(), "malformed frame yields a wire error");
        // The reader is still synchronized: the next frame parses.
        let good = read_frame(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(Request::from_json(&good), Ok(Request::Ping));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut reader = BufReader::new("\n  \n{\"type\":\"ping\"}\n".as_bytes());
        let frame = read_frame(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(Request::from_json(&frame), Ok(Request::Ping));
    }

    #[test]
    fn oversized_frames_are_io_errors() {
        let huge = format!("{{\"type\":\"{}\"}}\n", "x".repeat(MAX_FRAME_BYTES));
        let mut reader = BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut reader).is_err());
    }
}
