//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON object on one line, terminated by `\n`.  The
//! client sends [`Request`] frames; the server answers with one or more
//! [`Response`] frames.  All requests are answered by exactly one response
//! except `stream`, which emits one `cell` frame per campaign cell (in
//! completion order, as they finish) followed by a terminating `end`
//! frame.  Responses to invalid input are `error` frames carrying a
//! machine-readable [`ErrorCode`]; the connection stays open, so one bad
//! request does not cost a reconnect.
//!
//! | request    | fields                               | response(s)                        |
//! |------------|--------------------------------------|------------------------------------|
//! | `ping`     | —                                    | `pong` (server + scheduler info)   |
//! | `submit`   | `spec`, `priority`?, `client`?       | `submitted` (job id, cell count)   |
//! | `status`   | `job`                                | `status` (state, progress, class)  |
//! | `stream`   | `job`                                | `cell`* then `end`                 |
//! | `result`   | `job`                                | `result` (full checkpoint document)|
//! | `poff`     | [`PoffRequest`] fields               | `poff` (bisection outcome)         |
//! | `metrics`  | —                                    | `metrics` (full registry snapshot) |
//! | `events`   | `limit`?, `job`?                     | `events` (recent structured events)|
//! | `cancel`   | `job`                                | `cancelled`                        |
//! | `drain`    | —                                    | `drain_started`, then the daemon   |
//! |            |                                      | finishes running jobs and exits    |
//! | `shutdown` | —                                    | `bye`, then the daemon exits       |
//!
//! The human-readable reference (every frame with worked examples, all
//! error codes, and an `nc` session transcript) is `docs/PROTOCOL.md`;
//! a doc-sync test round-trips every JSON example in that file through
//! these types, so document and implementation cannot drift.
//!
//! Cell payloads use the campaign checkpoint cell format
//! (`sfi_campaign::checkpoint::cell_to_json`), and the `result` document
//! is byte-identical to a checkpoint of the same campaign — the formats
//! were designed to be shared.

use crate::jobs::{JobState, JobStatus, Priority};
use crate::wire::{model_from_json, model_to_json, CampaignDef, WireError, MAX_CLIENT_ID_BYTES};
use sfi_core::json::Json;
use sfi_core::FaultModel;
use std::io::{self, BufRead, Write};

/// Protocol version, reported as `"v"` by `pong`.  Version 1 is frozen in
/// `docs/PROTOCOL.md`; additive fields do not bump it, incompatible
/// changes do.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's size: a line longer than this is a protocol
/// error and the connection is closed (the reader cannot resynchronize
/// reliably once it abandons a line).
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one frame: the document on a single line, `\n` terminated.
pub fn write_frame(writer: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut line = doc.to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one frame.
///
/// Returns `Ok(None)` on a clean EOF, `Ok(Some(Err(..)))` on a malformed
/// frame (the connection is still synchronized — the bad line was fully
/// consumed), and an [`io::Error`] on transport problems, including frames
/// longer than [`MAX_FRAME_BYTES`].
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Option<Result<Json, WireError>>> {
    loop {
        let mut line = Vec::new();
        let mut limited = io::Read::take(&mut *reader, MAX_FRAME_BYTES as u64 + 1);
        let n = limited.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if line.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
            ));
        }
        let text = match std::str::from_utf8(&line) {
            Ok(text) => text.trim(),
            Err(_) => return Ok(Some(Err(WireError("frame is not valid UTF-8".into())))),
        };
        if text.is_empty() {
            // Tolerate blank lines between frames (useful for hand-typed
            // sessions over netcat).
            continue;
        }
        return Ok(Some(
            Json::parse(text).map_err(|e| WireError(format!("malformed frame: {e}"))),
        ));
    }
}

/// Machine-readable classification of an `error` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed, out of range, or referenced something
    /// this daemon cannot serve (e.g. an uncharacterized voltage).
    BadRequest,
    /// The referenced job id does not exist.
    UnknownJob,
    /// The client exceeded its queued-jobs quota.
    QuotaExceeded,
    /// The job finished, but its result was evicted by the retention
    /// cap; only the status survives.
    ResultEvicted,
    /// The job has no result document (still in flight, failed, or
    /// cancelled).
    NoResult,
    /// The result document exceeds the frame limit; fetch it cell by
    /// cell with `stream`.
    ResultTooLarge,
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
    /// The daemon is draining: running jobs finish (or are checkpointed)
    /// but new submissions are refused.  Clients should retry against
    /// the restarted daemon.
    Draining,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::ResultEvicted => "result_evicted",
            ErrorCode::NoResult => "no_result",
            ErrorCode::ResultTooLarge => "result_too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Draining => "draining",
        }
    }

    /// Parses a wire name; `None` for anything else.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_job" => Some(ErrorCode::UnknownJob),
            "quota_exceeded" => Some(ErrorCode::QuotaExceeded),
            "result_evicted" => Some(ErrorCode::ResultEvicted),
            "no_result" => Some(ErrorCode::NoResult),
            "result_too_large" => Some(ErrorCode::ResultTooLarge),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            "draining" => Some(ErrorCode::Draining),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A PoFF bisection query: locate the point of first failure of one
/// benchmark under one model, without building a full campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PoffRequest {
    /// The benchmark to search.
    pub benchmark: crate::wire::BenchmarkDef,
    /// The fault model.
    pub model: FaultModel,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Supply-noise sigma in millivolts.
    pub noise_sigma_mv: f64,
    /// Lower end of the searched range, MHz.
    pub lo_mhz: f64,
    /// Upper end of the searched range, MHz.
    pub hi_mhz: f64,
    /// Bracket resolution, MHz.
    pub resolution_mhz: f64,
    /// Monte-Carlo trials per evaluated frequency.
    pub trials: usize,
    /// Search seed.
    pub seed: u64,
}

impl PoffRequest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::Str("poff".into())),
            ("benchmark", self.benchmark.to_json()),
            ("model", model_to_json(self.model)),
            ("vdd", Json::Num(self.vdd)),
            ("noise_sigma_mv", Json::Num(self.noise_sigma_mv)),
            ("lo_mhz", Json::Num(self.lo_mhz)),
            ("hi_mhz", Json::Num(self.hi_mhz)),
            ("resolution_mhz", Json::Num(self.resolution_mhz)),
            ("trials", Json::Num(self.trials as f64)),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        let req = PoffRequest {
            benchmark: crate::wire::BenchmarkDef::from_json(
                value
                    .get("benchmark")
                    .ok_or_else(|| WireError("missing member 'benchmark'".into()))?,
            )?,
            model: model_from_json(
                value
                    .get("model")
                    .ok_or_else(|| WireError("missing member 'model'".into()))?,
            )?,
            vdd: finite(value, "vdd")?,
            noise_sigma_mv: finite(value, "noise_sigma_mv")?,
            lo_mhz: finite(value, "lo_mhz")?,
            hi_mhz: finite(value, "hi_mhz")?,
            resolution_mhz: finite(value, "resolution_mhz")?,
            trials: u64_member(value, "trials")? as usize,
            seed: u64_member(value, "seed")?,
        };
        if req.vdd <= 0.0 {
            return Err(WireError("'vdd' must be positive".into()));
        }
        if req.noise_sigma_mv < 0.0 {
            return Err(WireError("'noise_sigma_mv' must be non-negative".into()));
        }
        if !(req.lo_mhz > 0.0 && req.hi_mhz > req.lo_mhz) {
            return Err(WireError(
                "'lo_mhz'/'hi_mhz' must form a positive, non-empty range".into(),
            ));
        }
        if req.resolution_mhz <= 0.0 {
            return Err(WireError("'resolution_mhz' must be positive".into()));
        }
        if req.trials == 0 || req.trials > crate::wire::MAX_TRIALS_PER_CELL {
            return Err(WireError(format!(
                "'trials' must be in 1..={}",
                crate::wire::MAX_TRIALS_PER_CELL
            )));
        }
        Ok(req)
    }
}

fn finite(value: &Json, key: &str) -> Result<f64, WireError> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| WireError(format!("'{key}' must be a finite number")))
}

fn u64_member(value: &Json, key: &str) -> Result<u64, WireError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError(format!("'{key}' must be an unsigned integer")))
}

fn str_member<'a>(value: &'a Json, key: &str) -> Result<&'a str, WireError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WireError(format!("'{key}' must be a string")))
}

fn bool_member(value: &Json, key: &str) -> Result<bool, WireError> {
    value
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| WireError(format!("'{key}' must be a boolean")))
}

/// Encodes `None` as JSON `null` and `Some(n)` as a number.
fn opt_num(value: Option<usize>) -> Json {
    match value {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    }
}

/// Decodes a member that is either `null` or an unsigned integer.
fn opt_u64_member(value: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match value.get(key) {
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError(format!("'{key}' must be null or an unsigned integer"))),
        None => Err(WireError(format!("missing member '{key}'"))),
    }
}

/// The payload of a `submit` request: the campaign plus its scheduling
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The wire campaign to instantiate and run.
    pub spec: CampaignDef,
    /// Scheduling class (absent on the wire = `normal`).
    pub priority: Priority,
    /// Client id the quotas are accounted against (absent on the wire =
    /// the daemon-side default, `"anonymous"`).
    pub client: Option<String>,
    /// Client-supplied idempotency key.  Re-submitting with the same
    /// `(client, key)` pair returns the already-assigned job id instead
    /// of creating a duplicate job, which makes retrying a `submit`
    /// whose acknowledgement was lost safe.  Absent = no deduplication.
    pub idempotency_key: Option<String>,
}

impl SubmitRequest {
    /// A `normal`-priority submission with the default client id.
    pub fn new(spec: CampaignDef) -> Self {
        SubmitRequest {
            spec,
            priority: Priority::Normal,
            client: None,
            idempotency_key: None,
        }
    }
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / server-info probe.
    Ping,
    /// Submit a campaign for execution.
    Submit(SubmitRequest),
    /// Poll one job's status.
    Status(u64),
    /// Stream a job's per-cell results as they complete.
    Stream(u64),
    /// Fetch a finished job's full result document.
    Result(u64),
    /// Run a PoFF bisection query synchronously.
    Poff(PoffRequest),
    /// Fetch a snapshot of the daemon's metrics registry.
    Metrics,
    /// Fetch recent structured events from the daemon's event ring.
    Events {
        /// Maximum events to return (absent = the daemon default, 100).
        limit: Option<u64>,
        /// Only events tagged with this job id (absent = all events).
        job: Option<u64>,
    },
    /// Fetch recent trace records (spans and utilization counters)
    /// from the daemon's bounded trace store.
    Trace {
        /// Maximum records to return (absent = the daemon default, 1000).
        limit: Option<u64>,
        /// Only records tagged with this job id (absent = all records).
        job: Option<u64>,
    },
    /// Evaluate the daemon's alert rules and fetch their statuses.
    Alerts,
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Begin draining: refuse new submits, finish running jobs, exit.
    Drain,
    /// Stop the daemon gracefully.
    Shutdown,
}

impl Request {
    /// Serializes to a frame document.  Optional submit fields at their
    /// defaults (`normal` priority, no client id) are omitted — the
    /// canonical encoding of a default is absence.
    pub fn to_json(&self) -> Json {
        let typed = |t: &str| Json::obj([("type", Json::Str(t.into()))]);
        let with_job = |t: &str, job: u64| {
            Json::obj([
                ("type", Json::Str(t.into())),
                ("job", Json::Str(job.to_string())),
            ])
        };
        match self {
            Request::Ping => typed("ping"),
            Request::Submit(submit) => {
                let mut pairs = vec![
                    ("type", Json::Str("submit".into())),
                    ("spec", submit.spec.to_json()),
                ];
                if submit.priority != Priority::Normal {
                    pairs.push(("priority", Json::Str(submit.priority.as_str().into())));
                }
                if let Some(client) = &submit.client {
                    pairs.push(("client", Json::Str(client.clone())));
                }
                if let Some(key) = &submit.idempotency_key {
                    pairs.push(("idempotency_key", Json::Str(key.clone())));
                }
                Json::obj(pairs)
            }
            Request::Status(job) => with_job("status", *job),
            Request::Stream(job) => with_job("stream", *job),
            Request::Result(job) => with_job("result", *job),
            Request::Poff(req) => req.to_json(),
            Request::Metrics => typed("metrics"),
            Request::Events { limit, job } => {
                let mut pairs = vec![("type", Json::Str("events".into()))];
                if let Some(limit) = limit {
                    pairs.push(("limit", Json::Num(*limit as f64)));
                }
                if let Some(job) = job {
                    pairs.push(("job", Json::Str(job.to_string())));
                }
                Json::obj(pairs)
            }
            Request::Trace { limit, job } => {
                let mut pairs = vec![("type", Json::Str("trace".into()))];
                if let Some(limit) = limit {
                    pairs.push(("limit", Json::Num(*limit as f64)));
                }
                if let Some(job) = job {
                    pairs.push(("job", Json::Str(job.to_string())));
                }
                Json::obj(pairs)
            }
            Request::Alerts => typed("alerts"),
            Request::Cancel(job) => with_job("cancel", *job),
            Request::Drain => typed("drain"),
            Request::Shutdown => typed("shutdown"),
        }
    }

    /// Decodes a frame document.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError("missing request 'type'".into()))?;
        match kind {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec = CampaignDef::from_json(
                    value
                        .get("spec")
                        .ok_or_else(|| WireError("missing member 'spec'".into()))?,
                )?;
                let priority = match value.get("priority") {
                    None => Priority::Normal,
                    Some(p) => {
                        let name = p
                            .as_str()
                            .ok_or_else(|| WireError("'priority' must be a string".into()))?;
                        Priority::parse(name).ok_or_else(|| {
                            WireError(format!(
                                "unknown priority '{name}' (expected low, normal or high)"
                            ))
                        })?
                    }
                };
                let client = match value.get("client") {
                    None => None,
                    Some(c) => {
                        let id = c
                            .as_str()
                            .ok_or_else(|| WireError("'client' must be a string".into()))?;
                        if id.is_empty() || id.len() > MAX_CLIENT_ID_BYTES {
                            return Err(WireError(format!(
                                "'client' must be 1..={MAX_CLIENT_ID_BYTES} bytes"
                            )));
                        }
                        Some(id.to_string())
                    }
                };
                let idempotency_key = match value.get("idempotency_key") {
                    None => None,
                    Some(k) => {
                        let key = k.as_str().ok_or_else(|| {
                            WireError("'idempotency_key' must be a string".into())
                        })?;
                        if key.is_empty() || key.len() > MAX_CLIENT_ID_BYTES {
                            return Err(WireError(format!(
                                "'idempotency_key' must be 1..={MAX_CLIENT_ID_BYTES} bytes"
                            )));
                        }
                        Some(key.to_string())
                    }
                };
                Ok(Request::Submit(SubmitRequest {
                    spec,
                    priority,
                    client,
                    idempotency_key,
                }))
            }
            "status" => Ok(Request::Status(u64_member(value, "job")?)),
            "stream" => Ok(Request::Stream(u64_member(value, "job")?)),
            "result" => Ok(Request::Result(u64_member(value, "job")?)),
            "poff" => Ok(Request::Poff(PoffRequest::from_json(value)?)),
            "metrics" => Ok(Request::Metrics),
            "events" => {
                Ok(Request::Events {
                    limit: match value.get("limit") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            WireError("'limit' must be an unsigned integer".into())
                        })?),
                    },
                    job: match value.get("job") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            WireError("'job' must be an unsigned integer".into())
                        })?),
                    },
                })
            }
            "trace" => {
                Ok(Request::Trace {
                    limit: match value.get("limit") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            WireError("'limit' must be an unsigned integer".into())
                        })?),
                    },
                    job: match value.get("job") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            WireError("'job' must be an unsigned integer".into())
                        })?),
                    },
                })
            }
            "alerts" => Ok(Request::Alerts),
            "cancel" => Ok(Request::Cancel(u64_member(value, "job")?)),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError(format!("unknown request type '{other}'"))),
        }
    }
}

/// Server self-description carried by a `pong` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Protocol version (the `"v"` member; see [`PROTOCOL_VERSION`]).
    pub v: u64,
    /// Fingerprint of the served [`sfi_core::CaseStudyConfig`].
    pub study_fingerprint: u64,
    /// STA limit at the nominal voltage, MHz.
    pub sta_limit_mhz: f64,
    /// The nominal supply voltage.
    pub nominal_vdd: f64,
    /// Characterized supply voltages.
    pub voltages: Vec<f64>,
    /// Whether the daemon started warm from the characterization cache.
    pub characterization_cache_hit: bool,
    /// Jobs submitted to this daemon so far.
    pub jobs: usize,
    /// Jobs currently running.
    pub running_jobs: usize,
    /// Concurrency slots of the scheduler.
    pub max_concurrent_jobs: usize,
    /// Engine worker threads each running job is budgeted.
    pub threads_per_job: usize,
    /// Per-client queued-jobs quota (`None` = unlimited).
    pub max_queued_per_client: Option<usize>,
    /// Per-client running-jobs quota (`None` = unlimited).
    pub max_running_per_client: Option<usize>,
    /// Retained-result byte cap (`None` = retain until shutdown).
    pub result_cap_bytes: Option<usize>,
    /// Result bytes currently retained.
    pub retained_result_bytes: usize,
    /// Whether a Prometheus listener (`--metrics-addr`) is serving.
    /// The `metrics`/`events` frames are always available.
    pub metrics_enabled: bool,
    /// Cooperative preemptions performed since daemon start.
    pub preemptions_total: u64,
    /// Retained results evicted under the byte cap since daemon start.
    pub evictions_total: u64,
    /// Events discarded from the bounded in-memory ring since daemon
    /// start (also exported as `sfi_events_dropped_total`).
    pub events_dropped_total: u64,
    /// Whether the daemon is draining: running jobs finish but new
    /// submissions are refused with the `draining` error code.
    pub draining: bool,
}

impl ServerInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::Str("pong".into())),
            ("v", Json::Num(self.v as f64)),
            (
                "study_fingerprint",
                Json::Str(self.study_fingerprint.to_string()),
            ),
            ("sta_limit_mhz", Json::Num(self.sta_limit_mhz)),
            ("nominal_vdd", Json::Num(self.nominal_vdd)),
            (
                "voltages",
                Json::Arr(self.voltages.iter().map(|&v| Json::Num(v)).collect()),
            ),
            (
                "characterization_cache_hit",
                Json::Bool(self.characterization_cache_hit),
            ),
            ("jobs", Json::Num(self.jobs as f64)),
            ("running_jobs", Json::Num(self.running_jobs as f64)),
            (
                "max_concurrent_jobs",
                Json::Num(self.max_concurrent_jobs as f64),
            ),
            ("threads_per_job", Json::Num(self.threads_per_job as f64)),
            ("max_queued_per_client", opt_num(self.max_queued_per_client)),
            (
                "max_running_per_client",
                opt_num(self.max_running_per_client),
            ),
            ("result_cap_bytes", opt_num(self.result_cap_bytes)),
            (
                "retained_result_bytes",
                Json::Num(self.retained_result_bytes as f64),
            ),
            ("metrics_enabled", Json::Bool(self.metrics_enabled)),
            (
                "preemptions_total",
                Json::Num(self.preemptions_total as f64),
            ),
            ("evictions_total", Json::Num(self.evictions_total as f64)),
            (
                "events_dropped_total",
                Json::Num(self.events_dropped_total as f64),
            ),
            ("draining", Json::Bool(self.draining)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(ServerInfo {
            v: u64_member(value, "v")?,
            study_fingerprint: u64_member(value, "study_fingerprint")?,
            sta_limit_mhz: finite(value, "sta_limit_mhz")?,
            nominal_vdd: finite(value, "nominal_vdd")?,
            voltages: value
                .get("voltages")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError("'voltages' must be an array".into()))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|v| v.is_finite())
                        .ok_or_else(|| WireError("'voltages' entries must be numbers".into()))
                })
                .collect::<Result<_, _>>()?,
            characterization_cache_hit: bool_member(value, "characterization_cache_hit")?,
            jobs: u64_member(value, "jobs")? as usize,
            running_jobs: u64_member(value, "running_jobs")? as usize,
            max_concurrent_jobs: u64_member(value, "max_concurrent_jobs")? as usize,
            threads_per_job: u64_member(value, "threads_per_job")? as usize,
            max_queued_per_client: opt_u64_member(value, "max_queued_per_client")?
                .map(|n| n as usize),
            max_running_per_client: opt_u64_member(value, "max_running_per_client")?
                .map(|n| n as usize),
            result_cap_bytes: opt_u64_member(value, "result_cap_bytes")?.map(|n| n as usize),
            retained_result_bytes: u64_member(value, "retained_result_bytes")? as usize,
            // Absent on frames from pre-observability daemons: the four
            // members below are additive, so decoding defaults them.
            metrics_enabled: value
                .get("metrics_enabled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            preemptions_total: value
                .get("preemptions_total")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            evictions_total: value
                .get("evictions_total")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            events_dropped_total: value
                .get("events_dropped_total")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            draining: value
                .get("draining")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

/// One frequency evaluated by a PoFF bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoffPoint {
    /// The evaluated clock frequency, MHz.
    pub freq_mhz: f64,
    /// Fraction of trials with bit-exact output.
    pub correct_fraction: f64,
    /// Fraction of trials that ran to completion.
    pub finished_fraction: f64,
}

/// The outcome of a PoFF query (`poff` response frame).
#[derive(Debug, Clone, PartialEq)]
pub struct PoffReply {
    /// The located point of first failure, if any failure was found.
    pub poff_mhz: Option<f64>,
    /// Frequencies the bisection actually evaluated.
    pub cells_evaluated: usize,
    /// Every evaluated point, in evaluation order.
    pub evaluated: Vec<PoffPoint>,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `ping`.
    Pong(ServerInfo),
    /// Acknowledgement of an accepted `submit`.
    Submitted {
        /// The assigned job id.
        job: u64,
        /// Number of cells the campaign will run.
        total_cells: usize,
        /// The instantiated spec's fingerprint.
        fingerprint: u64,
        /// The scheduling class the job was accepted at.
        priority: Priority,
    },
    /// Reply to `status`.
    Status(JobStatus),
    /// One streamed cell (`stream` emits zero or more of these).
    Cell {
        /// The job the cell belongs to.
        job: u64,
        /// Stream position (0-based, completion order).
        index: usize,
        /// The cell document (campaign checkpoint cell format).
        cell: Json,
    },
    /// Terminates a `stream`.
    End {
        /// The streamed job.
        job: u64,
        /// The job's final state.
        state: JobState,
        /// How many `cell` frames the stream carried.
        streamed_cells: usize,
    },
    /// Reply to `result`.
    ResultDoc {
        /// The fetched job.
        job: u64,
        /// The full result document (campaign checkpoint format).
        document: Json,
    },
    /// Reply to `poff`.
    Poff(PoffReply),
    /// Reply to `metrics`: a point-in-time registry snapshot.
    ///
    /// The snapshot document is carried verbatim (see
    /// `crate::metrics::snapshot_to_json` for its layout) so the frame
    /// round-trips byte-exactly regardless of which metric families a
    /// future daemon adds.
    Metrics {
        /// The snapshot document: `{"families": [...]}`.
        snapshot: Json,
    },
    /// Reply to `events`: recent structured events, oldest first.
    Events {
        /// The event documents, oldest first.
        events: Json,
        /// Events discarded because the ring overflowed (cumulative).
        dropped: u64,
    },
    /// Reply to `trace`: recent trace records, oldest first.
    ///
    /// The record documents are carried verbatim (see
    /// `crate::metrics::trace_to_json` for their layout) so the frame
    /// round-trips byte-exactly as the span vocabulary grows.
    Trace {
        /// The trace record documents, oldest first.
        spans: Json,
        /// Records discarded because the store overflowed (cumulative).
        dropped: u64,
    },
    /// Reply to `alerts`: one status document per installed rule.
    Alerts {
        /// The rule status documents (see `crate::metrics::alerts_to_json`).
        alerts: Json,
    },
    /// Acknowledgement of a `cancel`.
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
    /// Acknowledgement of `drain`: the daemon now refuses new submits,
    /// finishes (or checkpoints) its running jobs, then exits.
    DrainStarted {
        /// Jobs that were running when the drain began.
        running_jobs: usize,
    },
    /// Acknowledgement of `shutdown`; the daemon exits afterwards.
    Bye,
    /// Any request that could not be served.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Optional structured payload describing the rejection (e.g. the
        /// analyzer findings of a refused guest program).  Additive in v1:
        /// the member is absent when there is nothing structured to say,
        /// and v1 clients that only read `code`/`message` keep working.
        detail: Option<Json>,
    },
}

impl Response {
    /// Convenience constructor for error frames.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
            detail: None,
        }
    }

    /// An error frame carrying a structured `detail` payload.
    pub fn error_with_detail(
        code: ErrorCode,
        message: impl Into<String>,
        detail: Json,
    ) -> Response {
        Response::Error {
            code,
            message: message.into(),
            detail: Some(detail),
        }
    }

    /// Serializes to a frame document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong(info) => info.to_json(),
            Response::Submitted {
                job,
                total_cells,
                fingerprint,
                priority,
            } => Json::obj([
                ("type", Json::Str("submitted".into())),
                ("job", Json::Str(job.to_string())),
                ("total_cells", Json::Num(*total_cells as f64)),
                ("fingerprint", Json::Str(fingerprint.to_string())),
                ("priority", Json::Str(priority.as_str().into())),
            ]),
            Response::Status(status) => Json::obj([
                ("type", Json::Str("status".into())),
                ("job", Json::Str(status.job.to_string())),
                ("state", Json::Str(status.state.as_str().into())),
                ("priority", Json::Str(status.priority.as_str().into())),
                ("client", Json::Str(status.client.clone())),
                ("completed_cells", Json::Num(status.completed_cells as f64)),
                ("total_cells", Json::Num(status.total_cells as f64)),
                ("executed_trials", Json::Num(status.executed_trials as f64)),
                ("preemptions", Json::Num(status.preemptions as f64)),
                ("evicted", Json::Bool(status.evicted)),
                (
                    "error",
                    match &status.error {
                        Some(message) => Json::Str(message.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Cell { job, index, cell } => Json::obj([
                ("type", Json::Str("cell".into())),
                ("job", Json::Str(job.to_string())),
                ("index", Json::Num(*index as f64)),
                ("cell", cell.clone()),
            ]),
            Response::End {
                job,
                state,
                streamed_cells,
            } => Json::obj([
                ("type", Json::Str("end".into())),
                ("job", Json::Str(job.to_string())),
                ("state", Json::Str(state.as_str().into())),
                ("streamed_cells", Json::Num(*streamed_cells as f64)),
            ]),
            Response::ResultDoc { job, document } => Json::obj([
                ("type", Json::Str("result".into())),
                ("job", Json::Str(job.to_string())),
                ("document", document.clone()),
            ]),
            Response::Poff(reply) => Json::obj([
                ("type", Json::Str("poff".into())),
                (
                    "poff_mhz",
                    match reply.poff_mhz {
                        Some(freq) => Json::Num(freq),
                        None => Json::Null,
                    },
                ),
                ("cells_evaluated", Json::Num(reply.cells_evaluated as f64)),
                (
                    "evaluated",
                    Json::Arr(
                        reply
                            .evaluated
                            .iter()
                            .map(|point| {
                                Json::obj([
                                    ("freq_mhz", Json::Num(point.freq_mhz)),
                                    ("correct_fraction", Json::Num(point.correct_fraction)),
                                    ("finished_fraction", Json::Num(point.finished_fraction)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Metrics { snapshot } => Json::obj([
                ("type", Json::Str("metrics".into())),
                ("snapshot", snapshot.clone()),
            ]),
            Response::Events { events, dropped } => Json::obj([
                ("type", Json::Str("events".into())),
                ("events", events.clone()),
                ("dropped", Json::Num(*dropped as f64)),
            ]),
            Response::Trace { spans, dropped } => Json::obj([
                ("type", Json::Str("trace".into())),
                ("spans", spans.clone()),
                ("dropped", Json::Num(*dropped as f64)),
            ]),
            Response::Alerts { alerts } => Json::obj([
                ("type", Json::Str("alerts".into())),
                ("alerts", alerts.clone()),
            ]),
            Response::Cancelled { job } => Json::obj([
                ("type", Json::Str("cancelled".into())),
                ("job", Json::Str(job.to_string())),
            ]),
            Response::DrainStarted { running_jobs } => Json::obj([
                ("type", Json::Str("drain_started".into())),
                ("running_jobs", Json::Num(*running_jobs as f64)),
            ]),
            Response::Bye => Json::obj([("type", Json::Str("bye".into()))]),
            Response::Error {
                code,
                message,
                detail,
            } => {
                let mut members = vec![
                    ("type", Json::Str("error".into())),
                    ("code", Json::Str(code.as_str().into())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(detail) = detail {
                    members.push(("detail", detail.clone()));
                }
                Json::obj(members)
            }
        }
    }

    /// Decodes a frame document.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError("missing response 'type'".into()))?;
        match kind {
            "pong" => Ok(Response::Pong(ServerInfo::from_json(value)?)),
            "submitted" => Ok(Response::Submitted {
                job: u64_member(value, "job")?,
                total_cells: u64_member(value, "total_cells")? as usize,
                fingerprint: u64_member(value, "fingerprint")?,
                priority: {
                    let name = str_member(value, "priority")?;
                    Priority::parse(name)
                        .ok_or_else(|| WireError(format!("unknown priority '{name}'")))?
                },
            }),
            "status" => Ok(Response::Status(JobStatus {
                job: u64_member(value, "job")?,
                state: {
                    let name = str_member(value, "state")?;
                    JobState::parse(name)
                        .ok_or_else(|| WireError(format!("unknown job state '{name}'")))?
                },
                priority: {
                    let name = str_member(value, "priority")?;
                    Priority::parse(name)
                        .ok_or_else(|| WireError(format!("unknown priority '{name}'")))?
                },
                client: str_member(value, "client")?.to_string(),
                completed_cells: u64_member(value, "completed_cells")? as usize,
                total_cells: u64_member(value, "total_cells")? as usize,
                executed_trials: u64_member(value, "executed_trials")? as usize,
                preemptions: u64_member(value, "preemptions")?,
                evicted: bool_member(value, "evicted")?,
                error: match value.get("error") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| WireError("'error' must be a string or null".into()))?
                            .to_string(),
                    ),
                },
            })),
            "cell" => Ok(Response::Cell {
                job: u64_member(value, "job")?,
                index: u64_member(value, "index")? as usize,
                cell: value
                    .get("cell")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'cell'".into()))?,
            }),
            "end" => Ok(Response::End {
                job: u64_member(value, "job")?,
                state: {
                    let name = str_member(value, "state")?;
                    JobState::parse(name)
                        .ok_or_else(|| WireError(format!("unknown job state '{name}'")))?
                },
                streamed_cells: u64_member(value, "streamed_cells")? as usize,
            }),
            "result" => Ok(Response::ResultDoc {
                job: u64_member(value, "job")?,
                document: value
                    .get("document")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'document'".into()))?,
            }),
            "poff" => {
                Ok(Response::Poff(PoffReply {
                    poff_mhz: match value.get("poff_mhz") {
                        None => return Err(WireError("missing member 'poff_mhz'".into())),
                        Some(Json::Null) => None,
                        Some(v) => Some(v.as_f64().filter(|v| v.is_finite()).ok_or_else(|| {
                            WireError("'poff_mhz' must be null or a number".into())
                        })?),
                    },
                    cells_evaluated: u64_member(value, "cells_evaluated")? as usize,
                    evaluated: value
                        .get("evaluated")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| WireError("'evaluated' must be an array".into()))?
                        .iter()
                        .map(|point| {
                            Ok(PoffPoint {
                                freq_mhz: finite(point, "freq_mhz")?,
                                correct_fraction: finite(point, "correct_fraction")?,
                                finished_fraction: finite(point, "finished_fraction")?,
                            })
                        })
                        .collect::<Result<_, WireError>>()?,
                }))
            }
            "metrics" => Ok(Response::Metrics {
                snapshot: value
                    .get("snapshot")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'snapshot'".into()))?,
            }),
            "events" => Ok(Response::Events {
                events: value
                    .get("events")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'events'".into()))?,
                dropped: u64_member(value, "dropped")?,
            }),
            "trace" => Ok(Response::Trace {
                spans: value
                    .get("spans")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'spans'".into()))?,
                dropped: u64_member(value, "dropped")?,
            }),
            "alerts" => Ok(Response::Alerts {
                alerts: value
                    .get("alerts")
                    .cloned()
                    .ok_or_else(|| WireError("missing member 'alerts'".into()))?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: u64_member(value, "job")?,
            }),
            "drain_started" => Ok(Response::DrainStarted {
                running_jobs: u64_member(value, "running_jobs")? as usize,
            }),
            "bye" => Ok(Response::Bye),
            "error" => Ok(Response::Error {
                code: {
                    let name = str_member(value, "code")?;
                    ErrorCode::parse(name)
                        .ok_or_else(|| WireError(format!("unknown error code '{name}'")))?
                },
                message: str_member(value, "message")?.to_string(),
                detail: match value.get("detail") {
                    None | Some(Json::Null) => None,
                    Some(detail) => Some(detail.clone()),
                },
            }),
            other => Err(WireError(format!("unknown response type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BenchmarkDef, BudgetDef, CellDef};
    use std::io::BufReader;

    fn demo_def() -> CampaignDef {
        let mut def = CampaignDef::new("proto", 42);
        let b = def.add_benchmark(BenchmarkDef::Dijkstra { nodes: 10, seed: 1 });
        def.cells.push(CellDef {
            benchmark: b,
            model: FaultModel::StaWithNoise,
            freq_mhz: 700.0,
            vdd: 0.7,
            noise_sigma_mv: 5.0,
            budget: BudgetDef::fixed(3),
        });
        def
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let requests = [
            Request::Ping,
            Request::Submit(SubmitRequest::new(demo_def())),
            Request::Submit(SubmitRequest {
                spec: demo_def(),
                priority: Priority::High,
                client: Some("alice".into()),
                idempotency_key: None,
            }),
            Request::Submit(SubmitRequest {
                spec: demo_def(),
                priority: Priority::Normal,
                client: Some("alice".into()),
                idempotency_key: Some("alice-campaign-1".into()),
            }),
            Request::Status(7),
            Request::Stream(7),
            Request::Result(u64::MAX),
            Request::Poff(PoffRequest {
                benchmark: BenchmarkDef::Median {
                    values: 21,
                    seed: 3,
                },
                model: FaultModel::StaPeriodViolation,
                vdd: 0.7,
                noise_sigma_mv: 0.0,
                lo_mhz: 600.0,
                hi_mhz: 900.0,
                resolution_mhz: 5.0,
                trials: 4,
                seed: 11,
            }),
            Request::Metrics,
            Request::Events {
                limit: None,
                job: None,
            },
            Request::Events {
                limit: Some(25),
                job: Some(7),
            },
            Request::Trace {
                limit: None,
                job: None,
            },
            Request::Trace {
                limit: Some(500),
                job: Some(7),
            },
            Request::Alerts,
            Request::Cancel(7),
            Request::Drain,
            Request::Shutdown,
        ];
        // All frames through one pipe, in order.
        let mut buf = Vec::new();
        for req in &requests {
            write_frame(&mut buf, &req.to_json()).expect("writes");
        }
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), requests.len());

        let mut reader = BufReader::new(buf.as_slice());
        for req in &requests {
            let frame = read_frame(&mut reader)
                .expect("io ok")
                .expect("not eof")
                .expect("parses");
            let back = Request::from_json(&frame).expect("decodes");
            assert_eq!(&back, req);
        }
        assert!(
            read_frame(&mut reader).expect("io ok").is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn responses_round_trip_through_json() {
        use crate::jobs::{JobState, JobStatus};
        let responses = [
            Response::Pong(ServerInfo {
                v: PROTOCOL_VERSION,
                study_fingerprint: u64::MAX,
                sta_limit_mhz: 707.25,
                nominal_vdd: 0.7,
                voltages: vec![0.7, 0.8],
                characterization_cache_hit: true,
                jobs: 3,
                running_jobs: 2,
                max_concurrent_jobs: 2,
                threads_per_job: 4,
                max_queued_per_client: Some(8),
                max_running_per_client: None,
                result_cap_bytes: Some(1 << 20),
                retained_result_bytes: 12345,
                metrics_enabled: true,
                preemptions_total: 4,
                evictions_total: 1,
                events_dropped_total: 2,
                draining: true,
            }),
            Response::Submitted {
                job: 7,
                total_cells: 4,
                fingerprint: 0xDEAD_BEEF,
                priority: Priority::High,
            },
            Response::Status(JobStatus {
                job: 7,
                state: JobState::Running,
                priority: Priority::Low,
                client: "alice".into(),
                completed_cells: 2,
                total_cells: 4,
                executed_trials: 60,
                preemptions: 1,
                evicted: false,
                error: None,
            }),
            Response::Cell {
                job: 7,
                index: 0,
                cell: Json::obj([("cell", Json::Num(0.0))]),
            },
            Response::End {
                job: 7,
                state: JobState::Done,
                streamed_cells: 4,
            },
            Response::ResultDoc {
                job: 7,
                document: Json::obj([("version", Json::Num(1.0))]),
            },
            Response::Poff(PoffReply {
                poff_mhz: Some(725.5),
                cells_evaluated: 5,
                evaluated: vec![PoffPoint {
                    freq_mhz: 725.5,
                    correct_fraction: 0.5,
                    finished_fraction: 1.0,
                }],
            }),
            Response::Poff(PoffReply {
                poff_mhz: None,
                cells_evaluated: 2,
                evaluated: Vec::new(),
            }),
            Response::Metrics {
                snapshot: Json::obj([(
                    "families",
                    Json::Arr(vec![Json::obj([
                        ("name", Json::Str("sfi_trials_total".into())),
                        ("kind", Json::Str("counter".into())),
                    ])]),
                )]),
            },
            Response::Events {
                events: Json::Arr(vec![Json::obj([
                    ("kind", Json::Str("job_submitted".into())),
                    ("ts_us", Json::Str("12".into())),
                ])]),
                dropped: 3,
            },
            Response::Trace {
                spans: Json::Arr(vec![Json::obj([
                    ("cat", Json::Str("engine".into())),
                    ("dur_us", Json::Str("42".into())),
                    ("name", Json::Str("trial".into())),
                    ("ph", Json::Str("X".into())),
                    ("tid", Json::Num(2.0)),
                    ("ts_us", Json::Str("12".into())),
                ])]),
                dropped: 1,
            },
            Response::Alerts {
                alerts: Json::Arr(vec![Json::obj([
                    ("firing", Json::Bool(false)),
                    ("rule", Json::Str("scheduler_queue_saturated".into())),
                ])]),
            },
            Response::Cancelled { job: 7 },
            Response::DrainStarted { running_jobs: 2 },
            Response::Bye,
            Response::error(ErrorCode::QuotaExceeded, "client 'alice' is full"),
            Response::error(ErrorCode::Draining, "the daemon is draining"),
        ];
        for response in &responses {
            let doc = response.to_json();
            let text = doc.to_string();
            let parsed = Json::parse(&text).expect("parses");
            let back = Response::from_json(&parsed).expect("decodes");
            assert_eq!(&back, response, "{text}");
        }
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownJob,
            ErrorCode::QuotaExceeded,
            ErrorCode::ResultEvicted,
            ErrorCode::NoResult,
            ErrorCode::ResultTooLarge,
            ErrorCode::ShuttingDown,
            ErrorCode::Draining,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn submit_rejects_bad_priority_and_client() {
        let spec = demo_def().to_json();
        let bad_priority = Json::obj([
            ("type", Json::Str("submit".into())),
            ("spec", spec.clone()),
            ("priority", Json::Str("urgent".into())),
        ]);
        assert!(Request::from_json(&bad_priority).is_err());
        let bad_client = Json::obj([
            ("type", Json::Str("submit".into())),
            ("spec", spec.clone()),
            ("client", Json::Str("x".repeat(MAX_CLIENT_ID_BYTES + 1))),
        ]);
        assert!(Request::from_json(&bad_client).is_err());
        let empty_client = Json::obj([
            ("type", Json::Str("submit".into())),
            ("spec", spec),
            ("client", Json::Str(String::new())),
        ]);
        assert!(Request::from_json(&empty_client).is_err());
    }

    #[test]
    fn campaign_spec_survives_the_submit_frame() {
        // The acceptance-relevant property: a spec pushed through the
        // protocol framing instantiates to the same campaign fingerprint.
        let def = demo_def();
        let direct = def.instantiate().expect("instantiates");

        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Request::Submit(SubmitRequest::new(def)).to_json(),
        )
        .expect("writes");
        let mut reader = BufReader::new(buf.as_slice());
        let frame = read_frame(&mut reader).unwrap().unwrap().unwrap();
        let Request::Submit(received) = Request::from_json(&frame).unwrap() else {
            panic!("not a submit");
        };
        let remote = received.spec.instantiate().expect("instantiates");
        assert_eq!(remote.fingerprint(), direct.fingerprint());
        assert_eq!(received.priority, Priority::Normal);
        assert_eq!(received.client, None);
    }

    #[test]
    fn malformed_frames_are_reported_not_fatal() {
        let mut reader = BufReader::new("{\"type\":}\n{\"type\":\"ping\"}\n".as_bytes());
        let bad = read_frame(&mut reader).expect("io ok").expect("not eof");
        assert!(bad.is_err(), "malformed frame yields a wire error");
        // The reader is still synchronized: the next frame parses.
        let good = read_frame(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(Request::from_json(&good), Ok(Request::Ping));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut reader = BufReader::new("\n  \n{\"type\":\"ping\"}\n".as_bytes());
        let frame = read_frame(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(Request::from_json(&frame), Ok(Request::Ping));
    }

    #[test]
    fn oversized_frames_are_io_errors() {
        let huge = format!("{{\"type\":\"{}\"}}\n", "x".repeat(MAX_FRAME_BYTES));
        let mut reader = BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut reader).is_err());
    }
}
