//! The daemon's job table and multi-job scheduler.
//!
//! Submitted campaigns become *jobs*: numbered entries that move through
//! `queued → running → done | failed | cancelled` (with a `running →
//! queued` back-edge for preempted jobs).  The scheduler keeps up to
//! [`SchedulerConfig::max_concurrent_jobs`] jobs running at once, each on
//! its own [`CampaignEngine`] with an equal share of the global
//! worker-thread budget, so campaign jobs never oversubscribe
//! [`SchedulerConfig::threads`] no matter how many are in flight.
//! (Synchronous `poff` queries run on their connection handlers outside
//! these slots, each capped at one job's thread budget.)
//!
//! # Priorities and preemption
//!
//! Every job carries a [`Priority`] (`low`/`normal`/`high`); dispatch is
//! strict priority order, FIFO within a class.  When a job outranking
//! every free slot arrives, the scheduler requests *cooperative
//! preemption* of the lowest-priority running job: the victim's engine
//! stops at the next trial boundary, its completed cells stay in the
//! table, and the job is resubmitted at the head of its class queue.  On
//! resume those cells are seeded back into the engine
//! ([`CampaignEngine::with_seed_cells`]), so the finished job is
//! bit-identical to one that was never preempted.
//!
//! # Quotas
//!
//! Per-client quotas bound how much of the daemon one client id can
//! consume: at most [`TableLimits::max_queued_per_client`] queued jobs
//! (excess submissions are rejected with a `quota_exceeded` error) and at
//! most [`TableLimits::max_running_per_client`] running jobs (excess jobs
//! simply wait in the queue while other clients' jobs overtake them).
//! Jobs the scheduler itself requeued after a preemption do not count
//! against the queued quota.
//!
//! # Result retention
//!
//! Terminal jobs retain their data for later `result`/`stream` fetches,
//! up to [`TableLimits::result_cap_bytes`] of serialized JSON across all
//! jobs (done jobs retain their result document plus streamed cells;
//! cancelled and failed jobs their streamed cells).  Above the cap, the
//! least-recently-fetched entries are evicted; fetching an evicted
//! result reports `result_evicted` (the job's final status survives
//! eviction, only the data is dropped).

use sfi_campaign::{checkpoint, CampaignEngine, CampaignSpec, CellResult};
use sfi_core::json::Json;
use sfi_core::CaseStudy;
use sfi_obs::clock;
use sfi_obs::Event;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Scheduling priority of a job: strict priority dispatch, FIFO within a
/// class.  A queued `high` job may cooperatively preempt a running `low`
/// or `normal` job (and a queued `normal` job a running `low` one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Runs when nothing more urgent is queued; preemptible by both
    /// `normal` and `high` jobs.
    Low = 0,
    /// The default class; preemptible by `high` jobs.
    Normal = 1,
    /// Dispatches before everything else and is never preempted.
    High = 2,
}

impl Priority {
    /// The wire name of the class (`"low"` / `"normal"` / `"high"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the scheduler queue (fresh, or requeued after a
    /// preemption).
    Queued,
    /// Currently executing on an engine.
    Running,
    /// Finished; the full result is available (unless evicted).
    Done,
    /// Aborted by an execution error.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name; `None` for anything else.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the job can no longer make progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time snapshot of one job, as reported to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's scheduling priority.
    pub priority: Priority,
    /// The submitting client id.
    pub client: String,
    /// Cells completed so far.
    pub completed_cells: usize,
    /// Total cells of the campaign.
    pub total_cells: usize,
    /// Trials actually simulated, accumulated across preemptions (final
    /// once the job is terminal).
    pub executed_trials: usize,
    /// How many times the job was preempted by a higher-priority one.
    pub preemptions: u64,
    /// Whether the finished result was evicted by the retention cap.
    pub evicted: bool,
    /// Failure message, if the job failed.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job can no longer make progress.
    pub fn is_terminal(&self) -> bool {
        self.state.is_terminal()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The client already has the maximum number of queued jobs.
    QuotaExceeded(String),
    /// The daemon is shutting down.
    ShuttingDown,
    /// The daemon is draining: running jobs finish but new submissions
    /// are refused.
    Draining,
}

struct JobEntry {
    /// The instantiated campaign (validated and built once, at submit).
    spec: CampaignSpec,
    state: JobState,
    priority: Priority,
    client: String,
    total_cells: usize,
    /// Streamed per-cell documents (checkpoint cell format), completion
    /// order.  Doubles as the preemption checkpoint: on resume these are
    /// decoded and seeded back into the engine.
    cells: Vec<Json>,
    /// Cell indices already present in `cells` (so re-announced seeded
    /// cells are not streamed twice).
    seen_cells: BTreeSet<usize>,
    /// Full result document, once done (dropped on eviction).
    result: Option<Json>,
    executed_trials: usize,
    error: Option<String>,
    /// Cooperative stop flag of the current (or next) run; replaced with
    /// a fresh flag when the job is requeued after a preemption.
    cancel: Arc<AtomicBool>,
    /// The client (or daemon shutdown) asked for cancellation.
    user_cancelled: bool,
    /// The scheduler asked the running job to yield its slot.
    preempt_requested: bool,
    preemptions: u64,
    /// Retained result size (serialized result document + cell frames).
    retained_bytes: usize,
    evicted: bool,
    /// LRU stamp, bumped on every result/stream fetch.
    last_access: u64,
    /// Monotonic time ([`clock::now_micros`]) the job was (re)enqueued;
    /// feeds the wait-latency histogram at dispatch.  Monotonic by
    /// construction, so the latency can never go negative under
    /// wall-clock adjustment.
    enqueued_us: u64,
    /// Monotonic time the current running segment started.
    started_us: u64,
    /// Running time accumulated across preemption segments, observed
    /// into the run-latency histogram once the job is terminal.
    run_accum_us: u64,
    /// Monotonic time of the original client submission; anchors the
    /// `job_lifetime` trace span (preemptions reset `enqueued_us`, never
    /// this).
    submitted_us: u64,
}

impl JobEntry {
    fn status(&self, job: u64) -> JobStatus {
        JobStatus {
            job,
            state: self.state,
            priority: self.priority,
            client: self.client.clone(),
            completed_cells: self.cells.len(),
            total_cells: self.total_cells,
            executed_trials: self.executed_trials,
            preemptions: self.preemptions,
            evicted: self.evicted,
            error: self.error.clone(),
        }
    }
}

/// Per-client and retention limits enforced by the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableLimits {
    /// Max jobs one client id may have queued (`None` = unlimited);
    /// submissions beyond it are rejected.
    pub max_queued_per_client: Option<usize>,
    /// Max jobs one client id may have running (`None` = unlimited);
    /// excess jobs wait in the queue.
    pub max_running_per_client: Option<usize>,
    /// Byte cap on retained result JSON across all jobs (`None` =
    /// retain everything until shutdown).
    pub result_cap_bytes: Option<usize>,
}

struct Inner {
    next_id: u64,
    stop: bool,
    /// Draining: running jobs finish, queued jobs stay queued (the
    /// journal carries them to the next daemon generation), and new
    /// submissions are refused with [`SubmitRejected::Draining`].
    draining: bool,
    /// One FIFO queue per priority class, indexed by `Priority::index`.
    queues: [VecDeque<u64>; 3],
    running: Vec<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    /// Total retained result bytes across all jobs.
    retained_total: usize,
    /// Monotonic clock for LRU stamps.
    lru_clock: u64,
    /// Cumulative preemptions since daemon start (reported by `pong`).
    preemptions_total: u64,
    /// Cumulative result evictions since daemon start.
    evictions_total: u64,
    /// Idempotency-key deduplication: `client\0key` → assigned job id.
    idempotency_keys: BTreeMap<String, u64>,
}

/// The deduplication map key of one `(client, idempotency key)` pair.
fn idempotency_map_key(client: &str, key: &str) -> String {
    format!("{client}\u{0}{key}")
}

impl Inner {
    /// Queued jobs counted against `client`'s quota.  Jobs the scheduler
    /// itself requeued after a preemption (`preemptions > 0`) are
    /// excluded: the client did not put them back in the queue, so they
    /// must not consume its submission quota.
    fn queued_count(&self, client: &str) -> usize {
        self.jobs
            .values()
            .filter(|e| e.state == JobState::Queued && e.preemptions == 0 && e.client == client)
            .count()
    }

    fn running_count(&self, client: &str) -> usize {
        self.running
            .iter()
            .filter(|id| self.jobs.get(id).is_some_and(|e| e.client == client))
            .count()
    }

    fn touch(&mut self, id: u64) {
        self.lru_clock += 1;
        let stamp = self.lru_clock;
        if let Some(entry) = self.jobs.get_mut(&id) {
            entry.last_access = stamp;
        }
    }

    /// Evicts least-recently-fetched finished results until the retained
    /// total fits under the cap again; returns the evicted job ids so the
    /// caller can journal them outside the lock.
    fn evict_to_cap(&mut self, cap: usize) -> Vec<u64> {
        let mut evicted = Vec::new();
        while self.retained_total > cap {
            let victim = self
                .jobs
                .iter()
                .filter(|(_, e)| e.retained_bytes > 0)
                .min_by_key(|(_, e)| e.last_access)
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            let entry = self.jobs.get_mut(&id).expect("victim exists");
            let released = entry.retained_bytes;
            self.retained_total -= released;
            entry.retained_bytes = 0;
            entry.result = None;
            entry.cells = Vec::new();
            entry.evicted = true;
            self.evictions_total += 1;
            let metrics = sfi_obs::metrics();
            metrics.sched_evictions.inc();
            metrics.sched_evicted_bytes.add(released as u64);
            sfi_obs::events().push(
                Event::new("result_evicted")
                    .job(id)
                    .field("bytes", released),
            );
            evicted.push(id);
        }
        evicted
    }

    /// Mirrors the queue depths and running-slot count into the metric
    /// gauges; called after every queue/running mutation.
    fn sync_gauges(&self) {
        let metrics = sfi_obs::metrics();
        for (gauge, queue) in metrics.sched_queue_depth.iter().zip(&self.queues) {
            gauge.set(queue.len() as i64);
        }
        metrics.sched_running.set(self.running.len() as i64);
    }
}

/// Cumulative scheduler totals since daemon start (reported by `pong`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableTotals {
    /// Cooperative preemptions performed.
    pub preemptions: u64,
    /// Retained results evicted under the byte cap.
    pub evictions: u64,
}

/// The shared job table: priority queues, per-job state, streaming
/// buffers and the result-retention accounting.
pub struct JobTable {
    inner: Mutex<Inner>,
    limits: TableLimits,
    /// The durable job journal, when the daemon runs with `--state-dir`.
    journal: Option<Arc<crate::journal::Journal>>,
    /// Wakes the scheduler when a job is queued, a slot frees up or the
    /// daemon stops.
    scheduler_wake: Condvar,
    /// Wakes streaming handlers when any job gains a cell or changes
    /// state.
    update: Condvar,
}

/// What a streaming handler gets when it asks for the next cell of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum NextCell {
    /// A newly completed cell document.
    Cell(Json),
    /// No more cells will arrive; the job ended in this state.
    End(JobState),
    /// The job finished but its retained cells were evicted.
    Evicted,
    /// The job id is unknown.
    Unknown,
}

/// What a result fetch yields.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultFetch {
    /// The finished job's full result document.
    Document(Json),
    /// The job finished but its result was evicted by the retention cap.
    Evicted,
    /// The job is not in the `done` state (still in flight, failed or
    /// cancelled), so there is no result document.
    NotReady,
    /// The job id is unknown.
    Unknown,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table with no quotas and unlimited result retention.
    pub fn new() -> Self {
        JobTable::with_limits(TableLimits::default())
    }

    /// An empty table enforcing `limits`.
    pub fn with_limits(limits: TableLimits) -> Self {
        JobTable {
            inner: Mutex::new(Inner {
                next_id: 1,
                stop: false,
                draining: false,
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                running: Vec::new(),
                jobs: BTreeMap::new(),
                retained_total: 0,
                lru_clock: 0,
                preemptions_total: 0,
                evictions_total: 0,
                idempotency_keys: BTreeMap::new(),
            }),
            limits,
            journal: None,
            scheduler_wake: Condvar::new(),
            update: Condvar::new(),
        }
    }

    /// Attaches the durable job journal: every submit/start/cell/
    /// preempt/done/evict transition is appended (and fsync'd) from now
    /// on.
    pub fn with_journal(mut self, journal: Arc<crate::journal::Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if the daemon runs with `--state-dir`.
    pub fn journal(&self) -> Option<&crate::journal::Journal> {
        self.journal.as_deref()
    }

    /// The limits this table enforces.
    pub fn limits(&self) -> TableLimits {
        self.limits
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues an instantiated campaign for `client` at `priority`;
    /// returns the job id, or the typed rejection if the client's queued
    /// quota is exhausted or the daemon is stopping/draining.
    pub fn submit(
        &self,
        spec: CampaignSpec,
        priority: Priority,
        client: &str,
    ) -> Result<u64, SubmitRejected> {
        self.submit_keyed(spec, priority, client, None, None)
    }

    /// [`submit`](Self::submit) with durability extras: `idempotency_key`
    /// deduplicates retried submissions (the same `(client, key)` pair
    /// returns the already-assigned job id), and `spec_doc` is the wire
    /// campaign definition recorded in the journal so a restarted daemon
    /// can re-instantiate the job.
    pub fn submit_keyed(
        &self,
        spec: CampaignSpec,
        priority: Priority,
        client: &str,
        idempotency_key: Option<&str>,
        spec_doc: Option<&Json>,
    ) -> Result<u64, SubmitRejected> {
        let mut inner = self.lock();
        if inner.stop {
            return Err(SubmitRejected::ShuttingDown);
        }
        if inner.draining {
            return Err(SubmitRejected::Draining);
        }
        if let Some(key) = idempotency_key {
            if let Some(&existing) = inner
                .idempotency_keys
                .get(&idempotency_map_key(client, key))
            {
                return Ok(existing);
            }
        }
        if let Some(max) = self.limits.max_queued_per_client {
            if inner.queued_count(client) >= max {
                sfi_obs::metrics().sched_quota_rejections.inc();
                return Err(SubmitRejected::QuotaExceeded(format!(
                    "client '{client}' already has {max} queued job(s)"
                )));
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        if let Some(key) = idempotency_key {
            inner
                .idempotency_keys
                .insert(idempotency_map_key(client, key), id);
        }
        let total_cells = spec.cells().len();
        let now = clock::now_micros();
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                priority,
                client: client.to_string(),
                total_cells,
                cells: Vec::new(),
                seen_cells: BTreeSet::new(),
                result: None,
                executed_trials: 0,
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
                user_cancelled: false,
                preempt_requested: false,
                preemptions: 0,
                retained_bytes: 0,
                evicted: false,
                last_access: 0,
                enqueued_us: now,
                started_us: 0,
                run_accum_us: 0,
                submitted_us: now,
            },
        );
        inner.queues[priority.index()].push_back(id);
        sfi_obs::metrics().sched_jobs_submitted.inc();
        inner.sync_gauges();
        sfi_obs::events().push(
            Event::new("job_submitted")
                .job(id)
                .field("priority", priority.as_str())
                .field("client", client)
                .field("cells", total_cells),
        );
        // Journaled under the table lock so the submit record always
        // precedes the job's cell records (the scheduler cannot dispatch
        // the job until the lock is released).
        if let (Some(journal), Some(doc)) = (&self.journal, spec_doc) {
            journal.append_best_effort(&crate::journal::submit_record(
                id,
                doc,
                priority,
                client,
                idempotency_key,
            ));
        }
        self.scheduler_wake.notify_all();
        Ok(id)
    }

    /// The status of job `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.lock().jobs.get(&id).map(|entry| entry.status(id))
    }

    /// The retained result document of job `id`.
    pub fn result(&self, id: u64) -> ResultFetch {
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get(&id) else {
            return ResultFetch::Unknown;
        };
        if entry.evicted {
            return ResultFetch::Evicted;
        }
        match &entry.result {
            Some(doc) => {
                let doc = doc.clone();
                inner.touch(id);
                ResultFetch::Document(doc)
            }
            None => ResultFetch::NotReady,
        }
    }

    /// Requests cancellation of job `id`.  Queued jobs are cancelled
    /// immediately; running jobs stop at the next trial boundary.  Returns
    /// `false` for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return false;
        };
        entry.user_cancelled = true;
        entry.cancel.store(true, Ordering::SeqCst);
        if entry.state == JobState::Queued {
            entry.state = JobState::Cancelled;
            entry.spec = CampaignSpec::new(String::new(), 0);
            for queue in &mut inner.queues {
                queue.retain(|&q| q != id);
            }
            inner.sync_gauges();
            sfi_obs::events().push(Event::new("job_cancelled").job(id).field("state", "queued"));
        }
        self.update.notify_all();
        true
    }

    /// Initiates daemon shutdown: cancels everything and wakes the
    /// scheduler so it can drain its runners and exit.
    pub fn stop(&self) {
        let mut inner = self.lock();
        inner.stop = true;
        for queue in &mut inner.queues {
            queue.clear();
        }
        for entry in inner.jobs.values_mut() {
            entry.user_cancelled = true;
            entry.cancel.store(true, Ordering::SeqCst);
            if entry.state == JobState::Queued {
                entry.state = JobState::Cancelled;
                entry.spec = CampaignSpec::new(String::new(), 0);
            }
        }
        inner.sync_gauges();
        self.scheduler_wake.notify_all();
        self.update.notify_all();
    }

    /// Whether [`JobTable::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.lock().stop
    }

    /// Begins draining: new submissions are refused with
    /// [`SubmitRejected::Draining`], queued jobs stay queued (the journal
    /// carries them to the next daemon generation), and running jobs
    /// finish normally.  Idempotent.
    pub fn drain(&self) {
        let mut inner = self.lock();
        if !inner.draining {
            inner.draining = true;
            sfi_obs::metrics().draining.set(1);
            sfi_obs::events().push(
                Event::new("drain_begin")
                    .field("running", inner.running.len())
                    .field(
                        "queued",
                        inner.queues.iter().map(VecDeque::len).sum::<usize>(),
                    ),
            );
        }
        self.scheduler_wake.notify_all();
        self.update.notify_all();
    }

    /// Whether [`JobTable::drain`] was called.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until no job is running or `timeout` elapses; returns
    /// whether the running set drained in time.  (Queued jobs do not
    /// count: a draining daemon leaves them for its successor.)
    pub fn wait_drained(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.running.is_empty() {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            inner = self
                .update
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Restores one journaled job during restart recovery.
    ///
    /// Non-terminal jobs come back queued with their completed cells as
    /// resume seeds; terminal jobs keep their final status but report
    /// `evicted` (result bytes are not journaled, only transitions).
    pub fn restore(&self, job: crate::journal::RecoveredJob, spec: Option<CampaignSpec>) {
        let mut inner = self.lock();
        let id = job.id;
        inner.next_id = inner.next_id.max(id + 1);
        if let Some(key) = &job.idempotency_key {
            inner
                .idempotency_keys
                .insert(idempotency_map_key(&job.client, key), id);
        }
        let terminal = job.terminal.as_ref().and_then(|(state, error)| {
            JobState::parse(state)
                .filter(|s| s.is_terminal())
                .map(|s| (s, error.clone()))
        });
        let seen_cells: BTreeSet<usize> = job
            .cells
            .iter()
            .filter_map(|cell| cell.get("cell").and_then(Json::as_u64))
            .map(|index| index as usize)
            .collect();
        let executed_trials = job
            .cells
            .iter()
            .filter_map(|cell| cell.get("trials").and_then(Json::as_arr))
            .map(|trials| trials.len())
            .sum();
        let now = clock::now_micros();
        let (state, error, spec, evicted) = match (&terminal, spec) {
            (Some((state, error)), _) => (
                *state,
                error.clone(),
                CampaignSpec::new(String::new(), 0),
                true,
            ),
            (None, Some(spec)) => (JobState::Queued, None, spec, false),
            // A live job whose spec no longer instantiates (e.g. the
            // daemon restarted against a different study): keep the id
            // and status, but fail it instead of wedging the restart.
            (None, None) => (
                JobState::Failed,
                Some("journal recovery could not re-instantiate the campaign".to_string()),
                CampaignSpec::new(String::new(), 0),
                true,
            ),
        };
        let total_cells = if state == JobState::Queued {
            spec.cells().len()
        } else {
            seen_cells.len().max(job.cells.len())
        };
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                state,
                priority: job.priority,
                client: job.client.clone(),
                total_cells,
                cells: job.cells.clone(),
                seen_cells,
                result: None,
                executed_trials,
                error,
                cancel: Arc::new(AtomicBool::new(false)),
                user_cancelled: false,
                preempt_requested: false,
                preemptions: job.preemptions,
                retained_bytes: 0,
                evicted,
                last_access: 0,
                enqueued_us: now,
                started_us: 0,
                run_accum_us: 0,
                submitted_us: now,
            },
        );
        if state == JobState::Queued {
            inner.queues[job.priority.index()].push_back(id);
        }
        inner.sync_gauges();
        sfi_obs::metrics().recovered_jobs.inc();
        sfi_obs::events().push(
            Event::new("job_recovered")
                .job(id)
                .field("state", state.as_str())
                .field("cells", job.cells.len())
                .field("resumed", if job.started { "yes" } else { "no" }),
        );
        self.scheduler_wake.notify_all();
        self.update.notify_all();
    }

    /// Number of jobs ever submitted.
    pub fn job_count(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Number of jobs currently in the `running` state.
    pub fn running_count(&self) -> usize {
        self.lock().running.len()
    }

    /// Total retained result bytes across all finished jobs.
    pub fn retained_bytes(&self) -> usize {
        self.lock().retained_total
    }

    /// Cumulative preemption/eviction totals since the table was created.
    pub fn totals(&self) -> TableTotals {
        let inner = self.lock();
        TableTotals {
            preemptions: inner.preemptions_total,
            evictions: inner.evictions_total,
        }
    }

    /// Blocks until cell `index` of job `id` exists (returning it), the
    /// job reaches a terminal state with no more cells (returning
    /// [`NextCell::End`]), or the id turns out unknown or evicted.
    pub fn next_cell(&self, id: u64, index: usize) -> NextCell {
        let mut inner = self.lock();
        loop {
            let Some(entry) = inner.jobs.get(&id) else {
                return NextCell::Unknown;
            };
            if entry.evicted {
                return NextCell::Evicted;
            }
            if let Some(cell) = entry.cells.get(index) {
                let cell = cell.clone();
                inner.touch(id);
                return NextCell::Cell(cell);
            }
            if entry.state.is_terminal() {
                return NextCell::End(entry.state);
            }
            inner = self
                .update
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Blocks until job `id` reaches a terminal state; returns its final
    /// status (`None` for unknown ids).
    pub fn wait_terminal(&self, id: u64) -> Option<JobStatus> {
        let mut inner = self.lock();
        loop {
            let entry = inner.jobs.get(&id)?;
            if entry.state.is_terminal() {
                return Some(entry.status(id));
            }
            inner = self
                .update
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Execution configuration of the scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Global worker-thread budget shared by all concurrently running
    /// jobs (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Maximum number of jobs running at once; each gets an equal share
    /// of the thread budget (at least one thread).
    pub max_concurrent_jobs: usize,
    /// Directory for per-job campaign checkpoints; identical re-submitted
    /// campaigns resume instead of recomputing.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: None,
            max_concurrent_jobs: 1,
            checkpoint_dir: None,
        }
    }
}

impl SchedulerConfig {
    /// The engine thread budget of one running job: the global budget
    /// split evenly across the concurrency slots, never below one thread
    /// per job.
    pub fn threads_per_job(&self) -> usize {
        let total = self.threads.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        (total / self.max_concurrent_jobs.max(1)).max(1)
    }
}

/// What the scheduler decided to do after scanning the queues.
enum Dispatch {
    /// Start this job (already marked running; spec/cancel/seeds copied
    /// out under the lock).
    Start {
        id: u64,
        spec: CampaignSpec,
        cancel: Arc<AtomicBool>,
        seeds: Vec<CellResult>,
    },
    /// Nothing startable right now.
    Wait,
    /// Stop flag observed and all runners have drained.
    Exit,
}

/// Scans the queues (priority order, FIFO within a class, skipping
/// clients at their running quota) and either claims a job for a free
/// slot or requests preemption of a lower-priority running job.
fn pick(inner: &mut Inner, limits: &TableLimits, max_jobs: usize) -> Dispatch {
    if inner.draining {
        // A draining daemon starts nothing new: running jobs finish,
        // queued jobs wait for the next daemon generation (the journal
        // carries them across the restart).
        return Dispatch::Wait;
    }
    for class in (0..inner.queues.len()).rev() {
        let candidate = inner.queues[class].iter().copied().position(|id| {
            let Some(entry) = inner.jobs.get(&id) else {
                return false;
            };
            match limits.max_running_per_client {
                Some(max) => inner.running_count(&entry.client) < max,
                None => true,
            }
        });
        let Some(position) = candidate else { continue };
        if inner.running.len() < max_jobs {
            let id = inner.queues[class]
                .remove(position)
                .expect("position valid");
            let entry = inner.jobs.get_mut(&id).expect("queued job exists");
            entry.state = JobState::Running;
            let now = clock::now_micros();
            entry.started_us = now;
            let wait_s = clock::seconds_between(entry.enqueued_us, now);
            sfi_obs::metrics().job_wait_seconds.observe(wait_s);
            // The queued segment just ended: record it retroactively with
            // its true start so the trace shows the wait, then dispatch.
            sfi_obs::span::record_span(
                "job_queued",
                "sched",
                entry.enqueued_us,
                now.saturating_sub(entry.enqueued_us),
                0,
                Some(id),
                vec![(
                    "priority",
                    sfi_obs::FieldValue::Str(entry.priority.as_str().to_string()),
                )],
            );
            sfi_obs::span::flush_thread();
            sfi_obs::events().push(
                Event::new("job_started")
                    .job(id)
                    .field("priority", entry.priority.as_str())
                    .field("wait_s", wait_s),
            );
            let spec = entry.spec.clone();
            let cancel = entry.cancel.clone();
            // Completed cells of a preempted earlier attempt seed the
            // resumed engine; decoding failures (impossible for documents
            // we encoded ourselves) simply re-simulate the cell.
            let seeds: Vec<CellResult> = entry
                .cells
                .iter()
                .filter_map(checkpoint::cell_from_json)
                .collect();
            inner.running.push(id);
            inner.sync_gauges();
            return Dispatch::Start {
                id,
                spec,
                cancel,
                seeds,
            };
        }
        // All slots busy: ask the lowest-priority running job below this
        // class to yield (lowest class first; the most recently started
        // job within that class, so older work is preserved).  At most
        // one preemption is kept in flight at a time — the waiting job
        // needs exactly one slot, and once the victim yields, the freed
        // slot re-runs this scan, which may preempt again if more urgent
        // work is still waiting.
        let preemption_pending = inner
            .running
            .iter()
            .any(|id| inner.jobs.get(id).is_some_and(|e| e.preempt_requested));
        if !preemption_pending {
            let victim = inner
                .running
                .iter()
                .copied()
                .filter(|id| {
                    inner
                        .jobs
                        .get(id)
                        .is_some_and(|e| (e.priority.index()) < class && !e.user_cancelled)
                })
                .min_by_key(|id| {
                    let e = &inner.jobs[id];
                    (e.priority.index(), std::cmp::Reverse(*id))
                });
            if let Some(id) = victim {
                let entry = inner.jobs.get_mut(&id).expect("running job exists");
                entry.preempt_requested = true;
                entry.cancel.store(true, Ordering::SeqCst);
            }
        }
        // Either a preemption is now in flight (the freed slot will wake
        // the scheduler) or the queue head must wait for a natural
        // completion.
        return Dispatch::Wait;
    }
    Dispatch::Wait
}

/// Runs the scheduler loop until [`JobTable::stop`] is observed and all
/// runners have drained.
///
/// Each dispatched job executes on its own runner thread with its own
/// thread-budgeted [`CampaignEngine`]; per-cell results stream into the
/// table through the engine's progress hook.  A panicking campaign
/// (unexpected for validated wire specs, but defense-in-depth) marks the
/// job failed instead of taking the daemon down.
pub fn run_scheduler(study: Arc<CaseStudy>, table: Arc<JobTable>, config: SchedulerConfig) {
    let mut runners: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished runners (dropping the handle detaches the already
        // exited thread) so a long-lived daemon does not accumulate one
        // joinable zombie thread per completed job.
        runners.retain(|handle| !handle.is_finished());
        let dispatch = {
            let mut inner = table.lock();
            loop {
                if inner.stop && inner.running.is_empty() {
                    break Dispatch::Exit;
                }
                if !inner.stop {
                    match pick(&mut inner, &table.limits, config.max_concurrent_jobs.max(1)) {
                        Dispatch::Wait => {}
                        dispatch => break dispatch,
                    }
                }
                inner = table
                    .scheduler_wake
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        match dispatch {
            Dispatch::Exit => {
                for handle in runners {
                    let _ = handle.join();
                }
                return;
            }
            Dispatch::Start {
                id,
                spec,
                cancel,
                seeds,
            } => {
                if let Some(journal) = table.journal() {
                    journal.append_best_effort(&crate::journal::start_record(id));
                }
                table.update.notify_all();
                let study = study.clone();
                let table = table.clone();
                let config = config.clone();
                runners.push(thread::spawn(move || {
                    run_job(&study, &table, &config, id, spec, cancel, seeds)
                }));
            }
            Dispatch::Wait => unreachable!("the wait loop never breaks with Wait"),
        }
    }
}

/// Executes one dispatched job on the calling (runner) thread.
fn run_job(
    study: &CaseStudy,
    table: &Arc<JobTable>,
    config: &SchedulerConfig,
    id: u64,
    spec: CampaignSpec,
    cancel: Arc<AtomicBool>,
    seeds: Vec<CellResult>,
) {
    let mut engine = CampaignEngine::new()
        .with_threads(config.threads_per_job())
        .with_cancel(cancel)
        .with_seed_cells(seeds)
        .with_trace_job(id);
    if let Some(dir) = &config.checkpoint_dir {
        let _ = std::fs::create_dir_all(dir);
        engine = engine.with_checkpoint(dir.join(format!("job-{:016x}.json", spec.fingerprint())));
    }
    let hook_table = table.clone();
    let engine = engine.with_progress(Arc::new(move |cell: &CellResult| {
        let mut journal_doc = None;
        {
            let mut inner = hook_table.lock();
            if let Some(entry) = inner.jobs.get_mut(&id) {
                // Seeded (and checkpoint-restored) cells the client
                // already streamed are announced again on resume;
                // `seen_cells` keeps every cell exactly once in the
                // stream (and exactly once in the journal).
                if entry.seen_cells.insert(cell.cell) {
                    let doc = checkpoint::cell_to_json(cell);
                    journal_doc = Some(doc.clone());
                    entry.cells.push(doc);
                }
            }
            hook_table.update.notify_all();
        }
        // The fsync happens outside the table lock: a slow disk must not
        // stall status/stream handlers.
        if let (Some(journal), Some(doc)) = (hook_table.journal(), journal_doc) {
            journal.append_best_effort(&crate::journal::cell_record(id, &doc));
        }
    }));

    let outcome = panic::catch_unwind(AssertUnwindSafe(|| engine.run(study, &spec)));
    let mut inner = table.lock();
    inner.running.retain(|&r| r != id);
    let stop = inner.stop;
    let mut requeue_class = None;
    let mut retained = 0usize;
    let mut preempted = false;
    let mut terminal: Option<(JobState, Option<String>)> = None;
    let mut evicted_ids = Vec::new();
    if let Some(entry) = inner.jobs.get_mut(&id) {
        let cell_bytes = |entry: &JobEntry| {
            entry
                .cells
                .iter()
                .map(|c| c.to_string().len())
                .sum::<usize>()
        };
        let now = clock::now_micros();
        entry.run_accum_us += now.saturating_sub(entry.started_us);
        // One `job_running` span per dispatch segment; a preempted job
        // accumulates several of these between its `job_queued` spans.
        sfi_obs::span::record_span(
            "job_running",
            "sched",
            entry.started_us,
            now.saturating_sub(entry.started_us),
            0,
            Some(id),
            Vec::new(),
        );
        match outcome {
            Ok(result) => {
                entry.executed_trials += result.metrics.executed_trials;
                if result.cancelled {
                    if entry.preempt_requested && !entry.user_cancelled && !stop {
                        // Preempted: keep the completed cells as the
                        // resume seed and return to the head of the
                        // class queue with a fresh stop flag.
                        entry.preempt_requested = false;
                        entry.preemptions += 1;
                        entry.state = JobState::Queued;
                        entry.cancel = Arc::new(AtomicBool::new(false));
                        entry.enqueued_us = now;
                        requeue_class = Some(entry.priority.index());
                        preempted = true;
                        sfi_obs::metrics().sched_preemptions.inc();
                        sfi_obs::events().push(
                            Event::new("job_preempted")
                                .job(id)
                                .field("completed_cells", entry.cells.len()),
                        );
                    } else {
                        entry.state = JobState::Cancelled;
                        retained = cell_bytes(entry);
                    }
                } else {
                    entry.preempt_requested = false;
                    entry.state = JobState::Done;
                    let doc = result.to_json(&spec);
                    retained = doc.to_string().len() + cell_bytes(entry);
                    entry.result = Some(doc);
                }
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "campaign panicked".into());
                entry.state = JobState::Failed;
                entry.error = Some(message);
                retained = cell_bytes(entry);
            }
        }
        if entry.state.is_terminal() {
            terminal = Some((entry.state, entry.error.clone()));
            // A terminal job never runs again: drop the instantiated spec
            // (benchmark tables hold kernel input data) and account every
            // byte it still retains — the streamed cells of cancelled and
            // failed jobs count toward the cap just like done results.
            entry.spec = CampaignSpec::new(String::new(), 0);
            entry.retained_bytes = retained;
            let run_s = entry.run_accum_us as f64 / 1e6;
            sfi_obs::metrics().job_run_seconds.observe(run_s);
            sfi_obs::span::record_span(
                "job_lifetime",
                "sched",
                entry.submitted_us,
                now.saturating_sub(entry.submitted_us),
                0,
                Some(id),
                vec![
                    (
                        "state",
                        sfi_obs::FieldValue::Str(entry.state.as_str().to_string()),
                    ),
                    ("preemptions", sfi_obs::FieldValue::U64(entry.preemptions)),
                    (
                        "trials",
                        sfi_obs::FieldValue::U64(entry.executed_trials as u64),
                    ),
                ],
            );
            sfi_obs::events().push(
                Event::new(match entry.state {
                    JobState::Done => "job_done",
                    JobState::Failed => "job_failed",
                    _ => "job_cancelled",
                })
                .job(id)
                .field("run_s", run_s)
                .field("trials", entry.executed_trials),
            );
        }
    }
    if preempted {
        inner.preemptions_total += 1;
    }
    if let Some(class) = requeue_class {
        inner.queues[class].push_front(id);
    }
    if retained > 0 {
        inner.retained_total += retained;
        inner.touch(id);
        if let Some(cap) = table.limits.result_cap_bytes {
            evicted_ids = inner.evict_to_cap(cap);
        }
    }
    inner.sync_gauges();
    drop(inner);
    // Journal the terminal transition (fsync outside the table lock).
    if let Some(journal) = table.journal() {
        if preempted {
            journal.append_best_effort(&crate::journal::preempt_record(id));
        }
        if let Some((state, error)) = &terminal {
            journal.append_best_effort(&crate::journal::done_record(
                id,
                state.as_str(),
                error.as_deref(),
            ));
        }
        for evicted in &evicted_ids {
            journal.append_best_effort(&crate::journal::evict_record(*evicted));
        }
    }
    // Runner threads are short-lived; hand their span buffer to the
    // global store now instead of waiting for thread teardown.
    sfi_obs::span::flush_thread();
    table.scheduler_wake.notify_all();
    table.update.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BenchmarkDef, CampaignDef};

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut def = CampaignDef::new(name, 5);
        def.add_benchmark(BenchmarkDef::Median { values: 5, seed: 1 });
        def.instantiate().expect("tiny campaign instantiates")
    }

    fn submit(table: &JobTable, name: &str, priority: Priority, client: &str) -> u64 {
        table
            .submit(tiny_spec(name), priority, client)
            .expect("submits")
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let table = JobTable::new();
        let id = submit(&table, "a", Priority::Normal, "test");
        assert_eq!(table.status(id).unwrap().state, JobState::Queued);
        assert!(table.cancel(id));
        assert_eq!(table.status(id).unwrap().state, JobState::Cancelled);
        assert_eq!(table.next_cell(id, 0), NextCell::End(JobState::Cancelled));
        assert!(!table.cancel(999), "unknown ids report false");
        assert_eq!(table.next_cell(999, 0), NextCell::Unknown);
        assert_eq!(table.result(999), ResultFetch::Unknown);
        assert_eq!(table.result(id), ResultFetch::NotReady);
    }

    #[test]
    fn stop_cancels_the_queue_and_rejects_submissions() {
        let table = JobTable::new();
        let a = submit(&table, "a", Priority::Low, "test");
        let b = submit(&table, "b", Priority::High, "test");
        assert_eq!(table.job_count(), 2);
        table.stop();
        assert!(table.stopped());
        assert_eq!(table.status(a).unwrap().state, JobState::Cancelled);
        assert_eq!(table.status(b).unwrap().state, JobState::Cancelled);
        assert_eq!(
            table.submit(tiny_spec("c"), Priority::Normal, "test"),
            Err(SubmitRejected::ShuttingDown)
        );
    }

    #[test]
    fn drain_refuses_submits_but_keeps_the_queue() {
        let table = JobTable::new();
        let queued = submit(&table, "a", Priority::Normal, "test");
        table.drain();
        assert!(table.draining());
        assert_eq!(
            table.submit(tiny_spec("b"), Priority::Normal, "test"),
            Err(SubmitRejected::Draining)
        );
        // Unlike stop, drain leaves queued jobs queued: the journal
        // carries them to the next daemon generation.
        assert_eq!(table.status(queued).unwrap().state, JobState::Queued);
        // And the scheduler must not dispatch anything while draining.
        let mut inner = table.lock();
        assert!(matches!(pick(&mut inner, &table.limits, 1), Dispatch::Wait));
        drop(inner);
        // Nothing is running, so the drain completes immediately.
        assert!(table.wait_drained(std::time::Duration::from_millis(10)));
    }

    #[test]
    fn wait_drained_times_out_while_a_job_runs() {
        let table = JobTable::new();
        let id = submit(&table, "a", Priority::Normal, "test");
        {
            let mut inner = table.lock();
            let Dispatch::Start { .. } = pick(&mut inner, &table.limits, 1) else {
                panic!("dispatches");
            };
            assert_eq!(inner.running, vec![id]);
        }
        table.drain();
        assert!(!table.wait_drained(std::time::Duration::from_millis(20)));
    }

    #[test]
    fn idempotency_keys_deduplicate_resubmissions_per_client() {
        let table = JobTable::new();
        let first = table
            .submit_keyed(tiny_spec("a"), Priority::Normal, "alice", Some("k1"), None)
            .expect("submits");
        let retried = table
            .submit_keyed(tiny_spec("a"), Priority::Normal, "alice", Some("k1"), None)
            .expect("deduplicates");
        assert_eq!(first, retried, "the retry returns the original job id");
        assert_eq!(table.job_count(), 1);
        // Different client, same key: a distinct job.
        let other = table
            .submit_keyed(tiny_spec("a"), Priority::Normal, "bob", Some("k1"), None)
            .expect("submits");
        assert_ne!(first, other);
        // Different key, same client: a distinct job.
        let fresh = table
            .submit_keyed(tiny_spec("a"), Priority::Normal, "alice", Some("k2"), None)
            .expect("submits");
        assert_ne!(first, fresh);
    }

    #[test]
    fn restore_requeues_live_jobs_and_preserves_terminal_status() {
        use crate::journal::RecoveredJob;
        let table = JobTable::new();
        let spec_doc = Json::obj([("name", Json::Str("r".into()))]);
        let cell = Json::obj([
            ("cell", Json::Num(0.0)),
            (
                "trials",
                Json::Arr(vec![Json::Arr(Vec::new()), Json::Arr(Vec::new())]),
            ),
        ]);
        table.restore(
            RecoveredJob {
                id: 5,
                spec: spec_doc.clone(),
                priority: Priority::High,
                client: "alice".into(),
                idempotency_key: Some("k1".into()),
                cells: vec![cell],
                preemptions: 2,
                started: true,
                terminal: None,
            },
            Some(tiny_spec("r")),
        );
        table.restore(
            RecoveredJob {
                id: 7,
                spec: spec_doc,
                priority: Priority::Normal,
                client: "bob".into(),
                idempotency_key: None,
                cells: Vec::new(),
                preemptions: 0,
                started: true,
                terminal: Some(("failed".into(), Some("boom".into()))),
            },
            None,
        );

        let live = table.status(5).expect("restored");
        assert_eq!(live.state, JobState::Queued);
        assert_eq!(live.priority, Priority::High);
        assert_eq!(live.completed_cells, 1);
        assert_eq!(live.executed_trials, 2, "derived from journaled trials");
        assert_eq!(live.preemptions, 2);

        let dead = table.status(7).expect("restored");
        assert_eq!(dead.state, JobState::Failed);
        assert_eq!(dead.error.as_deref(), Some("boom"));
        assert!(dead.evicted, "journals carry transitions, not result bytes");

        // Fresh ids continue above the restored ones, and the restored
        // idempotency key still deduplicates.
        let next = submit(&table, "n", Priority::Normal, "carol");
        assert_eq!(next, 8);
        let deduped = table
            .submit_keyed(tiny_spec("a"), Priority::Normal, "alice", Some("k1"), None)
            .expect("deduplicates");
        assert_eq!(deduped, 5);
    }

    #[test]
    fn queued_quota_rejects_the_excess_submission_per_client() {
        let table = JobTable::with_limits(TableLimits {
            max_queued_per_client: Some(2),
            ..TableLimits::default()
        });
        submit(&table, "a1", Priority::Normal, "alice");
        submit(&table, "a2", Priority::Normal, "alice");
        let rejected = table.submit(tiny_spec("a3"), Priority::Normal, "alice");
        assert!(
            matches!(rejected, Err(SubmitRejected::QuotaExceeded(_))),
            "{rejected:?}"
        );
        // Quotas are per client id: bob still has room.
        submit(&table, "b1", Priority::Normal, "bob");
        // Cancelling frees alice's quota.
        let a1 = 1;
        assert!(table.cancel(a1));
        submit(&table, "a3", Priority::Normal, "alice");
    }

    #[test]
    fn priority_classes_dispatch_strictly_and_fifo_within() {
        let table = JobTable::new();
        let low = submit(&table, "low", Priority::Low, "t");
        let normal1 = submit(&table, "n1", Priority::Normal, "t");
        let high = submit(&table, "high", Priority::High, "t");
        let normal2 = submit(&table, "n2", Priority::Normal, "t");
        let mut order = Vec::new();
        let mut inner = table.lock();
        for _ in 0..4 {
            match pick(&mut inner, &table.limits, 1) {
                Dispatch::Start { id, .. } => {
                    order.push(id);
                    inner.running.clear();
                }
                _ => panic!("a queued job must dispatch"),
            }
        }
        assert_eq!(order, vec![high, normal1, normal2, low]);
    }

    #[test]
    fn pick_requests_preemption_of_the_lowest_priority_running_job() {
        let table = JobTable::new();
        let low = submit(&table, "low", Priority::Low, "t");
        {
            // Start the low job in the single slot while it is alone.
            let mut inner = table.lock();
            let Dispatch::Start { id, .. } = pick(&mut inner, &table.limits, 1) else {
                panic!("low dispatches into the free slot");
            };
            assert_eq!(id, low);
        }
        let high = submit(&table, "high", Priority::High, "t");
        let mut inner = table.lock();
        // The high job cannot start; the low job is asked to yield.
        assert!(matches!(pick(&mut inner, &table.limits, 1), Dispatch::Wait));
        let entry = &inner.jobs[&low];
        assert!(entry.preempt_requested);
        assert!(entry.cancel.load(Ordering::SeqCst));
        // High stays queued until the victim actually yields.
        assert_eq!(inner.jobs[&high].state, JobState::Queued);
    }

    #[test]
    fn at_most_one_preemption_is_in_flight() {
        let table = JobTable::new();
        let low_a = submit(&table, "low-a", Priority::Low, "t");
        let low_b = submit(&table, "low-b", Priority::Low, "t");
        let mut inner = table.lock();
        for expected in [low_a, low_b] {
            let Dispatch::Start { id, .. } = pick(&mut inner, &table.limits, 2) else {
                panic!("low job dispatches into a free slot");
            };
            assert_eq!(id, expected);
        }
        drop(inner);
        submit(&table, "high", Priority::High, "t");
        let mut inner = table.lock();
        // First scan marks exactly one victim (the most recent low job)…
        assert!(matches!(pick(&mut inner, &table.limits, 2), Dispatch::Wait));
        assert!(inner.jobs[&low_b].preempt_requested);
        assert!(!inner.jobs[&low_a].preempt_requested);
        // …and re-scanning while that preemption is still in flight must
        // not cancel the second low job too: one waiting job needs one
        // slot.
        assert!(matches!(pick(&mut inner, &table.limits, 2), Dispatch::Wait));
        assert!(
            !inner.jobs[&low_a].preempt_requested,
            "a second victim must not be preempted for the same waiter"
        );
    }

    #[test]
    fn preempted_requeues_do_not_consume_the_queued_quota() {
        let table = JobTable::with_limits(TableLimits {
            max_queued_per_client: Some(1),
            ..TableLimits::default()
        });
        submit(&table, "fresh", Priority::Normal, "alice");
        {
            // Simulate a scheduler requeue after a preemption: queued
            // state, but preemptions > 0.
            let mut inner = table.lock();
            let entry = inner.jobs.get_mut(&1).expect("job exists");
            entry.preemptions = 1;
        }
        // The requeued job is invisible to the quota: alice can still
        // submit her one genuinely queued job.
        submit(&table, "next", Priority::Normal, "alice");
        // A second fresh submission is over quota as usual.
        assert!(matches!(
            table.submit(tiny_spec("over"), Priority::Normal, "alice"),
            Err(SubmitRejected::QuotaExceeded(_))
        ));
    }

    #[test]
    fn eviction_is_lru_and_survivable() {
        let table = JobTable::with_limits(TableLimits {
            result_cap_bytes: Some(250),
            ..TableLimits::default()
        });
        let mut inner = table.lock();
        for id in [1u64, 2, 3] {
            inner.jobs.insert(
                id,
                JobEntry {
                    spec: tiny_spec("x"),
                    state: JobState::Done,
                    priority: Priority::Normal,
                    client: "t".into(),
                    total_cells: 0,
                    cells: Vec::new(),
                    seen_cells: BTreeSet::new(),
                    result: Some(Json::Null),
                    executed_trials: 0,
                    error: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    user_cancelled: false,
                    preempt_requested: false,
                    preemptions: 0,
                    retained_bytes: 100,
                    evicted: false,
                    last_access: id,
                    enqueued_us: 0,
                    started_us: 0,
                    run_accum_us: 0,
                    submitted_us: 0,
                },
            );
            inner.retained_total += 100;
        }
        inner.lru_clock = 3;
        // Job 1 is oldest, but a fetch refreshes it: 2 becomes the LRU.
        inner.touch(1);
        inner.evict_to_cap(250);
        assert!(inner.jobs[&2].evicted, "LRU entry evicted first");
        assert!(!inner.jobs[&1].evicted);
        assert!(!inner.jobs[&3].evicted);
        assert_eq!(inner.retained_total, 200);
        drop(inner);
        assert_eq!(table.result(2), ResultFetch::Evicted);
        assert_eq!(table.next_cell(2, 0), NextCell::Evicted);
        assert!(table.status(2).unwrap().evicted);
    }
}
