//! The daemon's job table and scheduler.
//!
//! Submitted campaigns become *jobs*: numbered entries that move through
//! `queued → running → done | failed | cancelled`.  A single scheduler
//! thread drains the queue in submission order onto one shared
//! [`CampaignEngine`] (the engine itself parallelizes across trials, so
//! one job at a time keeps the machine saturated without oversubscribing
//! it).  Per-cell results stream into the entry as the engine finishes
//! them — connection handlers block on a condvar and forward each cell to
//! their client the moment it lands.
//!
//! Cancellation is cooperative via the engine's cancel flag; results of
//! finished jobs are retained until the daemon exits.

use sfi_campaign::{checkpoint, CampaignEngine, CampaignSpec, CellResult};
use sfi_core::json::Json;
use sfi_core::CaseStudy;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the scheduler queue.
    Queued,
    /// Currently executing on the engine.
    Running,
    /// Finished; the full result is available.
    Done,
    /// Aborted by an execution error.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer make progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time snapshot of one job, as reported to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cells completed so far.
    pub completed_cells: usize,
    /// Total cells of the campaign.
    pub total_cells: usize,
    /// Trials actually simulated (known once the job finishes).
    pub executed_trials: usize,
    /// Failure message, if the job failed.
    pub error: Option<String>,
}

struct JobEntry {
    /// The instantiated campaign (validated and built once, at submit).
    spec: CampaignSpec,
    state: JobState,
    total_cells: usize,
    /// Streamed per-cell documents (checkpoint cell format), completion
    /// order.
    cells: Vec<Json>,
    /// Full result document, once done.
    result: Option<Json>,
    executed_trials: usize,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

impl JobEntry {
    fn status(&self, job: u64) -> JobStatus {
        JobStatus {
            job,
            state: self.state,
            completed_cells: self.cells.len(),
            total_cells: self.total_cells,
            executed_trials: self.executed_trials,
            error: self.error.clone(),
        }
    }
}

struct Inner {
    next_id: u64,
    stop: bool,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
}

/// The shared job table: submission queue, per-job state and streaming
/// buffers.
pub struct JobTable {
    inner: Mutex<Inner>,
    /// Wakes the scheduler when a job is queued or the daemon stops.
    scheduler_wake: Condvar,
    /// Wakes streaming handlers when any job gains a cell or changes
    /// state.
    update: Condvar,
}

/// What a streaming handler gets when it asks for the next cell of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum NextCell {
    /// A newly completed cell document.
    Cell(Json),
    /// No more cells will arrive; the job ended in this state.
    End(JobState),
    /// The job id is unknown.
    Unknown,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable {
            inner: Mutex::new(Inner {
                next_id: 1,
                stop: false,
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
            }),
            scheduler_wake: Condvar::new(),
            update: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues an instantiated campaign; returns the job id.
    pub fn submit(&self, spec: CampaignSpec) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let total_cells = spec.cells().len();
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                total_cells,
                cells: Vec::new(),
                result: None,
                executed_trials: 0,
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
            },
        );
        inner.queue.push_back(id);
        self.scheduler_wake.notify_all();
        id
    }

    /// The status of job `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.lock().jobs.get(&id).map(|entry| entry.status(id))
    }

    /// The retained result document of job `id`, if it finished.
    pub fn result(&self, id: u64) -> Option<Json> {
        self.lock()
            .jobs
            .get(&id)
            .and_then(|entry| entry.result.clone())
    }

    /// Requests cancellation of job `id`.  Queued jobs are cancelled
    /// immediately; running jobs stop at the next trial boundary.  Returns
    /// `false` for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return false;
        };
        entry.cancel.store(true, Ordering::SeqCst);
        if entry.state == JobState::Queued {
            entry.state = JobState::Cancelled;
            inner.queue.retain(|&q| q != id);
        }
        self.update.notify_all();
        true
    }

    /// Initiates daemon shutdown: cancels everything and wakes the
    /// scheduler so it can exit.
    pub fn stop(&self) {
        let mut inner = self.lock();
        inner.stop = true;
        inner.queue.clear();
        for entry in inner.jobs.values_mut() {
            entry.cancel.store(true, Ordering::SeqCst);
            if entry.state == JobState::Queued {
                entry.state = JobState::Cancelled;
            }
        }
        self.scheduler_wake.notify_all();
        self.update.notify_all();
    }

    /// Whether [`JobTable::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.lock().stop
    }

    /// Number of jobs ever submitted.
    pub fn job_count(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Blocks until cell `index` of job `id` exists (returning it), the
    /// job reaches a terminal state with no more cells (returning
    /// [`NextCell::End`]), or the id turns out unknown.
    pub fn next_cell(&self, id: u64, index: usize) -> NextCell {
        let mut inner = self.lock();
        loop {
            let Some(entry) = inner.jobs.get(&id) else {
                return NextCell::Unknown;
            };
            if let Some(cell) = entry.cells.get(index) {
                return NextCell::Cell(cell.clone());
            }
            if entry.state.is_terminal() {
                return NextCell::End(entry.state);
            }
            inner = self
                .update
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Blocks until job `id` reaches a terminal state; returns its final
    /// status (`None` for unknown ids).
    pub fn wait_terminal(&self, id: u64) -> Option<JobStatus> {
        let mut inner = self.lock();
        loop {
            let entry = inner.jobs.get(&id)?;
            if entry.state.is_terminal() {
                return Some(entry.status(id));
            }
            inner = self
                .update
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Execution configuration of the scheduler.
#[derive(Debug, Clone, Default)]
pub struct SchedulerConfig {
    /// Engine worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Directory for per-job campaign checkpoints; identical re-submitted
    /// campaigns resume instead of recomputing.
    pub checkpoint_dir: Option<PathBuf>,
}

/// Runs the scheduler loop until [`JobTable::stop`] is observed.
///
/// One job executes at a time; its per-cell results stream into the table
/// through the engine's progress hook.  A panicking campaign (unexpected
/// for validated wire specs, but defense-in-depth) marks the job failed
/// instead of taking the daemon down.
pub fn run_scheduler(study: Arc<CaseStudy>, table: Arc<JobTable>, config: SchedulerConfig) {
    loop {
        let (id, spec, cancel) = {
            let mut inner = table.lock();
            loop {
                if inner.stop {
                    return;
                }
                if let Some(&id) = inner.queue.front() {
                    inner.queue.pop_front();
                    let entry = inner.jobs.get_mut(&id).expect("queued job exists");
                    entry.state = JobState::Running;
                    let picked = (id, entry.spec.clone(), entry.cancel.clone());
                    table.update.notify_all();
                    break picked;
                }
                inner = table
                    .scheduler_wake
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };

        let mut engine = CampaignEngine::new().with_cancel(cancel);
        if let Some(threads) = config.threads {
            engine = engine.with_threads(threads);
        }
        if let Some(dir) = &config.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            engine =
                engine.with_checkpoint(dir.join(format!("job-{:016x}.json", spec.fingerprint())));
        }
        let hook_table = table.clone();
        let engine = engine.with_progress(Arc::new(move |cell: &CellResult| {
            let mut inner = hook_table.lock();
            if let Some(entry) = inner.jobs.get_mut(&id) {
                entry.cells.push(checkpoint::cell_to_json(cell));
            }
            hook_table.update.notify_all();
        }));

        let outcome = panic::catch_unwind(AssertUnwindSafe(|| engine.run(study.as_ref(), &spec)));
        match outcome {
            Ok(result) => {
                let state = if result.cancelled {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                let doc = (state == JobState::Done).then(|| result.to_json(&spec));
                finish(&table, id, state, doc, result.metrics.executed_trials, None);
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "campaign panicked".into());
                finish(&table, id, JobState::Failed, None, 0, Some(message));
            }
        }
    }
}

fn finish(
    table: &JobTable,
    id: u64,
    state: JobState,
    result: Option<Json>,
    executed_trials: usize,
    error: Option<String>,
) {
    let mut inner = table.lock();
    if let Some(entry) = inner.jobs.get_mut(&id) {
        entry.state = state;
        entry.result = result;
        entry.executed_trials = executed_trials;
        entry.error = error;
    }
    table.update.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BenchmarkDef, CampaignDef};

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut def = CampaignDef::new(name, 5);
        def.add_benchmark(BenchmarkDef::Median { values: 5, seed: 1 });
        def.instantiate().expect("tiny campaign instantiates")
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let table = JobTable::new();
        let id = table.submit(tiny_spec("a"));
        assert_eq!(table.status(id).unwrap().state, JobState::Queued);
        assert!(table.cancel(id));
        assert_eq!(table.status(id).unwrap().state, JobState::Cancelled);
        assert_eq!(table.next_cell(id, 0), NextCell::End(JobState::Cancelled));
        assert!(!table.cancel(999), "unknown ids report false");
        assert_eq!(table.next_cell(999, 0), NextCell::Unknown);
    }

    #[test]
    fn stop_cancels_the_queue() {
        let table = JobTable::new();
        let a = table.submit(tiny_spec("a"));
        let b = table.submit(tiny_spec("b"));
        assert_eq!(table.job_count(), 2);
        table.stop();
        assert!(table.stopped());
        assert_eq!(table.status(a).unwrap().state, JobState::Cancelled);
        assert_eq!(table.status(b).unwrap().state, JobState::Cancelled);
    }
}
