//! The serializable campaign description — the wire form of a
//! [`CampaignSpec`].
//!
//! A [`CampaignSpec`] holds live `Arc<dyn Benchmark>` objects, which
//! cannot travel over a socket.  The wire form therefore names benchmarks
//! by kind and construction parameters ([`BenchmarkDef`]); the daemon
//! instantiates the real kernels on its side via
//! [`CampaignDef::instantiate`].  Everything else (fault model, operating
//! point, trial budget) maps one-to-one onto the spec types.
//!
//! Decoding is strict and total: malformed or out-of-range input yields a
//! [`WireError`] instead of a panic, so a hostile frame cannot take the
//! daemon down.  64-bit integers (seeds) are encoded as decimal strings,
//! like the checkpoint format.

use sfi_campaign::{CampaignSpec, CellSpec, StopMetric, StopRule, TrialBudget};
use sfi_core::json::Json;
use sfi_core::FaultModel;
use sfi_fault::OperatingPoint;
use sfi_kernels::bitonic::BitonicSortBenchmark;
use sfi_kernels::crc32::Crc32Benchmark;
use sfi_kernels::dijkstra::DijkstraBenchmark;
use sfi_kernels::fft::FftBenchmark;
use sfi_kernels::fir::FirBenchmark;
use sfi_kernels::guest::GuestProgramBenchmark;
use sfi_kernels::kmeans::KMeansBenchmark;
use sfi_kernels::matmul::{ElementWidth, MatrixMultiplyBenchmark};
use sfi_kernels::median::MedianBenchmark;

/// Hard cap on instantiated campaign size, so one hostile `submit` cannot
/// make the daemon allocate without bound.
pub const MAX_CELLS: usize = 65_536;

/// Hard cap on the benchmark table, for the same reason: every
/// instantiated benchmark allocates its input data and program.
pub const MAX_BENCHMARKS: usize = 64;

/// Hard cap on per-benchmark input sizes (values, matrix order, nodes…).
pub const MAX_KERNEL_SIZE: usize = 4_096;

/// Hard cap on one cell's `max_trials`.  Besides bounding work, this
/// keeps a fully serialized cell (~80 bytes/trial) comfortably inside
/// [`crate::protocol::MAX_FRAME_BYTES`] so streamed cell frames always
/// fit.
pub const MAX_TRIALS_PER_CELL: usize = 50_000;

/// Hard cap on the `client` id of a `submit` frame, so per-client quota
/// accounting cannot be made to allocate without bound.
pub const MAX_CLIENT_ID_BYTES: usize = 64;

/// Hard cap on a submitted guest program, in instruction words.
pub const MAX_PROGRAM_WORDS: usize = 4_096;

/// Hard cap on a guest program's declared data memory, in words.
pub const MAX_GUEST_DMEM_WORDS: usize = 65_536;

/// A malformed or out-of-range wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(message: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(message.into()))
}

fn get<'a>(value: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    value
        .get(key)
        .ok_or_else(|| WireError(format!("missing member '{key}'")))
}

fn get_u64(value: &Json, key: &str) -> Result<u64, WireError> {
    get(value, key)?
        .as_u64()
        .ok_or_else(|| WireError(format!("'{key}' must be an unsigned integer")))
}

fn get_usize(value: &Json, key: &str, max: usize) -> Result<usize, WireError> {
    let v = get_u64(value, key)? as usize;
    if v == 0 || v > max {
        return err(format!("'{key}' must be in 1..={max}, got {v}"));
    }
    Ok(v)
}

fn get_finite(value: &Json, key: &str) -> Result<f64, WireError> {
    get(value, key)?
        .as_f64()
        .filter(|v| v.is_finite())
        .ok_or_else(|| WireError(format!("'{key}' must be a finite number")))
}

fn get_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, WireError> {
    get(value, key)?
        .as_str()
        .ok_or_else(|| WireError(format!("'{key}' must be a string")))
}

fn get_u32_array(
    value: &Json,
    key: &str,
    min_len: usize,
    max_len: usize,
) -> Result<Vec<u32>, WireError> {
    let arr = get(value, key)?
        .as_arr()
        .ok_or_else(|| WireError(format!("'{key}' must be an array")))?;
    if arr.len() < min_len || arr.len() > max_len {
        return err(format!(
            "'{key}' must hold {min_len}..={max_len} words, got {}",
            arr.len()
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_u64()
                .filter(|&x| x <= u64::from(u32::MAX))
                .map(|x| x as u32)
                .ok_or_else(|| WireError(format!("'{key}[{i}]' must be a 32-bit unsigned integer")))
        })
        .collect()
}

/// Decodes a `{"start": .., "end": ..}` half-open range of u32 indices.
fn get_range(value: &Json, key: &str) -> Result<(u32, u32), WireError> {
    let obj = get(value, key)?;
    let bound = |k: &str| -> Result<u32, WireError> {
        get_u64(obj, k)?
            .try_into()
            .map_err(|_| WireError(format!("'{key}.{k}' must fit in 32 bits")))
    };
    Ok((bound("start")?, bound("end")?))
}

fn range_to_json(range: (u32, u32)) -> Json {
    Json::obj([
        ("start", Json::Num(f64::from(range.0))),
        ("end", Json::Num(f64::from(range.1))),
    ])
}

/// A benchmark kernel by name and construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchmarkDef {
    /// [`MedianBenchmark`]: a median filter over `values` random samples.
    Median {
        /// Number of input values (must be odd and at least 3).
        values: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`MatrixMultiplyBenchmark`]: `n × n` multiplication.
    MatMul {
        /// Matrix order.
        n: usize,
        /// Element width in bits: 8 or 16.
        element_bits: u8,
        /// Input-data seed.
        seed: u64,
    },
    /// [`KMeansBenchmark`]: 2-D k-means clustering.
    KMeans {
        /// Number of points.
        points: usize,
        /// Number of clusters.
        clusters: usize,
        /// Lloyd iterations.
        iterations: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`DijkstraBenchmark`]: single-source shortest paths.
    Dijkstra {
        /// Number of graph nodes.
        nodes: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`FftBenchmark`]: radix-2 fixed-point FFT.
    Fft {
        /// Transform size (a power of two in 4..=128).
        n: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`FirBenchmark`]: direct-form FIR filter.
    Fir {
        /// Number of filter taps.
        taps: usize,
        /// Number of output samples.
        outputs: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`Crc32Benchmark`]: bitwise CRC-32 over a word stream.
    Crc32 {
        /// Number of 32-bit message words.
        words: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`BitonicSortBenchmark`]: bitonic sorting network.
    Bitonic {
        /// Number of values (a power of two in 4..=256).
        n: usize,
        /// Input-data seed.
        seed: u64,
    },
    /// [`GuestProgramBenchmark`]: an arbitrary submitted program as
    /// encoded instruction-memory words.
    ///
    /// Unlike the built-in recipes, a guest program is untrusted: the
    /// submission gate runs the `sfi-verify` static analyzer over the
    /// decoded program before this definition is instantiated.
    Program {
        /// Encoded instruction-memory words (see `sfi_isa::encoding`).
        words: Vec<u32>,
        /// Declared data-memory size in words.
        dmem_words: usize,
        /// Fault-injection window, as a half-open pc range.
        fi_window: (u32, u32),
        /// Input data written to data-memory words `0..input.len()`.
        input: Vec<u32>,
        /// Output region compared against the golden run, as a half-open
        /// range of data-memory word indices.
        output: (u32, u32),
        /// Reserved for forward compatibility; guest inputs are explicit,
        /// so the seed does not influence the benchmark.
        seed: u64,
    },
}

/// One entry of the benchmark-recipe registry: a wire kind name and the
/// decoder turning `(wire object, seed)` into a validated definition.
///
/// Adding a kernel kind means adding one row here (plus the enum variant
/// and its `to_json`/`instantiate` arms); lookup, the "unknown kind"
/// diagnostics and [`supported_kinds`] all derive from the table.
struct KindRecipe {
    kind: &'static str,
    decode: fn(&Json, u64) -> Result<BenchmarkDef, WireError>,
}

/// The registry of benchmark recipes, in the alphabetical order the
/// "unknown kind" error message quotes.  The bounds in the decoders mirror
/// the kernel constructors' own panics (odd median sizes, power-of-two
/// FFT/bitonic sizes, 2..=32 Dijkstra nodes, k <= n for k-means…), so a
/// decoded definition always instantiates without panicking the daemon.
const KIND_RECIPES: &[KindRecipe] = &[
    KindRecipe {
        kind: "bitonic",
        decode: |value, seed| {
            let n = get_usize(value, "n", 256)?;
            if n < 4 || !n.is_power_of_two() {
                return err(format!("'n' must be a power of two in 4..=256, got {n}"));
            }
            Ok(BenchmarkDef::Bitonic { n, seed })
        },
    },
    KindRecipe {
        kind: "crc32",
        decode: |value, seed| {
            Ok(BenchmarkDef::Crc32 {
                words: get_usize(value, "words", 1024)?,
                seed,
            })
        },
    },
    KindRecipe {
        kind: "dijkstra",
        decode: |value, seed| {
            let nodes = get_usize(value, "nodes", 32)?;
            if nodes < 2 {
                return err(format!("'nodes' must be in 2..=32, got {nodes}"));
            }
            Ok(BenchmarkDef::Dijkstra { nodes, seed })
        },
    },
    KindRecipe {
        kind: "fft",
        decode: |value, seed| {
            let n = get_usize(value, "n", 128)?;
            if n < 4 || !n.is_power_of_two() {
                return err(format!("'n' must be a power of two in 4..=128, got {n}"));
            }
            Ok(BenchmarkDef::Fft { n, seed })
        },
    },
    KindRecipe {
        kind: "fir",
        decode: |value, seed| {
            Ok(BenchmarkDef::Fir {
                taps: get_usize(value, "taps", 64)?,
                outputs: get_usize(value, "outputs", 1024)?,
                seed,
            })
        },
    },
    KindRecipe {
        kind: "kmeans",
        decode: |value, seed| {
            let points = get_usize(value, "points", MAX_KERNEL_SIZE)?;
            let clusters = get_usize(value, "clusters", 64)?;
            if clusters > points {
                return err(format!(
                    "'clusters' ({clusters}) must not exceed 'points' ({points})"
                ));
            }
            Ok(BenchmarkDef::KMeans {
                points,
                clusters,
                iterations: get_usize(value, "iterations", 256)?,
                seed,
            })
        },
    },
    KindRecipe {
        kind: "matmul",
        decode: |value, seed| {
            let element_bits = get_u64(value, "element_bits")?;
            if element_bits != 8 && element_bits != 16 {
                return err(format!(
                    "'element_bits' must be 8 or 16, got {element_bits}"
                ));
            }
            Ok(BenchmarkDef::MatMul {
                n: get_usize(value, "n", 64)?,
                element_bits: element_bits as u8,
                seed,
            })
        },
    },
    KindRecipe {
        kind: "median",
        decode: |value, seed| {
            let values = get_usize(value, "values", MAX_KERNEL_SIZE)?;
            if values < 3 || values % 2 == 0 {
                return err(format!("'values' must be an odd number >= 3, got {values}"));
            }
            Ok(BenchmarkDef::Median { values, seed })
        },
    },
    KindRecipe {
        kind: "program",
        decode: |value, seed| {
            let words = get_u32_array(value, "words", 1, MAX_PROGRAM_WORDS)?;
            let dmem_words = get_usize(value, "dmem_words", MAX_GUEST_DMEM_WORDS)?;
            let fi_window = get_range(value, "fi_window")?;
            if fi_window.0 >= fi_window.1 || fi_window.1 as usize > words.len() {
                return err(format!(
                    "'fi_window' {}..{} must be a non-empty pc range within the \
                     {}-word program",
                    fi_window.0,
                    fi_window.1,
                    words.len()
                ));
            }
            let output = get_range(value, "output")?;
            if output.0 >= output.1 || output.1 as usize > dmem_words {
                return err(format!(
                    "'output' {}..{} must be a non-empty word range within the \
                     declared data memory of {dmem_words} words",
                    output.0, output.1
                ));
            }
            let input = get_u32_array(value, "input", 0, dmem_words)?;
            Ok(BenchmarkDef::Program {
                words,
                dmem_words,
                fi_window,
                input,
                output,
                seed,
            })
        },
    },
];

/// Every benchmark kind the wire protocol can instantiate, alphabetical.
pub fn supported_kinds() -> Vec<&'static str> {
    KIND_RECIPES.iter().map(|r| r.kind).collect()
}

impl BenchmarkDef {
    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        match *self {
            BenchmarkDef::Median { values, seed } => Json::obj([
                ("kind", Json::Str("median".into())),
                ("values", Json::Num(values as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::MatMul {
                n,
                element_bits,
                seed,
            } => Json::obj([
                ("kind", Json::Str("matmul".into())),
                ("n", Json::Num(n as f64)),
                ("element_bits", Json::Num(element_bits as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::KMeans {
                points,
                clusters,
                iterations,
                seed,
            } => Json::obj([
                ("kind", Json::Str("kmeans".into())),
                ("points", Json::Num(points as f64)),
                ("clusters", Json::Num(clusters as f64)),
                ("iterations", Json::Num(iterations as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Dijkstra { nodes, seed } => Json::obj([
                ("kind", Json::Str("dijkstra".into())),
                ("nodes", Json::Num(nodes as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Fft { n, seed } => Json::obj([
                ("kind", Json::Str("fft".into())),
                ("n", Json::Num(n as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Fir {
                taps,
                outputs,
                seed,
            } => Json::obj([
                ("kind", Json::Str("fir".into())),
                ("taps", Json::Num(taps as f64)),
                ("outputs", Json::Num(outputs as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Crc32 { words, seed } => Json::obj([
                ("kind", Json::Str("crc32".into())),
                ("words", Json::Num(words as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Bitonic { n, seed } => Json::obj([
                ("kind", Json::Str("bitonic".into())),
                ("n", Json::Num(n as f64)),
                ("seed", Json::Str(seed.to_string())),
            ]),
            BenchmarkDef::Program {
                ref words,
                dmem_words,
                fi_window,
                ref input,
                output,
                seed,
            } => Json::obj([
                ("kind", Json::Str("program".into())),
                (
                    "words",
                    Json::Arr(words.iter().map(|&w| Json::Num(f64::from(w))).collect()),
                ),
                ("dmem_words", Json::Num(dmem_words as f64)),
                ("fi_window", range_to_json(fi_window)),
                (
                    "input",
                    Json::Arr(input.iter().map(|&w| Json::Num(f64::from(w))).collect()),
                ),
                ("output", range_to_json(output)),
                ("seed", Json::Str(seed.to_string())),
            ]),
        }
    }

    /// Decodes from the wire object via the kind registry.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let kind = get_str(value, "kind")?;
        let seed = get_u64(value, "seed")?;
        match KIND_RECIPES.iter().find(|r| r.kind == kind) {
            Some(recipe) => (recipe.decode)(value, seed),
            None => err(format!(
                "unknown benchmark kind '{kind}' (supported: {})",
                supported_kinds().join(", ")
            )),
        }
    }

    /// Instantiates the real kernel.
    ///
    /// Built-in recipes cannot fail (their decoders mirror the kernel
    /// constructors' bounds); a guest [`BenchmarkDef::Program`] can — its
    /// words may not decode, and its bounded fault-free golden run may not
    /// terminate.  The submission gate runs `sfi-verify` first, so over the
    /// wire these failures surface as analyzer diagnostics instead.
    pub fn instantiate(&self) -> Result<sfi_campaign::SharedBenchmark, WireError> {
        Ok(match *self {
            BenchmarkDef::Median { values, seed } => {
                std::sync::Arc::new(MedianBenchmark::new(values, seed))
            }
            BenchmarkDef::MatMul {
                n,
                element_bits,
                seed,
            } => {
                let width = if element_bits == 8 {
                    ElementWidth::Bits8
                } else {
                    ElementWidth::Bits16
                };
                std::sync::Arc::new(MatrixMultiplyBenchmark::new(n, width, seed))
            }
            BenchmarkDef::KMeans {
                points,
                clusters,
                iterations,
                seed,
            } => std::sync::Arc::new(KMeansBenchmark::new(points, clusters, iterations, seed)),
            BenchmarkDef::Dijkstra { nodes, seed } => {
                std::sync::Arc::new(DijkstraBenchmark::new(nodes, seed))
            }
            BenchmarkDef::Fft { n, seed } => std::sync::Arc::new(FftBenchmark::new(n, seed)),
            BenchmarkDef::Fir {
                taps,
                outputs,
                seed,
            } => std::sync::Arc::new(FirBenchmark::new(taps, outputs, seed)),
            BenchmarkDef::Crc32 { words, seed } => {
                std::sync::Arc::new(Crc32Benchmark::new(words, seed))
            }
            BenchmarkDef::Bitonic { n, seed } => {
                std::sync::Arc::new(BitonicSortBenchmark::new(n, seed))
            }
            BenchmarkDef::Program {
                ref words,
                dmem_words,
                fi_window,
                ref input,
                output,
                seed: _,
            } => {
                let program = sfi_isa::Program::from_words(words)
                    .map_err(|e| WireError(format!("guest program does not decode: {e}")))?;
                let bench = GuestProgramBenchmark::new(
                    program,
                    dmem_words,
                    fi_window.0..fi_window.1,
                    input.clone(),
                    output.0..output.1,
                )
                .map_err(|e| WireError(format!("guest program rejected: {e}")))?;
                std::sync::Arc::new(bench)
            }
        })
    }
}

/// Encodes a fault model.
pub fn model_to_json(model: FaultModel) -> Json {
    match model {
        FaultModel::None => Json::obj([("kind", Json::Str("none".into()))]),
        FaultModel::FixedProbability(p) => Json::obj([
            ("kind", Json::Str("fixed_probability".into())),
            ("p", Json::Num(p)),
        ]),
        FaultModel::StaPeriodViolation => Json::obj([("kind", Json::Str("sta".into()))]),
        FaultModel::StaWithNoise => Json::obj([("kind", Json::Str("sta_noise".into()))]),
        FaultModel::StatisticalDta => Json::obj([("kind", Json::Str("dta".into()))]),
    }
}

/// Decodes a fault model.
pub fn model_from_json(value: &Json) -> Result<FaultModel, WireError> {
    match get_str(value, "kind")? {
        "none" => Ok(FaultModel::None),
        "fixed_probability" => {
            let p = get_finite(value, "p")?;
            if !(0.0..=1.0).contains(&p) {
                return err(format!("'p' must be a probability, got {p}"));
            }
            Ok(FaultModel::FixedProbability(p))
        }
        "sta" => Ok(FaultModel::StaPeriodViolation),
        "sta_noise" => Ok(FaultModel::StaWithNoise),
        "dta" => Ok(FaultModel::StatisticalDta),
        other => err(format!("unknown fault model '{other}'")),
    }
}

/// The wire form of a [`TrialBudget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetDef {
    /// Trials always run before the stop rule is consulted.
    pub min_trials: usize,
    /// Hard upper bound on trials.
    pub max_trials: usize,
    /// Trials added per adaptive refinement step.
    pub batch: usize,
    /// Early-stopping rule, if adaptive.
    pub stop: Option<StopRuleDef>,
}

/// The wire form of a [`StopRule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRuleDef {
    /// `"correct"` or `"finished"` fraction.
    pub metric: StopMetric,
    /// Target half-width of the confidence interval.
    pub half_width: f64,
    /// Critical value of the interval.
    pub z: f64,
}

impl BudgetDef {
    /// A fixed budget of exactly `trials` trials.
    pub fn fixed(trials: usize) -> Self {
        BudgetDef {
            min_trials: trials,
            max_trials: trials,
            batch: trials,
            stop: None,
        }
    }

    /// Converts to the engine type, validating the invariants the
    /// [`TrialBudget`] constructors would otherwise assert.
    pub fn to_budget(&self) -> Result<TrialBudget, WireError> {
        if self.min_trials == 0 || self.batch == 0 {
            return err("budget trials and batch must be positive");
        }
        if self.max_trials < self.min_trials {
            return err(format!(
                "max_trials {} below min_trials {}",
                self.max_trials, self.min_trials
            ));
        }
        if self.max_trials > MAX_TRIALS_PER_CELL {
            return err(format!(
                "max_trials {} above the {MAX_TRIALS_PER_CELL} cap",
                self.max_trials
            ));
        }
        let stop = match self.stop {
            None => None,
            Some(rule) => {
                if !(rule.half_width.is_finite() && rule.half_width > 0.0) {
                    return err("stop half_width must be positive and finite");
                }
                if !(rule.z.is_finite() && rule.z > 0.0) {
                    return err("stop z must be positive and finite");
                }
                Some(StopRule {
                    metric: rule.metric,
                    half_width: rule.half_width,
                    z: rule.z,
                })
            }
        };
        Ok(TrialBudget {
            min_trials: self.min_trials,
            max_trials: self.max_trials,
            batch: self.batch,
            stop,
        })
    }

    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        let stop = match self.stop {
            None => Json::Null,
            Some(rule) => Json::obj([
                (
                    "metric",
                    Json::Str(
                        match rule.metric {
                            StopMetric::CorrectFraction => "correct",
                            StopMetric::FinishedFraction => "finished",
                        }
                        .into(),
                    ),
                ),
                ("half_width", Json::Num(rule.half_width)),
                ("z", Json::Num(rule.z)),
            ]),
        };
        Json::obj([
            ("min_trials", Json::Num(self.min_trials as f64)),
            ("max_trials", Json::Num(self.max_trials as f64)),
            ("batch", Json::Num(self.batch as f64)),
            ("stop", stop),
        ])
    }

    /// Decodes from the wire object.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let stop = match get(value, "stop")? {
            Json::Null => None,
            rule => Some(StopRuleDef {
                metric: match get_str(rule, "metric")? {
                    "correct" => StopMetric::CorrectFraction,
                    "finished" => StopMetric::FinishedFraction,
                    other => return err(format!("unknown stop metric '{other}'")),
                },
                half_width: get_finite(rule, "half_width")?,
                z: get_finite(rule, "z")?,
            }),
        };
        Ok(BudgetDef {
            min_trials: get_u64(value, "min_trials")? as usize,
            max_trials: get_u64(value, "max_trials")? as usize,
            batch: get_u64(value, "batch")? as usize,
            stop,
        })
    }
}

/// One wire campaign cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDef {
    /// Index into [`CampaignDef::benchmarks`].
    pub benchmark: usize,
    /// The fault model.
    pub model: FaultModel,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Supply-noise sigma in millivolts (0 = no noise).
    pub noise_sigma_mv: f64,
    /// The trial budget.
    pub budget: BudgetDef,
}

impl CellDef {
    /// The operating point of this cell.
    pub fn point(&self) -> OperatingPoint {
        OperatingPoint::new(self.freq_mhz, self.vdd).with_noise_sigma_mv(self.noise_sigma_mv)
    }

    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::Num(self.benchmark as f64)),
            ("model", model_to_json(self.model)),
            ("freq_mhz", Json::Num(self.freq_mhz)),
            ("vdd", Json::Num(self.vdd)),
            ("noise_sigma_mv", Json::Num(self.noise_sigma_mv)),
            ("budget", self.budget.to_json()),
        ])
    }

    /// Decodes from the wire object.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let freq_mhz = get_finite(value, "freq_mhz")?;
        let vdd = get_finite(value, "vdd")?;
        let noise_sigma_mv = get_finite(value, "noise_sigma_mv")?;
        if freq_mhz <= 0.0 {
            return err(format!("'freq_mhz' must be positive, got {freq_mhz}"));
        }
        if vdd <= 0.0 {
            return err(format!("'vdd' must be positive, got {vdd}"));
        }
        if noise_sigma_mv < 0.0 {
            return err(format!(
                "'noise_sigma_mv' must be non-negative, got {noise_sigma_mv}"
            ));
        }
        Ok(CellDef {
            benchmark: get_u64(value, "benchmark")? as usize,
            model: model_from_json(get(value, "model")?)?,
            freq_mhz,
            vdd,
            noise_sigma_mv,
            budget: BudgetDef::from_json(get(value, "budget")?)?,
        })
    }
}

/// A full wire campaign: the serializable counterpart of
/// [`CampaignSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignDef {
    /// Human-readable campaign name.
    pub name: String,
    /// The campaign master seed.
    pub seed: u64,
    /// Benchmarks by construction recipe.
    pub benchmarks: Vec<BenchmarkDef>,
    /// The campaign cells.
    pub cells: Vec<CellDef>,
}

impl CampaignDef {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        CampaignDef {
            name: name.into(),
            seed,
            benchmarks: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Registers a benchmark and returns its index for use in cells.
    pub fn add_benchmark(&mut self, benchmark: BenchmarkDef) -> usize {
        self.benchmarks.push(benchmark);
        self.benchmarks.len() - 1
    }

    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::Str(self.seed.to_string())),
            (
                "benchmarks",
                Json::Arr(self.benchmarks.iter().map(BenchmarkDef::to_json).collect()),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellDef::to_json).collect()),
            ),
        ])
    }

    /// Decodes from the wire object.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let benchmarks_json = get(value, "benchmarks")?
            .as_arr()
            .ok_or_else(|| WireError("'benchmarks' must be an array".into()))?;
        if benchmarks_json.len() > MAX_BENCHMARKS {
            return err(format!(
                "{} benchmarks exceed the {MAX_BENCHMARKS}-benchmark cap",
                benchmarks_json.len()
            ));
        }
        let benchmarks: Result<Vec<BenchmarkDef>, WireError> = benchmarks_json
            .iter()
            .map(BenchmarkDef::from_json)
            .collect();
        let cells_json = get(value, "cells")?
            .as_arr()
            .ok_or_else(|| WireError("'cells' must be an array".into()))?;
        if cells_json.len() > MAX_CELLS {
            return err(format!(
                "{} cells exceed the {MAX_CELLS}-cell cap",
                cells_json.len()
            ));
        }
        let cells: Result<Vec<CellDef>, WireError> =
            cells_json.iter().map(CellDef::from_json).collect();
        Ok(CampaignDef {
            name: get_str(value, "name")?.to_string(),
            seed: get_u64(value, "seed")?,
            benchmarks: benchmarks?,
            cells: cells?,
        })
    }

    /// Validates the definition and instantiates the runnable
    /// [`CampaignSpec`].
    pub fn instantiate(&self) -> Result<CampaignSpec, WireError> {
        if self.cells.len() > MAX_CELLS {
            return err(format!(
                "{} cells exceed the {MAX_CELLS}-cell cap",
                self.cells.len()
            ));
        }
        if self.benchmarks.len() > MAX_BENCHMARKS {
            return err(format!(
                "{} benchmarks exceed the {MAX_BENCHMARKS}-benchmark cap",
                self.benchmarks.len()
            ));
        }
        // Validate every cell before constructing any (comparatively
        // expensive) kernel, so rejecting a bad definition costs nothing.
        let mut budgets = Vec::with_capacity(self.cells.len());
        for (index, cell) in self.cells.iter().enumerate() {
            if cell.benchmark >= self.benchmarks.len() {
                return err(format!(
                    "cell {index} references benchmark {} but only {} are defined",
                    cell.benchmark,
                    self.benchmarks.len()
                ));
            }
            budgets.push(cell.budget.to_budget()?);
        }
        let mut spec = CampaignSpec::new(self.name.clone(), self.seed);
        for def in &self.benchmarks {
            spec.add_shared_benchmark(def.instantiate()?);
        }
        for (cell, budget) in self.cells.iter().zip(budgets) {
            spec.add_cell(CellSpec {
                benchmark: cell.benchmark,
                model: cell.model,
                point: cell.point(),
                budget,
            });
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_def() -> CampaignDef {
        let mut def = CampaignDef::new("wire \"demo\"", u64::MAX);
        let median = def.add_benchmark(BenchmarkDef::Median {
            values: 21,
            seed: 3,
        });
        let matmul = def.add_benchmark(BenchmarkDef::MatMul {
            n: 4,
            element_bits: 8,
            seed: 9,
        });
        def.cells.push(CellDef {
            benchmark: median,
            model: FaultModel::StatisticalDta,
            freq_mhz: 750.0,
            vdd: 0.7,
            noise_sigma_mv: 10.0,
            budget: BudgetDef::fixed(5),
        });
        def.cells.push(CellDef {
            benchmark: matmul,
            model: FaultModel::FixedProbability(1e-4),
            freq_mhz: 800.0,
            vdd: 0.8,
            noise_sigma_mv: 0.0,
            budget: BudgetDef {
                min_trials: 4,
                max_trials: 32,
                batch: 4,
                stop: Some(StopRuleDef {
                    metric: StopMetric::CorrectFraction,
                    half_width: 0.1,
                    z: 1.96,
                }),
            },
        });
        def
    }

    #[test]
    fn campaign_def_round_trips_through_json() {
        let def = sample_def();
        let text = def.to_json().to_string();
        let back = CampaignDef::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, def);

        // The instantiated specs are structurally identical.
        let a = def.instantiate().expect("instantiates");
        let b = back.instantiate().expect("instantiates");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cells().len(), 2);
    }

    #[test]
    fn rejects_inconsistent_definitions() {
        let mut bad = sample_def();
        bad.cells[0].benchmark = 7;
        assert!(bad.instantiate().is_err(), "unknown benchmark index");

        let mut bad = sample_def();
        bad.cells[0].budget.max_trials = 0;
        assert!(bad.instantiate().is_err(), "zero budget");

        let mut bad = sample_def();
        bad.cells[0].budget = BudgetDef {
            min_trials: 8,
            max_trials: 4,
            batch: 2,
            stop: None,
        };
        assert!(bad.instantiate().is_err(), "inverted budget");
    }

    #[test]
    fn rejects_malformed_wire_objects() {
        for bad in [
            "{}",
            "{\"name\":\"x\",\"seed\":\"1\",\"benchmarks\":[],\"cells\":[{}]}",
            "{\"name\":\"x\",\"seed\":\"1\",\"benchmarks\":[{\"kind\":\"nope\",\"seed\":\"1\"}],\"cells\":[]}",
            "{\"name\":\"x\",\"seed\":-3,\"benchmarks\":[],\"cells\":[]}",
        ] {
            let doc = Json::parse(bad).expect("valid JSON");
            assert!(CampaignDef::from_json(&doc).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn kernel_bounds_mirror_the_constructors() {
        // Each of these would panic the respective kernel constructor;
        // the wire layer must reject them as errors instead.
        for bad in [
            r#"{"kind":"median","values":4,"seed":"1"}"#,
            r#"{"kind":"median","values":1,"seed":"1"}"#,
            r#"{"kind":"dijkstra","nodes":1,"seed":"1"}"#,
            r#"{"kind":"dijkstra","nodes":100,"seed":"1"}"#,
            r#"{"kind":"kmeans","points":2,"clusters":5,"iterations":3,"seed":"1"}"#,
            r#"{"kind":"matmul","n":65,"element_bits":8,"seed":"1"}"#,
            r#"{"kind":"fft","n":24,"seed":"1"}"#,
            r#"{"kind":"fft","n":256,"seed":"1"}"#,
            r#"{"kind":"fir","taps":0,"outputs":8,"seed":"1"}"#,
            r#"{"kind":"fir","taps":4,"outputs":100000,"seed":"1"}"#,
            r#"{"kind":"crc32","words":0,"seed":"1"}"#,
            r#"{"kind":"bitonic","n":12,"seed":"1"}"#,
            r#"{"kind":"bitonic","n":2,"seed":"1"}"#,
        ] {
            let doc = Json::parse(bad).expect("valid JSON");
            assert!(BenchmarkDef::from_json(&doc).is_err(), "{bad} should fail");
        }
        // The boundary values themselves are accepted and instantiate.
        for good in [
            BenchmarkDef::Median { values: 3, seed: 1 },
            BenchmarkDef::Dijkstra { nodes: 2, seed: 1 },
            BenchmarkDef::Dijkstra { nodes: 32, seed: 1 },
            BenchmarkDef::KMeans {
                points: 2,
                clusters: 2,
                iterations: 1,
                seed: 1,
            },
            BenchmarkDef::Fft { n: 4, seed: 1 },
            BenchmarkDef::Fft { n: 128, seed: 1 },
            BenchmarkDef::Fir {
                taps: 1,
                outputs: 1,
                seed: 1,
            },
            BenchmarkDef::Crc32 { words: 1, seed: 1 },
            BenchmarkDef::Bitonic { n: 4, seed: 1 },
            BenchmarkDef::Bitonic { n: 256, seed: 1 },
        ] {
            let back = BenchmarkDef::from_json(&good.to_json()).expect("round trips");
            assert_eq!(back, good);
            back.instantiate().expect("boundary value instantiates");
        }
    }

    /// A tiny valid guest program: store 7 to data-memory word 0 and exit.
    fn tiny_guest_def(seed: u64) -> BenchmarkDef {
        let words = sfi_isa::Program::new(vec![
            sfi_isa::Instruction::Addi {
                rd: sfi_isa::Reg(3),
                ra: sfi_isa::Reg(0),
                imm: 7,
            },
            sfi_isa::Instruction::Sw {
                ra: sfi_isa::Reg(0),
                rb: sfi_isa::Reg(3),
                offset: 0,
            },
        ])
        .to_words();
        BenchmarkDef::Program {
            words,
            dmem_words: 4,
            fi_window: (0, 2),
            input: vec![],
            output: (0, 1),
            seed,
        }
    }

    #[test]
    fn every_registered_kind_round_trips_and_instantiates() {
        let defs = [
            BenchmarkDef::Median {
                values: 21,
                seed: 2,
            },
            BenchmarkDef::MatMul {
                n: 4,
                element_bits: 16,
                seed: 2,
            },
            BenchmarkDef::KMeans {
                points: 8,
                clusters: 2,
                iterations: 4,
                seed: 2,
            },
            BenchmarkDef::Dijkstra { nodes: 5, seed: 2 },
            BenchmarkDef::Fft { n: 16, seed: 2 },
            BenchmarkDef::Fir {
                taps: 4,
                outputs: 8,
                seed: 2,
            },
            BenchmarkDef::Crc32 { words: 8, seed: 2 },
            BenchmarkDef::Bitonic { n: 8, seed: 2 },
            tiny_guest_def(2),
        ];
        // One definition per registered kind — the registry and the enum
        // stay in sync.
        let mut kinds: Vec<String> = defs
            .iter()
            .map(|d| {
                d.to_json()
                    .get("kind")
                    .and_then(Json::as_str)
                    .expect("kind member")
                    .to_string()
            })
            .collect();
        kinds.sort_unstable();
        assert_eq!(kinds, supported_kinds());
        for def in defs {
            let back = BenchmarkDef::from_json(&def.to_json()).expect("round trips");
            assert_eq!(back, def);
            back.instantiate().expect("instantiates");
        }
    }

    #[test]
    fn guest_program_structural_bounds_are_enforced() {
        let good = tiny_guest_def(1).to_json();
        BenchmarkDef::from_json(&good).expect("valid guest program decodes");

        let mutate = |key: &str, value: Json| {
            let mut fields: Vec<(&str, Json)> = Vec::new();
            for k in [
                "kind",
                "words",
                "dmem_words",
                "fi_window",
                "input",
                "output",
                "seed",
            ] {
                let v = if k == key {
                    value.clone()
                } else {
                    good.get(k).expect("member present").clone()
                };
                fields.push((k, v));
            }
            Json::obj(fields)
        };

        let empty_words = mutate("words", Json::Arr(vec![]));
        assert!(
            BenchmarkDef::from_json(&empty_words).is_err(),
            "empty words"
        );

        let huge_word = mutate("words", Json::Arr(vec![Json::Num(2.0_f64.powi(33))]));
        assert!(BenchmarkDef::from_json(&huge_word).is_err(), "non-u32 word");

        let bad_window = mutate(
            "fi_window",
            Json::obj([("start", Json::Num(0.0)), ("end", Json::Num(99.0))]),
        );
        assert!(
            BenchmarkDef::from_json(&bad_window).is_err(),
            "fi_window past the program end"
        );

        let empty_output = mutate(
            "output",
            Json::obj([("start", Json::Num(1.0)), ("end", Json::Num(1.0))]),
        );
        assert!(
            BenchmarkDef::from_json(&empty_output).is_err(),
            "empty output"
        );

        let fat_input = mutate("input", Json::Arr(vec![Json::Num(0.0); 5]));
        assert!(
            BenchmarkDef::from_json(&fat_input).is_err(),
            "input larger than dmem"
        );

        let tiny_dmem = mutate("dmem_words", Json::Num(0.0));
        assert!(BenchmarkDef::from_json(&tiny_dmem).is_err(), "zero dmem");
    }

    #[test]
    fn guest_program_instantiation_failures_are_wire_errors() {
        // 0xFFFF_FFFF is not a valid instruction encoding.
        let undecodable = BenchmarkDef::Program {
            words: vec![u32::MAX],
            dmem_words: 4,
            fi_window: (0, 1),
            input: vec![],
            output: (0, 1),
            seed: 1,
        };
        let message = match undecodable.instantiate() {
            Err(error) => error.to_string(),
            Ok(_) => panic!("an undecodable program must not instantiate"),
        };
        assert!(message.contains("does not decode"), "{message}");

        // `l.j -1` decodes fine but spins forever: the golden run hits the
        // watchdog and instantiation reports it.
        let spin = sfi_isa::Program::new(vec![sfi_isa::Instruction::J { offset: -1 }]).to_words();
        let non_terminating = BenchmarkDef::Program {
            words: spin,
            dmem_words: 4,
            fi_window: (0, 1),
            input: vec![],
            output: (0, 1),
            seed: 1,
        };
        let message = match non_terminating.instantiate() {
            Err(error) => error.to_string(),
            Ok(_) => panic!("a non-terminating golden run must not instantiate"),
        };
        assert!(message.contains("golden run"), "{message}");
    }

    #[test]
    fn unknown_kind_error_lists_the_supported_set() {
        let doc = Json::parse(r#"{"kind":"sha256","seed":"1"}"#).expect("valid JSON");
        let message = BenchmarkDef::from_json(&doc).unwrap_err().to_string();
        assert!(
            message.contains("unknown benchmark kind 'sha256'"),
            "{message}"
        );
        for kind in supported_kinds() {
            assert!(message.contains(kind), "{message} must list {kind}");
        }
    }

    #[test]
    fn hostile_sizes_are_capped() {
        let mut def = CampaignDef::new("flood", 1);
        for _ in 0..MAX_BENCHMARKS + 1 {
            def.add_benchmark(BenchmarkDef::Median { values: 3, seed: 1 });
        }
        assert!(def.instantiate().is_err(), "benchmark flood rejected");
        let doc = def.to_json();
        assert!(
            CampaignDef::from_json(&doc).is_err(),
            "benchmark flood rejected at decode"
        );

        let mut def = sample_def();
        def.cells[0].budget = BudgetDef::fixed(MAX_TRIALS_PER_CELL + 1);
        assert!(def.instantiate().is_err(), "oversized budget rejected");
    }

    #[test]
    fn model_codec_covers_every_variant() {
        for model in [
            FaultModel::None,
            FaultModel::FixedProbability(0.25),
            FaultModel::StaPeriodViolation,
            FaultModel::StaWithNoise,
            FaultModel::StatisticalDta,
        ] {
            let back = model_from_json(&model_to_json(model)).expect("decodes");
            assert_eq!(back, model);
        }
        assert!(
            model_from_json(&Json::obj([
                ("kind", Json::Str("fixed_probability".into())),
                ("p", Json::Num(2.0)),
            ]))
            .is_err(),
            "out-of-range probability"
        );
    }
}
