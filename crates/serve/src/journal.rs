//! The durable job journal: crash recovery for the serve daemon.
//!
//! An append-only, fsync'd log under `--state-dir` records every job
//! transition (`submit`, `start`, `cell`, `preempt`, `done`, `evict`) as
//! one length-prefixed, CRC-framed JSON record.  On restart the daemon
//! [replays](replay_file) the journal — tolerating a torn or corrupt
//! final record, which a crash mid-append can leave behind — and
//! [folds](recover) the records into per-job recovery state: queued jobs
//! come back queued, running jobs come back queued *with their completed
//! cells as seeds* (the engine's `with_seed_cells` overlay re-announces
//! them and simulates only the rest), and terminal jobs keep their
//! status.  Determinism makes the guarantee strong: a recovered campaign
//! produces a result document byte-identical to an uninterrupted run.
//!
//! # Framing
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len u32 LE │ crc u32 LE │ payload (len B)  │  … repeated
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE) of the payload bytes; the payload is one JSON
//! record in canonical encoding.  Each append is a single `write` followed
//! by `fdatasync`, so the journal survives `kill -9` with at most the
//! in-flight record lost — and the replay loop treats any framing, CRC or
//! parse failure as the torn tail: it warns, keeps the valid prefix, and
//! discards the rest.  Cell payloads reuse the campaign checkpoint cell
//! codec (`sfi_campaign::checkpoint`), the same format the wire `stream`
//! frames carry.

use crate::jobs::Priority;
use sfi_core::json::Json;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The journal file name under `--state-dir`.
pub const JOURNAL_FILE: &str = "journal.log";

/// Hard cap on one journal record's payload, mirroring the wire frame
/// cap: a length prefix beyond this is treated as tail corruption.
pub const MAX_RECORD_BYTES: usize = crate::protocol::MAX_FRAME_BYTES;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// An open journal: appends are serialized and fsync'd.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<Journal> {
        fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Atomically replaces the journal with a compacted one carrying
    /// exactly `records`, then reopens it for appending.  Used after a
    /// restart replay so the journal does not grow without bound across
    /// daemon generations.
    pub fn rewrite(state_dir: &Path, records: &[Json]) -> io::Result<Journal> {
        fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        let tmp = state_dir.join(format!("{JOURNAL_FILE}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            for record in records {
                file.write_all(&frame(record.to_string().as_bytes()))?;
            }
            file.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        // Make the rename itself durable where the platform allows it.
        if let Ok(dir) = File::open(state_dir) {
            let _ = dir.sync_all();
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and syncs it to disk.
    pub fn append(&self, record: &Json) -> io::Result<()> {
        let framed = frame(record.to_string().as_bytes());
        let file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let mut file = &*file;
        file.write_all(&framed)?;
        file.sync_data()?;
        sfi_obs::metrics().journal_appends.inc();
        Ok(())
    }

    /// [`append`](Self::append), downgrading failures to a warning: a
    /// full disk must not take the scheduler down with it.
    pub fn append_best_effort(&self, record: &Json) {
        if let Err(err) = self.append(record) {
            eprintln!(
                "sfi-serve: warning: journal append failed ({}): {err}",
                self.path.display()
            );
        }
    }
}

// — record constructors (canonical key order comes from Json::obj) —

fn base(kind: &'static str, job: u64) -> Vec<(&'static str, Json)> {
    vec![
        ("kind", Json::Str(kind.into())),
        ("job", Json::Str(job.to_string())),
    ]
}

/// A `submit` record: the job exists, with its re-instantiable wire spec.
pub fn submit_record(
    job: u64,
    spec: &Json,
    priority: Priority,
    client: &str,
    idempotency_key: Option<&str>,
) -> Json {
    let mut members = base("submit", job);
    members.push(("spec", spec.clone()));
    members.push(("priority", Json::Str(priority.as_str().into())));
    members.push(("client", Json::Str(client.into())));
    if let Some(key) = idempotency_key {
        members.push(("key", Json::Str(key.into())));
    }
    Json::obj(members)
}

/// A `start` record: the job was dispatched to the engine.
pub fn start_record(job: u64) -> Json {
    Json::obj(base("start", job))
}

/// A `cell` record: one campaign cell completed (checkpoint cell format).
pub fn cell_record(job: u64, cell: &Json) -> Json {
    let mut members = base("cell", job);
    members.push(("cell", cell.clone()));
    Json::obj(members)
}

/// A `preempt` record: the job was cooperatively returned to its queue.
pub fn preempt_record(job: u64) -> Json {
    Json::obj(base("preempt", job))
}

/// A `done` record: the job reached a terminal state.
pub fn done_record(job: u64, state: &str, error: Option<&str>) -> Json {
    let mut members = base("done", job);
    members.push(("state", Json::Str(state.into())));
    if let Some(error) = error {
        members.push(("error", Json::Str(error.into())));
    }
    Json::obj(members)
}

/// An `evict` record: the retained result was dropped under the byte cap.
pub fn evict_record(job: u64) -> Json {
    Json::obj(base("evict", job))
}

/// Replays the journal at `state_dir/journal.log`.
///
/// Returns the decoded records; a missing file is an empty journal.  A
/// torn or corrupt tail — short header, short payload, CRC mismatch, or
/// an unparsable record — is *not* an error: the valid prefix is kept,
/// the tail discarded, and a warning printed, so one interrupted append
/// can never wedge a restart.
pub fn replay_file(state_dir: &Path) -> io::Result<Vec<Json>> {
    let path = state_dir.join(JOURNAL_FILE);
    let data = match fs::read(&path) {
        Ok(data) => data,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    let (records, warning) = replay_bytes(&data);
    if let Some(warning) = warning {
        eprintln!(
            "sfi-serve: warning: journal {} has a torn tail ({warning}); \
             recovered {} record(s), discarding the rest",
            path.display(),
            records.len()
        );
    }
    Ok(records)
}

/// Decodes framed records from `data`; the second element carries a
/// description of the torn/corrupt tail, if one was found.
pub fn replay_bytes(data: &[u8]) -> (Vec<Json>, Option<String>) {
    let metrics = sfi_obs::metrics();
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let remaining = &data[offset..];
        if remaining.len() < 8 {
            return (
                records,
                Some(format!("{} trailing header byte(s)", remaining.len())),
            );
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return (
                records,
                Some(format!(
                    "implausible record length {len} at offset {offset}"
                )),
            );
        }
        if remaining.len() < 8 + len {
            return (
                records,
                Some(format!(
                    "record at offset {offset} is truncated ({} of {len} payload bytes)",
                    remaining.len() - 8
                )),
            );
        }
        let payload = &remaining[8..8 + len];
        if crc32(payload) != crc {
            return (records, Some(format!("CRC mismatch at offset {offset}")));
        }
        let record = match std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
        {
            Some(record) => record,
            None => {
                return (
                    records,
                    Some(format!("unparsable record at offset {offset}")),
                )
            }
        };
        records.push(record);
        metrics.journal_replayed.inc();
        offset += 8 + len;
    }
    (records, None)
}

/// Per-job state folded out of a journal replay.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The journaled job id (reused verbatim on restore).
    pub id: u64,
    /// The wire campaign definition (`CampaignDef` document).
    pub spec: Json,
    /// The scheduling class the job was accepted at.
    pub priority: Priority,
    /// The client id the job is accounted against.
    pub client: String,
    /// The idempotency key the submit carried, if any.
    pub idempotency_key: Option<String>,
    /// Completed cells (checkpoint cell format), deduplicated by cell
    /// index, journal order.  Seeds for the resumed run.
    pub cells: Vec<Json>,
    /// Cooperative preemptions the job had accumulated.
    pub preemptions: u64,
    /// Whether the job had ever been dispatched.
    pub started: bool,
    /// Terminal state and error, when the job had already finished:
    /// `(state, error)` with the wire spelling of [`crate::jobs::JobState`].
    pub terminal: Option<(String, Option<String>)>,
}

/// Folds replayed records into per-job recovery state, id order.
///
/// Records that reference a job with no preceding `submit` record are
/// skipped: a crash between job creation and the submit append can leave
/// such orphans, and the un-acknowledged client will simply resubmit.
pub fn recover(records: &[Json]) -> Vec<RecoveredJob> {
    let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    let mut seen_cells: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for record in records {
        let kind = record.get("kind").and_then(Json::as_str).unwrap_or("");
        let Some(id) = record.get("job").and_then(Json::as_u64) else {
            continue;
        };
        match kind {
            "submit" => {
                let Some(spec) = record.get("spec") else {
                    continue;
                };
                jobs.entry(id).or_insert_with(|| RecoveredJob {
                    id,
                    spec: spec.clone(),
                    priority: record
                        .get("priority")
                        .and_then(Json::as_str)
                        .and_then(Priority::parse)
                        .unwrap_or(Priority::Normal),
                    client: record
                        .get("client")
                        .and_then(Json::as_str)
                        .unwrap_or("anonymous")
                        .to_string(),
                    idempotency_key: record.get("key").and_then(Json::as_str).map(str::to_string),
                    cells: Vec::new(),
                    preemptions: 0,
                    started: false,
                    terminal: None,
                });
            }
            "start" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.started = true;
                }
            }
            "cell" => {
                let (Some(job), Some(cell)) = (jobs.get_mut(&id), record.get("cell")) else {
                    continue;
                };
                let index = cell.get("cell").and_then(Json::as_u64).unwrap_or(u64::MAX);
                let seen = seen_cells.entry(id).or_default();
                if !seen.contains(&index) {
                    seen.push(index);
                    job.cells.push(cell.clone());
                }
            }
            "preempt" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.preemptions += 1;
                }
            }
            "done" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.terminal = Some((
                        record
                            .get("state")
                            .and_then(Json::as_str)
                            .unwrap_or("failed")
                            .to_string(),
                        record
                            .get("error")
                            .and_then(Json::as_str)
                            .map(str::to_string),
                    ));
                }
            }
            // Results are not journaled, so eviction needs no replay
            // action: every recovered terminal job reports `evicted`.
            "evict" => {}
            _ => {}
        }
    }
    jobs.into_values().collect()
}

/// The compacted journal records equivalent to `jobs`: one `submit` per
/// job, its `cell` records for live jobs, and the `done` record for
/// terminal ones.
pub fn compaction_records(jobs: &[RecoveredJob]) -> Vec<Json> {
    let mut records = Vec::new();
    for job in jobs {
        records.push(submit_record(
            job.id,
            &job.spec,
            job.priority,
            &job.client,
            job.idempotency_key.as_deref(),
        ));
        match &job.terminal {
            Some((state, error)) => {
                records.push(done_record(job.id, state, error.as_deref()));
            }
            None => {
                if job.started {
                    records.push(start_record(job.id));
                }
                for _ in 0..job.preemptions {
                    records.push(preempt_record(job.id));
                }
                for cell in &job.cells {
                    records.push(cell_record(job.id, cell));
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfi-journal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_spec() -> Json {
        Json::obj([
            ("name", Json::Str("demo".into())),
            ("seed", Json::Str("42".into())),
        ])
    }

    fn cell_doc(index: u64) -> Json {
        Json::obj([
            ("cell", Json::Num(index as f64)),
            ("stopped_early", Json::Bool(false)),
        ])
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(&dir).expect("opens");
        let records = [
            submit_record(1, &demo_spec(), Priority::High, "alice", Some("k1")),
            start_record(1),
            cell_record(1, &cell_doc(0)),
            preempt_record(1),
            done_record(1, "done", None),
            evict_record(1),
            done_record(2, "failed", Some("boom")),
        ];
        for record in &records {
            journal.append(record).expect("appends");
        }
        let replayed = replay_file(&dir).expect("replays");
        assert_eq!(replayed.len(), records.len());
        for (record, replayed) in records.iter().zip(&replayed) {
            assert_eq!(record, replayed);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_journal_is_an_empty_journal() {
        let dir = temp_dir("missing");
        assert!(replay_file(&dir).expect("replays").is_empty());
    }

    #[test]
    fn a_torn_tail_recovers_the_prefix() {
        let dir = temp_dir("torn");
        let journal = Journal::open(&dir).expect("opens");
        journal
            .append(&submit_record(
                1,
                &demo_spec(),
                Priority::Normal,
                "ci",
                None,
            ))
            .expect("appends");
        journal
            .append(&cell_record(1, &cell_doc(0)))
            .expect("appends");
        let path = journal.path().to_path_buf();
        drop(journal);

        // Tear the file mid-record: a partial third append.
        let mut data = fs::read(&path).expect("reads");
        let intact = data.len();
        data.extend_from_slice(&frame(cell_record(1, &cell_doc(1)).to_string().as_bytes()));
        data.truncate(intact + 11);
        fs::write(&path, &data).expect("writes");

        let replayed = replay_file(&dir).expect("tolerates the tear");
        assert_eq!(replayed.len(), 2, "the intact prefix survives");
        let (_, warning) = replay_bytes(&fs::read(&path).expect("reads"));
        assert!(warning.is_some(), "the tear is reported");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupt_crc_discards_the_tail_not_the_prefix() {
        let dir = temp_dir("crc");
        let journal = Journal::open(&dir).expect("opens");
        journal
            .append(&submit_record(
                1,
                &demo_spec(),
                Priority::Normal,
                "ci",
                None,
            ))
            .expect("appends");
        journal
            .append(&cell_record(1, &cell_doc(0)))
            .expect("appends");
        let path = journal.path().to_path_buf();
        drop(journal);

        // Flip one payload byte of the *last* record.
        let mut data = fs::read(&path).expect("reads");
        let last = data.len() - 1;
        data[last] ^= 0x20;
        fs::write(&path, &data).expect("writes");

        let (records, warning) = replay_bytes(&fs::read(&path).expect("reads"));
        assert_eq!(records.len(), 1);
        assert!(warning.unwrap().contains("CRC mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_implausible_length_prefix_is_treated_as_corruption() {
        let mut data = frame(b"{}").to_vec();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0, 0, 0, 0]);
        let (records, warning) = replay_bytes(&data);
        assert_eq!(records.len(), 1);
        assert!(warning.unwrap().contains("implausible"));
    }

    #[test]
    fn recover_folds_transitions_per_job() {
        let records = vec![
            submit_record(1, &demo_spec(), Priority::High, "alice", Some("k1")),
            submit_record(2, &demo_spec(), Priority::Normal, "bob", None),
            start_record(1),
            cell_record(1, &cell_doc(0)),
            cell_record(1, &cell_doc(0)), // duplicate: preemption overlap
            cell_record(1, &cell_doc(2)),
            preempt_record(1),
            start_record(2),
            done_record(2, "failed", Some("boom")),
            // Orphan: no submit record for job 9 (crash window).
            cell_record(9, &cell_doc(0)),
        ];
        let jobs = recover(&records);
        assert_eq!(jobs.len(), 2);

        let one = &jobs[0];
        assert_eq!(one.id, 1);
        assert_eq!(one.priority, Priority::High);
        assert_eq!(one.client, "alice");
        assert_eq!(one.idempotency_key.as_deref(), Some("k1"));
        assert_eq!(one.cells.len(), 2, "cell 0 deduplicated");
        assert_eq!(one.preemptions, 1);
        assert!(one.started);
        assert!(one.terminal.is_none());

        let two = &jobs[1];
        assert_eq!(two.id, 2);
        assert_eq!(
            two.terminal,
            Some(("failed".to_string(), Some("boom".to_string())))
        );
    }

    #[test]
    fn rewrite_compacts_and_stays_appendable() {
        let dir = temp_dir("rewrite");
        let journal = Journal::open(&dir).expect("opens");
        for record in [
            submit_record(1, &demo_spec(), Priority::Normal, "ci", None),
            start_record(1),
            cell_record(1, &cell_doc(0)),
            submit_record(2, &demo_spec(), Priority::Low, "ci", None),
            done_record(2, "done", None),
            evict_record(2),
        ] {
            journal.append(&record).expect("appends");
        }
        drop(journal);

        let jobs = recover(&replay_file(&dir).expect("replays"));
        let compact = compaction_records(&jobs);
        let journal = Journal::rewrite(&dir, &compact).expect("rewrites");
        journal
            .append(&cell_record(1, &cell_doc(1)))
            .expect("appends");
        drop(journal);

        let jobs = recover(&replay_file(&dir).expect("replays"));
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].cells.len(), 2, "compacted cell + new append");
        assert_eq!(jobs[1].terminal, Some(("done".to_string(), None)));
        let _ = fs::remove_dir_all(&dir);
    }
}
