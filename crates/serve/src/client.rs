//! Typed client for the serve protocol.
//!
//! [`Client`] wraps one TCP connection and exposes each protocol request
//! as a method.  All methods are synchronous: one request, one response
//! (or, for [`Client::stream`], one response per cell until the job
//! ends).  The same connection can issue any number of requests.
//!
//! Responses are decoded through the shared [`Response`] frame type, so
//! the client accepts exactly the vocabulary `docs/PROTOCOL.md`
//! specifies; server `error` frames surface as [`ClientError::Server`]
//! with their machine-readable [`ErrorCode`].

use crate::jobs::{JobStatus, Priority};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, PoffReply, PoffRequest, Request, Response, ServerInfo,
    SubmitRequest,
};
use crate::wire::{CampaignDef, WireError};
use sfi_core::json::Json;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

pub use crate::jobs::JobState;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server closed or sent something unintelligible.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server {
        /// Machine-readable error classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Structured rejection payload, when the server sent one (e.g.
        /// the analyzer findings of a refused guest program).
        detail: Option<Json>,
    },
}

impl ClientError {
    /// The error code of a server-side rejection, if this is one.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A `submitted` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// The job id for status/stream/result/cancel requests.
    pub job: u64,
    /// Number of cells the campaign will run.
    pub total_cells: usize,
    /// The scheduling class the job was accepted at.
    pub priority: Priority,
}

/// A synchronous protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request frame.
    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(())
    }

    /// Receives one response frame, surfacing `error` frames as
    /// [`ClientError::Server`].
    fn receive(&mut self) -> Result<Response, ClientError> {
        let frame = match read_frame(&mut self.reader)? {
            None => return Err(ClientError::Protocol("server closed the connection".into())),
            Some(Ok(frame)) => frame,
            Some(Err(WireError(message))) => return Err(ClientError::Protocol(message)),
        };
        match Response::from_json(&frame) {
            Ok(Response::Error {
                code,
                message,
                detail,
            }) => Err(ClientError::Server {
                code,
                message,
                detail,
            }),
            Ok(response) => Ok(response),
            Err(WireError(message)) => Err(ClientError::Protocol(message)),
        }
    }

    fn unexpected<T>(context: &str, response: &Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!(
            "expected a '{context}' response, got {response:?}"
        )))
    }

    /// Probes the daemon and returns its self-description.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong(info) => Ok(info),
            other => Self::unexpected("pong", &other),
        }
    }

    /// Submits a campaign at `normal` priority under the daemon's default
    /// client id; returns the job ticket.
    pub fn submit(&mut self, def: &CampaignDef) -> Result<JobTicket, ClientError> {
        self.submit_with(def, Priority::Normal, None)
    }

    /// Submits a campaign with an explicit scheduling class and client id
    /// (the id quotas are accounted against).
    pub fn submit_with(
        &mut self,
        def: &CampaignDef,
        priority: Priority,
        client: Option<&str>,
    ) -> Result<JobTicket, ClientError> {
        self.send(&Request::Submit(SubmitRequest {
            spec: def.clone(),
            priority,
            client: client.map(str::to_string),
        }))?;
        match self.receive()? {
            Response::Submitted {
                job,
                total_cells,
                priority,
                ..
            } => Ok(JobTicket {
                job,
                total_cells,
                priority,
            }),
            other => Self::unexpected("submitted", &other),
        }
    }

    /// Polls one job's status.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.send(&Request::Status(job))?;
        match self.receive()? {
            Response::Status(status) => Ok(status),
            other => Self::unexpected("status", &other),
        }
    }

    /// Streams the job's per-cell results as they complete, invoking
    /// `on_cell` for every cell document; returns the job's final state
    /// (`"done"`, `"failed"` or `"cancelled"`).
    pub fn stream(
        &mut self,
        job: u64,
        mut on_cell: impl FnMut(&Json),
    ) -> Result<String, ClientError> {
        self.send(&Request::Stream(job))?;
        loop {
            match self.receive()? {
                Response::Cell { cell, .. } => on_cell(&cell),
                Response::End { state, .. } => return Ok(state.as_str().to_string()),
                other => return Self::unexpected("cell' or 'end", &other),
            }
        }
    }

    /// Fetches a finished job's full result document (the campaign
    /// checkpoint format).
    pub fn result(&mut self, job: u64) -> Result<Json, ClientError> {
        self.send(&Request::Result(job))?;
        match self.receive()? {
            Response::ResultDoc { document, .. } => Ok(document),
            other => Self::unexpected("result", &other),
        }
    }

    /// Runs a PoFF bisection query on the daemon.
    pub fn poff(&mut self, request: &PoffRequest) -> Result<PoffReply, ClientError> {
        self.send(&Request::Poff(request.clone()))?;
        match self.receive()? {
            Response::Poff(reply) => Ok(reply),
            other => Self::unexpected("poff", &other),
        }
    }

    /// Fetches a point-in-time snapshot of the daemon's metrics registry
    /// (the `snapshot` document of the `metrics` frame).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Metrics)?;
        match self.receive()? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Self::unexpected("metrics", &other),
        }
    }

    /// Fetches recent structured events (oldest first) and the cumulative
    /// overflow-drop count; both arguments are optional on the wire.
    pub fn events(
        &mut self,
        limit: Option<u64>,
        job: Option<u64>,
    ) -> Result<(Json, u64), ClientError> {
        self.send(&Request::Events { limit, job })?;
        match self.receive()? {
            Response::Events { events, dropped } => Ok((events, dropped)),
            other => Self::unexpected("events", &other),
        }
    }

    /// Fetches recent trace records (oldest first) and the cumulative
    /// store-overflow drop count; both arguments are optional on the wire.
    pub fn trace(
        &mut self,
        limit: Option<u64>,
        job: Option<u64>,
    ) -> Result<(Json, u64), ClientError> {
        self.send(&Request::Trace { limit, job })?;
        match self.receive()? {
            Response::Trace { spans, dropped } => Ok((spans, dropped)),
            other => Self::unexpected("trace", &other),
        }
    }

    /// Evaluates the daemon's alert rules and fetches their statuses.
    pub fn alerts(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Alerts)?;
        match self.receive()? {
            Response::Alerts { alerts } => Ok(alerts),
            other => Self::unexpected("alerts", &other),
        }
    }

    /// Cancels a queued or running job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.send(&Request::Cancel(job))?;
        match self.receive()? {
            Response::Cancelled { .. } => Ok(()),
            other => Self::unexpected("cancelled", &other),
        }
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::Bye => Ok(()),
            other => Self::unexpected("bye", &other),
        }
    }

    /// Polls `status` until the job reaches a terminal state.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(job)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}
