//! Typed client for the serve protocol.
//!
//! [`Client`] wraps one TCP connection and exposes each protocol request
//! as a method.  All methods are synchronous: one request, one response
//! (or, for [`Client::stream`], one response per cell until the job
//! ends).  The same connection can issue any number of requests.

use crate::protocol::{read_frame, write_frame, PoffRequest, Request};
use crate::wire::{CampaignDef, WireError};
use sfi_core::json::Json;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server closed or sent something unintelligible.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Server information from a `pong` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Protocol version.
    pub protocol: u64,
    /// Fingerprint of the served [`sfi_core::CaseStudyConfig`].
    pub study_fingerprint: u64,
    /// STA limit at the nominal voltage, MHz.
    pub sta_limit_mhz: f64,
    /// The nominal supply voltage.
    pub nominal_vdd: f64,
    /// Characterized supply voltages.
    pub voltages: Vec<f64>,
    /// Whether the daemon started warm from the characterization cache.
    pub characterization_cache_hit: bool,
    /// Jobs submitted to this daemon so far.
    pub jobs: usize,
}

/// A `submitted` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// The job id for status/stream/result/cancel requests.
    pub job: u64,
    /// Number of cells the campaign will run.
    pub total_cells: usize,
}

/// One job-status snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// `queued`, `running`, `done`, `failed` or `cancelled`.
    pub state: String,
    /// Cells completed so far.
    pub completed_cells: usize,
    /// Total cells of the campaign.
    pub total_cells: usize,
    /// Trials actually simulated (final states only).
    pub executed_trials: usize,
    /// Failure message, if failed.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job can no longer make progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }
}

/// The outcome of a PoFF query.
#[derive(Debug, Clone, PartialEq)]
pub struct PoffReply {
    /// The located point of first failure, if any failure was found.
    pub poff_mhz: Option<f64>,
    /// Frequencies the bisection actually evaluated.
    pub cells_evaluated: usize,
    /// `(freq_mhz, correct_fraction)` of every evaluated point, sorted.
    pub evaluated: Vec<(f64, f64)>,
}

/// A synchronous protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn frame_u64(frame: &Json, key: &str) -> Result<u64, ClientError> {
    frame
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("response lacks '{key}'")))
}

fn frame_f64(frame: &Json, key: &str) -> Result<f64, ClientError> {
    frame
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ClientError::Protocol(format!("response lacks '{key}'")))
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request frame.
    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(())
    }

    /// Receives one response frame, surfacing `error` frames as
    /// [`ClientError::Server`].
    fn receive(&mut self) -> Result<Json, ClientError> {
        let frame = match read_frame(&mut self.reader)? {
            None => return Err(ClientError::Protocol("server closed the connection".into())),
            Some(Ok(frame)) => frame,
            Some(Err(WireError(message))) => return Err(ClientError::Protocol(message)),
        };
        if frame.get("type").and_then(Json::as_str) == Some("error") {
            return Err(ClientError::Server(
                frame
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            ));
        }
        Ok(frame)
    }

    fn call(&mut self, request: &Request, expected: &str) -> Result<Json, ClientError> {
        self.send(request)?;
        let frame = self.receive()?;
        match frame.get("type").and_then(Json::as_str) {
            Some(kind) if kind == expected => Ok(frame),
            other => Err(ClientError::Protocol(format!(
                "expected a '{expected}' response, got {other:?}"
            ))),
        }
    }

    /// Probes the daemon and returns its self-description.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        let frame = self.call(&Request::Ping, "pong")?;
        Ok(ServerInfo {
            protocol: frame_u64(&frame, "protocol")?,
            study_fingerprint: frame_u64(&frame, "study_fingerprint")?,
            sta_limit_mhz: frame_f64(&frame, "sta_limit_mhz")?,
            nominal_vdd: frame_f64(&frame, "nominal_vdd")?,
            voltages: frame
                .get("voltages")
                .and_then(Json::as_arr)
                .map(|arr| arr.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default(),
            characterization_cache_hit: frame
                .get("characterization_cache_hit")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            jobs: frame_u64(&frame, "jobs")? as usize,
        })
    }

    /// Submits a campaign; returns the job ticket.
    pub fn submit(&mut self, def: &CampaignDef) -> Result<JobTicket, ClientError> {
        let frame = self.call(&Request::Submit(def.clone()), "submitted")?;
        Ok(JobTicket {
            job: frame_u64(&frame, "job")?,
            total_cells: frame_u64(&frame, "total_cells")? as usize,
        })
    }

    fn decode_status(frame: &Json) -> Result<JobStatus, ClientError> {
        Ok(JobStatus {
            job: frame_u64(frame, "job")?,
            state: frame
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("status lacks 'state'".into()))?
                .to_string(),
            completed_cells: frame_u64(frame, "completed_cells")? as usize,
            total_cells: frame_u64(frame, "total_cells")? as usize,
            executed_trials: frame_u64(frame, "executed_trials")? as usize,
            error: frame
                .get("error")
                .and_then(Json::as_str)
                .map(|s| s.to_string()),
        })
    }

    /// Polls one job's status.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        let frame = self.call(&Request::Status(job), "status")?;
        Self::decode_status(&frame)
    }

    /// Streams the job's per-cell results as they complete, invoking
    /// `on_cell` for every cell document; returns the job's final state
    /// (`"done"`, `"failed"` or `"cancelled"`).
    pub fn stream(
        &mut self,
        job: u64,
        mut on_cell: impl FnMut(&Json),
    ) -> Result<String, ClientError> {
        self.send(&Request::Stream(job))?;
        loop {
            let frame = self.receive()?;
            match frame.get("type").and_then(Json::as_str) {
                Some("cell") => {
                    let cell = frame
                        .get("cell")
                        .ok_or_else(|| ClientError::Protocol("cell frame lacks 'cell'".into()))?;
                    on_cell(cell);
                }
                Some("end") => {
                    return Ok(frame
                        .get("state")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string());
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected 'cell' or 'end', got {other:?}"
                    )));
                }
            }
        }
    }

    /// Fetches a finished job's full result document (the campaign
    /// checkpoint format).
    pub fn result(&mut self, job: u64) -> Result<Json, ClientError> {
        let frame = self.call(&Request::Result(job), "result")?;
        frame
            .get("document")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("result frame lacks 'document'".into()))
    }

    /// Runs a PoFF bisection query on the daemon.
    pub fn poff(&mut self, request: &PoffRequest) -> Result<PoffReply, ClientError> {
        let frame = self.call(&Request::Poff(request.clone()), "poff")?;
        let evaluated = frame
            .get("evaluated")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|point| {
                        Some((
                            point.get("freq_mhz")?.as_f64()?,
                            point.get("correct_fraction")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(PoffReply {
            poff_mhz: frame
                .get("poff_mhz")
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite()),
            cells_evaluated: frame_u64(&frame, "cells_evaluated")? as usize,
            evaluated,
        })
    }

    /// Cancels a queued or running job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.call(&Request::Cancel(job), "cancelled")?;
        Ok(())
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown, "bye")?;
        Ok(())
    }

    /// Polls `status` until the job reaches a terminal state.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(job)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}
