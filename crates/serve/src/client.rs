//! Typed client for the serve protocol.
//!
//! [`Client`] wraps one TCP connection and exposes each protocol request
//! as a method.  All methods are synchronous: one request, one response
//! (or, for [`Client::stream`], one response per cell until the job
//! ends).  The same connection can issue any number of requests.
//!
//! Responses are decoded through the shared [`Response`] frame type, so
//! the client accepts exactly the vocabulary `docs/PROTOCOL.md`
//! specifies; server `error` frames surface as [`ClientError::Server`]
//! with their machine-readable [`ErrorCode`].
//!
//! For fault-tolerant callers, [`RetryingClient`] layers a
//! [`RetryPolicy`] — capped exponential backoff with deterministic
//! jitter — over a lazily (re)established connection: transport and
//! transient server errors (`shutting_down`, `draining`) trigger a
//! reconnect and retry, while permanent rejections (`bad_request`,
//! `quota_exceeded`, …) surface immediately.  Submissions through it
//! require an idempotency key, so a retried submit can never double-run
//! a campaign.

use crate::jobs::{JobStatus, Priority};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, PoffReply, PoffRequest, Request, Response, ServerInfo,
    SubmitRequest,
};
use crate::wire::{CampaignDef, WireError};
use sfi_core::json::Json;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

pub use crate::jobs::JobState;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server closed or sent something unintelligible.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server {
        /// Machine-readable error classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Structured rejection payload, when the server sent one (e.g.
        /// the analyzer findings of a refused guest program).
        detail: Option<Json>,
    },
}

impl ClientError {
    /// The error code of a server-side rejection, if this is one.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A `submitted` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// The job id for status/stream/result/cancel requests.
    pub job: u64,
    /// Number of cells the campaign will run.
    pub total_cells: usize,
    /// The scheduling class the job was accepted at.
    pub priority: Priority,
}

/// A synchronous protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request frame.
    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(())
    }

    /// Receives one response frame, surfacing `error` frames as
    /// [`ClientError::Server`].
    fn receive(&mut self) -> Result<Response, ClientError> {
        let frame = match read_frame(&mut self.reader)? {
            None => return Err(ClientError::Protocol("server closed the connection".into())),
            Some(Ok(frame)) => frame,
            Some(Err(WireError(message))) => return Err(ClientError::Protocol(message)),
        };
        match Response::from_json(&frame) {
            Ok(Response::Error {
                code,
                message,
                detail,
            }) => Err(ClientError::Server {
                code,
                message,
                detail,
            }),
            Ok(response) => Ok(response),
            Err(WireError(message)) => Err(ClientError::Protocol(message)),
        }
    }

    fn unexpected<T>(context: &str, response: &Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!(
            "expected a '{context}' response, got {response:?}"
        )))
    }

    /// Probes the daemon and returns its self-description.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong(info) => Ok(info),
            other => Self::unexpected("pong", &other),
        }
    }

    /// Submits a campaign at `normal` priority under the daemon's default
    /// client id; returns the job ticket.
    pub fn submit(&mut self, def: &CampaignDef) -> Result<JobTicket, ClientError> {
        self.submit_with(def, Priority::Normal, None)
    }

    /// Submits a campaign with an explicit scheduling class and client id
    /// (the id quotas are accounted against).
    pub fn submit_with(
        &mut self,
        def: &CampaignDef,
        priority: Priority,
        client: Option<&str>,
    ) -> Result<JobTicket, ClientError> {
        self.submit_keyed(def, priority, client, None)
    }

    /// [`submit_with`](Self::submit_with), carrying an idempotency key:
    /// resubmitting the same `(client, key)` pair returns the original
    /// job instead of creating a duplicate, which makes retrying a
    /// submit whose acknowledgement was lost safe.
    pub fn submit_keyed(
        &mut self,
        def: &CampaignDef,
        priority: Priority,
        client: Option<&str>,
        idempotency_key: Option<&str>,
    ) -> Result<JobTicket, ClientError> {
        self.send(&Request::Submit(SubmitRequest {
            spec: def.clone(),
            priority,
            client: client.map(str::to_string),
            idempotency_key: idempotency_key.map(str::to_string),
        }))?;
        match self.receive()? {
            Response::Submitted {
                job,
                total_cells,
                priority,
                ..
            } => Ok(JobTicket {
                job,
                total_cells,
                priority,
            }),
            other => Self::unexpected("submitted", &other),
        }
    }

    /// Polls one job's status.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.send(&Request::Status(job))?;
        match self.receive()? {
            Response::Status(status) => Ok(status),
            other => Self::unexpected("status", &other),
        }
    }

    /// Streams the job's per-cell results as they complete, invoking
    /// `on_cell` for every cell document; returns the job's final state
    /// (`"done"`, `"failed"` or `"cancelled"`).
    pub fn stream(
        &mut self,
        job: u64,
        mut on_cell: impl FnMut(&Json),
    ) -> Result<String, ClientError> {
        self.send(&Request::Stream(job))?;
        loop {
            match self.receive()? {
                Response::Cell { cell, .. } => on_cell(&cell),
                Response::End { state, .. } => return Ok(state.as_str().to_string()),
                other => return Self::unexpected("cell' or 'end", &other),
            }
        }
    }

    /// Fetches a finished job's full result document (the campaign
    /// checkpoint format).
    pub fn result(&mut self, job: u64) -> Result<Json, ClientError> {
        self.send(&Request::Result(job))?;
        match self.receive()? {
            Response::ResultDoc { document, .. } => Ok(document),
            other => Self::unexpected("result", &other),
        }
    }

    /// Runs a PoFF bisection query on the daemon.
    pub fn poff(&mut self, request: &PoffRequest) -> Result<PoffReply, ClientError> {
        self.send(&Request::Poff(request.clone()))?;
        match self.receive()? {
            Response::Poff(reply) => Ok(reply),
            other => Self::unexpected("poff", &other),
        }
    }

    /// Fetches a point-in-time snapshot of the daemon's metrics registry
    /// (the `snapshot` document of the `metrics` frame).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Metrics)?;
        match self.receive()? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Self::unexpected("metrics", &other),
        }
    }

    /// Fetches recent structured events (oldest first) and the cumulative
    /// overflow-drop count; both arguments are optional on the wire.
    pub fn events(
        &mut self,
        limit: Option<u64>,
        job: Option<u64>,
    ) -> Result<(Json, u64), ClientError> {
        self.send(&Request::Events { limit, job })?;
        match self.receive()? {
            Response::Events { events, dropped } => Ok((events, dropped)),
            other => Self::unexpected("events", &other),
        }
    }

    /// Fetches recent trace records (oldest first) and the cumulative
    /// store-overflow drop count; both arguments are optional on the wire.
    pub fn trace(
        &mut self,
        limit: Option<u64>,
        job: Option<u64>,
    ) -> Result<(Json, u64), ClientError> {
        self.send(&Request::Trace { limit, job })?;
        match self.receive()? {
            Response::Trace { spans, dropped } => Ok((spans, dropped)),
            other => Self::unexpected("trace", &other),
        }
    }

    /// Evaluates the daemon's alert rules and fetches their statuses.
    pub fn alerts(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Alerts)?;
        match self.receive()? {
            Response::Alerts { alerts } => Ok(alerts),
            other => Self::unexpected("alerts", &other),
        }
    }

    /// Cancels a queued or running job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.send(&Request::Cancel(job))?;
        match self.receive()? {
            Response::Cancelled { .. } => Ok(()),
            other => Self::unexpected("cancelled", &other),
        }
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::Bye => Ok(()),
            other => Self::unexpected("bye", &other),
        }
    }

    /// Asks the daemon to drain: stop accepting submits, let running
    /// jobs finish (journaling queued ones for a successor), then exit.
    /// Returns the number of jobs that were running when the drain began.
    pub fn drain(&mut self) -> Result<usize, ClientError> {
        self.send(&Request::Drain)?;
        match self.receive()? {
            Response::DrainStarted { running_jobs } => Ok(running_jobs),
            other => Self::unexpected("drain_started", &other),
        }
    }

    /// Polls `status` until the job reaches a terminal state.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(job)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}

/// When and how [`RetryingClient`] retries a failed request.
///
/// Backoff is capped exponential with *equal jitter*: the wait before
/// attempt `n` is half the capped exponential delay plus a deterministic
/// pseudo-random fraction of the other half, derived from `jitter_seed`
/// — so tests (and bug reports) reproduce the exact retry schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Cap on any single backoff wait.
    pub max_delay: Duration,
    /// Overall wall-clock budget across all attempts and waits; an
    /// operation that would sleep past it fails instead (`None` = no
    /// deadline).
    pub deadline: Option<Duration>,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            deadline: None,
            jitter_seed: 0x5F12_8DF1,
        }
    }
}

/// SplitMix64: one 64-bit mixing step, the standard seed expander.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A fast schedule for tests: tight delays, no deadline.
    pub fn fast_for_tests() -> Self {
        RetryPolicy {
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry `attempt` (1-based), jitter included.
    /// Pure: the same policy and attempt always produce the same delay.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let exponential = self.base_delay.saturating_mul(1u32 << shift);
        let capped = exponential.min(self.max_delay).max(Duration::from_nanos(2));
        let nanos = capped.as_nanos() as u64;
        let jitter = splitmix64(self.jitter_seed ^ u64::from(attempt)) % (nanos / 2 + 1);
        Duration::from_nanos(nanos - nanos / 2 + jitter)
    }

    /// Whether `error` is worth retrying: transport and protocol
    /// failures (the connection may be poisoned mid-frame) and the
    /// transient server states are; every other server rejection —
    /// `bad_request`, `quota_exceeded`, `unknown_job`, … — is permanent
    /// and surfaces immediately.
    pub fn retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::ShuttingDown | ErrorCode::Draining)
            }
        }
    }
}

/// A [`Client`] wrapper that transparently reconnects and retries under
/// a [`RetryPolicy`].
///
/// The connection is established lazily and dropped after any failure
/// (a half-written frame poisons it), so every retry starts on a fresh
/// socket.  [`RetryingClient::submit`] *requires* an idempotency key:
/// without one, a resubmit after a lost acknowledgement could double-run
/// the campaign.
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
}

impl RetryingClient {
    /// Creates a client for `addr`; no connection is made until the
    /// first request.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<RetryingClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        Ok(RetryingClient {
            addr,
            policy,
            conn: None,
        })
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Runs `op` against a live connection, reconnecting and retrying
    /// per the policy.  Only the *first* error classification matters:
    /// a permanent rejection returns immediately, connection state
    /// dropped either way.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.connection() {
                Ok(client) => op(client),
                Err(err) => Err(ClientError::Io(err)),
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(error) => error,
            };
            // Whatever happened, this connection is suspect.
            self.conn = None;
            if !RetryPolicy::retryable(&error) || attempt >= self.policy.max_attempts {
                return Err(error);
            }
            let delay = self.policy.delay_for(attempt);
            if let Some(deadline) = self.policy.deadline {
                if start.elapsed() + delay >= deadline {
                    return Err(error);
                }
            }
            sfi_obs::metrics().client_retries.inc();
            std::thread::sleep(delay);
        }
    }

    fn connection(&mut self) -> io::Result<&mut Client> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.addr)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// [`Client::ping`], with retries.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        self.with_retry(|client| client.ping())
    }

    /// Submits a campaign idempotently: the key makes resubmission after
    /// a lost acknowledgement return the original job, so the whole
    /// operation is safe to retry.
    pub fn submit(
        &mut self,
        def: &CampaignDef,
        priority: Priority,
        client: Option<&str>,
        idempotency_key: &str,
    ) -> Result<JobTicket, ClientError> {
        self.with_retry(|conn| conn.submit_keyed(def, priority, client, Some(idempotency_key)))
    }

    /// [`Client::status`], with retries.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.with_retry(|client| client.status(job))
    }

    /// [`Client::result`], with retries.
    pub fn result(&mut self, job: u64) -> Result<Json, ClientError> {
        self.with_retry(|client| client.result(job))
    }

    /// [`Client::wait`], with retries around each status poll.
    pub fn wait(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(job)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// [`Client::stream`], with retries.  A retried stream restarts from
    /// the beginning on the wire, but cells already delivered to
    /// `on_cell` are skipped by their stream index, so the callback sees
    /// every cell exactly once even across reconnects.
    pub fn stream(
        &mut self,
        job: u64,
        mut on_cell: impl FnMut(&Json),
    ) -> Result<String, ClientError> {
        let mut next = 0usize;
        self.with_retry(|client| {
            client.send(&Request::Stream(job))?;
            loop {
                match client.receive()? {
                    Response::Cell { index, cell, .. } => {
                        if index >= next {
                            on_cell(&cell);
                            next = index + 1;
                        }
                    }
                    Response::End { state, .. } => return Ok(state.as_str().to_string()),
                    other => return Client::unexpected("cell' or 'end", &other),
                }
            }
        })
    }

    /// [`Client::drain`], with retries on transport failures (the drain
    /// request itself is idempotent server-side).
    pub fn drain(&mut self) -> Result<usize, ClientError> {
        self.with_retry(|client| client.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(400),
            deadline: None,
            jitter_seed: 7,
        };
        for attempt in 1..=7 {
            assert_eq!(
                policy.delay_for(attempt),
                policy.delay_for(attempt),
                "attempt {attempt} reproduces"
            );
        }
        for attempt in 1..=20 {
            let delay = policy.delay_for(attempt);
            assert!(delay <= policy.max_delay, "attempt {attempt}: {delay:?}");
            let floor = policy
                .base_delay
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(policy.max_delay);
            assert!(
                delay >= floor / 2,
                "attempt {attempt}: {delay:?} under half"
            );
        }
        let other_seed = RetryPolicy {
            jitter_seed: 8,
            ..policy.clone()
        };
        assert!(
            (1..=7).any(|a| policy.delay_for(a) != other_seed.delay_for(a)),
            "different seeds produce different schedules"
        );
    }

    #[test]
    fn transient_errors_retry_and_permanent_ones_do_not() {
        let transient = [
            ClientError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "reset")),
            ClientError::Protocol("server closed the connection".into()),
            ClientError::Server {
                code: ErrorCode::ShuttingDown,
                message: "going down".into(),
                detail: None,
            },
            ClientError::Server {
                code: ErrorCode::Draining,
                message: "draining".into(),
                detail: None,
            },
        ];
        for error in &transient {
            assert!(RetryPolicy::retryable(error), "{error} should retry");
        }
        let permanent = [
            ErrorCode::BadRequest,
            ErrorCode::QuotaExceeded,
            ErrorCode::UnknownJob,
            ErrorCode::NoResult,
            ErrorCode::ResultEvicted,
            ErrorCode::ResultTooLarge,
        ];
        for code in permanent {
            let error = ClientError::Server {
                code,
                message: "no".into(),
                detail: None,
            };
            assert!(!RetryPolicy::retryable(&error), "{error} must not retry");
        }
    }
}
