//! The campaign daemon: TCP listener, connection handlers and lifecycle.
//!
//! [`Server::start`] builds (or cache-restores) the characterized
//! [`CaseStudy`] once, spawns the scheduler thread and the accept loop,
//! and returns immediately; [`Server::join`] parks until a client sends
//! `shutdown` (or [`Server::shutdown`] is called locally).  Shutdown is
//! graceful: running jobs are cancelled at the next trial boundary, and
//! because the engine checkpoints every completed cell as it finishes,
//! all completed work is already flushed to disk by the time the process
//! exits.

use crate::jobs::{self, JobTable, NextCell, SchedulerConfig};
use crate::protocol::{read_frame, write_frame, PoffRequest, Request, PROTOCOL_VERSION};
use crate::wire::WireError;
use sfi_campaign::{adaptive_poff, CampaignEngine, PoffSearch, TrialBudget};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The case study to characterize and serve.
    pub study: CaseStudyConfig,
    /// Engine worker threads (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Persistent characterization cache directory; restarts with the
    /// same study configuration skip the gate-level DTA rebuild.
    pub cache_dir: Option<PathBuf>,
    /// Per-job campaign checkpoint directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Suppress the startup log lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            study: CaseStudyConfig::paper(),
            threads: None,
            cache_dir: None,
            checkpoint_dir: None,
            quiet: false,
        }
    }
}

impl ServeConfig {
    /// A quiet, ephemeral-port, scaled-down configuration for tests and
    /// doc-tests.
    pub fn fast_for_tests() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            study: CaseStudyConfig::fast_for_tests(),
            quiet: true,
            ..ServeConfig::default()
        }
    }
}

/// Shared server context handed to every connection handler.
struct Context {
    study: Arc<CaseStudy>,
    table: Arc<JobTable>,
    threads: Option<usize>,
    cache_hit: bool,
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    table: Arc<JobTable>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
    cache_hit: bool,
}

impl Server {
    /// Characterizes the study (warm from the cache when possible), binds
    /// the listener and spawns the scheduler and accept threads.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let study = Arc::new(match &config.cache_dir {
            Some(dir) => CaseStudy::build_cached(config.study.clone(), dir),
            None => CaseStudy::build(config.study.clone()),
        });
        let cache_hit = study.characterization_cache_hit();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        if !config.quiet {
            println!("sfi-serve listening on {addr}");
            println!(
                "characterization: {} (fingerprint {:016x})",
                if cache_hit {
                    "cache hit"
                } else {
                    "cache miss, computed"
                },
                config.study.fingerprint()
            );
        }

        let table = Arc::new(JobTable::new());
        let scheduler = {
            let study = study.clone();
            let table = table.clone();
            let scheduler_config = SchedulerConfig {
                threads: config.threads,
                checkpoint_dir: config.checkpoint_dir.clone(),
            };
            thread::spawn(move || jobs::run_scheduler(study, table, scheduler_config))
        };

        let stopping = Arc::new(AtomicBool::new(false));
        let accept = {
            let context = Arc::new(Context {
                study,
                table: table.clone(),
                threads: config.threads,
                cache_hit,
            });
            let stopping = stopping.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let context = context.clone();
                    let stopping = stopping.clone();
                    thread::spawn(move || {
                        let peer = stream.peer_addr().ok();
                        if let Err(err) = handle_connection(stream, &context, &stopping) {
                            // Disconnects are routine; only log real errors.
                            if err.kind() != io::ErrorKind::UnexpectedEof
                                && err.kind() != io::ErrorKind::BrokenPipe
                                && err.kind() != io::ErrorKind::ConnectionReset
                            {
                                eprintln!("sfi-serve: connection {peer:?}: {err}");
                            }
                        }
                    });
                }
            })
        };

        Ok(Server {
            addr,
            table,
            accept: Some(accept),
            scheduler: Some(scheduler),
            stopping,
            cache_hit,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the characterization came from the persistent cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Parks until the daemon shuts down (via a client `shutdown` request
    /// or [`Server::shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates a local shutdown and waits for the daemon to exit.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.table.stop();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server must not leave detached daemon threads running.
        self.stopping.store(true, Ordering::SeqCst);
        self.table.stop();
        let _ = TcpStream::connect(self.addr);
        self.join_threads();
    }
}

fn error_frame(message: impl Into<String>) -> Json {
    Json::obj([
        ("type", Json::Str("error".into())),
        ("message", Json::Str(message.into())),
    ])
}

fn status_frame(status: &jobs::JobStatus) -> Json {
    Json::obj([
        ("type", Json::Str("status".into())),
        ("job", Json::Str(status.job.to_string())),
        ("state", Json::Str(status.state.as_str().into())),
        ("completed_cells", Json::Num(status.completed_cells as f64)),
        ("total_cells", Json::Num(status.total_cells as f64)),
        ("executed_trials", Json::Num(status.executed_trials as f64)),
        (
            "error",
            match &status.error {
                Some(message) => Json::Str(message.clone()),
                None => Json::Null,
            },
        ),
    ])
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn handle_connection(
    stream: TcpStream,
    context: &Context,
    stopping: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader)? {
            None => return Ok(()),
            Some(Ok(frame)) => frame,
            Some(Err(WireError(message))) => {
                write_frame(&mut writer, &error_frame(message))?;
                continue;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(WireError(message)) => {
                write_frame(&mut writer, &error_frame(message))?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                let study = &context.study;
                let config = study.config();
                let frame = Json::obj([
                    ("type", Json::Str("pong".into())),
                    ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
                    (
                        "study_fingerprint",
                        Json::Str(config.fingerprint().to_string()),
                    ),
                    (
                        "sta_limit_mhz",
                        Json::Num(study.sta_limit_mhz(config.nominal_vdd)),
                    ),
                    ("nominal_vdd", Json::Num(config.nominal_vdd)),
                    (
                        "voltages",
                        Json::Arr(config.voltages.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                    ("characterization_cache_hit", Json::Bool(context.cache_hit)),
                    ("jobs", Json::Num(context.table.job_count() as f64)),
                ]);
                write_frame(&mut writer, &frame)?;
            }
            Request::Submit(def) => {
                match validate_voltages(context, &def).and_then(|()| def.instantiate()) {
                    Ok(spec) => {
                        let total_cells = spec.cells().len();
                        let fingerprint = spec.fingerprint();
                        // The instantiated spec travels into the job table;
                        // the scheduler runs it as-is instead of
                        // re-instantiating from the definition.
                        let job = context.table.submit(spec);
                        let frame = Json::obj([
                            ("type", Json::Str("submitted".into())),
                            ("job", Json::Str(job.to_string())),
                            ("total_cells", Json::Num(total_cells as f64)),
                            ("fingerprint", Json::Str(fingerprint.to_string())),
                        ]);
                        write_frame(&mut writer, &frame)?;
                    }
                    Err(WireError(message)) => {
                        write_frame(&mut writer, &error_frame(message))?;
                    }
                }
            }
            Request::Status(job) => match context.table.status(job) {
                Some(status) => write_frame(&mut writer, &status_frame(&status))?,
                None => write_frame(&mut writer, &error_frame(format!("unknown job {job}")))?,
            },
            Request::Stream(job) => stream_job(&mut writer, context, job)?,
            Request::Result(job) => match context.table.result(job) {
                Some(doc) => {
                    let frame = Json::obj([
                        ("type", Json::Str("result".into())),
                        ("job", Json::Str(job.to_string())),
                        ("document", doc),
                    ]);
                    // A result document aggregating many large cells can
                    // exceed what read_frame accepts; send an actionable
                    // error instead of a frame the client cannot read.
                    let line = frame.to_string();
                    if line.len() >= crate::protocol::MAX_FRAME_BYTES {
                        write_frame(
                            &mut writer,
                            &error_frame(format!(
                                "result document of job {job} is {} bytes, above the \
                                 frame limit; fetch it cell by cell with 'stream'",
                                line.len()
                            )),
                        )?;
                    } else {
                        use std::io::Write as _;
                        writer.write_all(line.as_bytes())?;
                        writer.write_all(b"\n")?;
                        writer.flush()?;
                    }
                }
                None => write_frame(
                    &mut writer,
                    &error_frame(format!("job {job} has no retained result")),
                )?,
            },
            Request::Poff(request) => {
                let frame = run_poff(context, &request);
                write_frame(&mut writer, &frame)?;
            }
            Request::Cancel(job) => {
                if context.table.cancel(job) {
                    let frame = Json::obj([
                        ("type", Json::Str("cancelled".into())),
                        ("job", Json::Str(job.to_string())),
                    ]);
                    write_frame(&mut writer, &frame)?;
                } else {
                    write_frame(&mut writer, &error_frame(format!("unknown job {job}")))?;
                }
            }
            Request::Shutdown => {
                stopping.store(true, Ordering::SeqCst);
                context.table.stop();
                write_frame(&mut writer, &Json::obj([("type", Json::Str("bye".into()))]))?;
                // Unblock the accept loop so the daemon can exit.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

/// Rejects campaign cells whose fault model needs a characterization this
/// daemon does not have, so the failure surfaces as a clean `error` frame
/// at submit time instead of a failed job at run time.
fn validate_voltages(context: &Context, def: &crate::wire::CampaignDef) -> Result<(), WireError> {
    let voltages = &context.study.config().voltages;
    for (index, cell) in def.cells.iter().enumerate() {
        let needs_characterization = matches!(
            cell.model,
            sfi_core::FaultModel::StaPeriodViolation
                | sfi_core::FaultModel::StaWithNoise
                | sfi_core::FaultModel::StatisticalDta
        );
        if needs_characterization && !voltages.iter().any(|&v| (v - cell.vdd).abs() < 1e-9) {
            return Err(WireError(format!(
                "cell {index}: voltage {} V is not characterized by this daemon \
                 (available: {voltages:?})",
                cell.vdd
            )));
        }
    }
    Ok(())
}

/// Streams job cells in completion order, then the terminating `end`.
fn stream_job(writer: &mut TcpStream, context: &Context, job: u64) -> io::Result<()> {
    let mut index = 0usize;
    loop {
        match context.table.next_cell(job, index) {
            NextCell::Cell(cell) => {
                let frame = Json::obj([
                    ("type", Json::Str("cell".into())),
                    ("job", Json::Str(job.to_string())),
                    ("index", Json::Num(index as f64)),
                    ("cell", cell),
                ]);
                write_frame(writer, &frame)?;
                index += 1;
            }
            NextCell::End(state) => {
                let frame = Json::obj([
                    ("type", Json::Str("end".into())),
                    ("job", Json::Str(job.to_string())),
                    ("state", Json::Str(state.as_str().into())),
                    ("streamed_cells", Json::Num(index as f64)),
                ]);
                return write_frame(writer, &frame);
            }
            NextCell::Unknown => {
                return write_frame(writer, &error_frame(format!("unknown job {job}")));
            }
        }
    }
}

/// Runs a PoFF bisection synchronously on the handler thread (the engine
/// underneath still parallelizes each evaluated cell's trials).
fn run_poff(context: &Context, request: &PoffRequest) -> Json {
    if !context
        .study
        .config()
        .voltages
        .iter()
        .any(|&v| (v - request.vdd).abs() < 1e-9)
    {
        return error_frame(format!(
            "voltage {} V is not characterized by this daemon",
            request.vdd
        ));
    }
    let mut engine = CampaignEngine::new();
    if let Some(threads) = context.threads {
        engine = engine.with_threads(threads);
    }
    let search = PoffSearch {
        lo_mhz: request.lo_mhz,
        hi_mhz: request.hi_mhz,
        resolution_mhz: request.resolution_mhz,
        budget: TrialBudget::fixed(request.trials),
    };
    let base_point = OperatingPoint::new(request.lo_mhz, request.vdd)
        .with_noise_sigma_mv(request.noise_sigma_mv);
    let outcome = adaptive_poff(
        &engine,
        &context.study,
        request.benchmark.instantiate(),
        request.model,
        base_point,
        search,
        request.seed,
    );
    let evaluated: Vec<Json> = outcome
        .evaluated
        .iter()
        .map(|point| {
            Json::obj([
                ("freq_mhz", Json::Num(point.freq_mhz)),
                (
                    "correct_fraction",
                    Json::Num(point.summary.correct_fraction()),
                ),
                (
                    "finished_fraction",
                    Json::Num(point.summary.finished_fraction()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("poff".into())),
        (
            "poff_mhz",
            match outcome.poff_mhz {
                Some(freq) => Json::Num(freq),
                None => Json::Null,
            },
        ),
        ("cells_evaluated", Json::Num(outcome.cells_evaluated as f64)),
        ("evaluated", Json::Arr(evaluated)),
    ])
}
