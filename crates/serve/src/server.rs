//! The campaign daemon: TCP listener, connection handlers and lifecycle.
//!
//! [`Server::start`] builds (or cache-restores) the characterized
//! [`CaseStudy`] once, spawns the scheduler thread and the accept loop,
//! and returns immediately; [`Server::join`] parks until a client sends
//! `shutdown` (or [`Server::shutdown`] is called locally).  Shutdown is
//! graceful: running jobs are cancelled at the next trial boundary, and
//! because the engine checkpoints every completed cell as it finishes,
//! all completed work is already flushed to disk by the time the process
//! exits.

use crate::jobs::{self, JobTable, NextCell, ResultFetch, SchedulerConfig, TableLimits};
use crate::metrics::{self, PrometheusListener};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, PoffPoint, PoffReply, PoffRequest, Request, Response,
    ServerInfo, PROTOCOL_VERSION,
};
use crate::wire::{BenchmarkDef, WireError};
use sfi_campaign::{adaptive_poff, CampaignEngine, PoffSearch, TrialBudget};
use sfi_core::json::Json;
use sfi_core::study::{CaseStudy, CaseStudyConfig};
use sfi_fault::OperatingPoint;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The case study to characterize and serve.
    pub study: CaseStudyConfig,
    /// Global engine worker-thread budget, shared by all concurrently
    /// running jobs (`None` = all CPUs).
    pub threads: Option<usize>,
    /// Jobs the scheduler runs at once; each gets an equal share of the
    /// thread budget.
    pub max_concurrent_jobs: usize,
    /// Per-client queued-jobs quota (`None` = unlimited).
    pub max_queued_per_client: Option<usize>,
    /// Per-client running-jobs quota (`None` = unlimited).
    pub max_running_per_client: Option<usize>,
    /// Byte cap on retained result JSON; above it the least-recently
    /// fetched results are evicted (`None` = retain until shutdown).
    pub result_cap_bytes: Option<usize>,
    /// Persistent characterization cache directory; restarts with the
    /// same study configuration skip the gate-level DTA rebuild.
    pub cache_dir: Option<PathBuf>,
    /// Per-job campaign checkpoint directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Durable-state directory: every job transition is journaled here
    /// (fsync'd), and a restarted daemon replays the journal to restore
    /// queued jobs and resume interrupted ones (`None` = no journal).
    pub state_dir: Option<PathBuf>,
    /// Seconds a `drain` waits for running jobs to finish before
    /// cancelling them and exiting anyway (their completed cells are
    /// journaled, so a successor daemon resumes where they stopped).
    pub drain_timeout_seconds: f64,
    /// Per-connection read/write deadline in seconds; a peer that stays
    /// silent longer is disconnected (slow-loris/dead-peer protection).
    /// `0` disables the deadline.
    pub conn_timeout_seconds: f64,
    /// Maximum concurrently served connections; excess connections get
    /// one typed error frame and are closed (`None` = unlimited).
    pub max_connections: Option<usize>,
    /// Address for the Prometheus text-exposition listener (`None` = no
    /// listener; the `metrics` wire frame works either way).
    pub metrics_addr: Option<String>,
    /// Capacity of the structured-event ring (`None` = keep the default,
    /// [`sfi_obs::DEFAULT_EVENT_CAPACITY`]).
    pub event_buffer: Option<usize>,
    /// Queue-depth gauge level (total queued jobs, all priorities) above
    /// which the `scheduler_queue_saturated` alert arms.
    pub alert_queue_depth: f64,
    /// Seconds the queue depth must stay above the limit before the alert
    /// fires (0 = fire on the first saturated evaluation).
    pub alert_hold_seconds: f64,
    /// Event-ring drop rate (events per second) above which the
    /// `event_ring_dropping` alert fires (0 = fire on any drops).
    pub alert_drop_rate: f64,
    /// Suppress the startup log lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            study: CaseStudyConfig::paper(),
            threads: None,
            max_concurrent_jobs: 1,
            max_queued_per_client: None,
            max_running_per_client: None,
            result_cap_bytes: None,
            cache_dir: None,
            checkpoint_dir: None,
            state_dir: None,
            drain_timeout_seconds: 30.0,
            conn_timeout_seconds: 300.0,
            max_connections: None,
            metrics_addr: None,
            event_buffer: None,
            alert_queue_depth: 8.0,
            alert_hold_seconds: 5.0,
            alert_drop_rate: 0.0,
            quiet: false,
        }
    }
}

impl ServeConfig {
    /// A quiet, ephemeral-port, scaled-down configuration for tests and
    /// doc-tests.
    pub fn fast_for_tests() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            study: CaseStudyConfig::fast_for_tests(),
            quiet: true,
            ..ServeConfig::default()
        }
    }

    fn limits(&self) -> TableLimits {
        TableLimits {
            max_queued_per_client: self.max_queued_per_client,
            max_running_per_client: self.max_running_per_client,
            result_cap_bytes: self.result_cap_bytes,
        }
    }
}

/// Events an `events` request returns when it does not name a `limit`.
const DEFAULT_EVENT_LIMIT: u64 = 100;

/// Trace records a `trace` request returns when it does not name a
/// `limit`.
const DEFAULT_TRACE_LIMIT: u64 = 1000;

/// Shared server context handed to every connection handler.
struct Context {
    study: Arc<CaseStudy>,
    table: Arc<JobTable>,
    scheduler: SchedulerConfig,
    cache_hit: bool,
    metrics_enabled: bool,
    /// The daemon's own listen address, used to poke the accept loop
    /// awake when a drain completes and the daemon should exit.
    addr: SocketAddr,
    /// How long a drain waits for running jobs before cancelling them.
    drain_timeout: Duration,
    /// Ensures only one drainer thread is ever spawned, however many
    /// clients send `drain`.
    drainer_spawned: AtomicBool,
}

/// Decrements the live-connection counter when a handler thread exits,
/// whichever way it exits.
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    table: Arc<JobTable>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
    cache_hit: bool,
    metrics: Option<PrometheusListener>,
}

impl Server {
    /// Characterizes the study (warm from the cache when possible), binds
    /// the listener and spawns the scheduler and accept threads.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let study = Arc::new(match &config.cache_dir {
            Some(dir) => CaseStudy::build_cached(config.study.clone(), dir),
            None => CaseStudy::build(config.study.clone()),
        });
        let cache_hit = study.characterization_cache_hit();
        if cache_hit {
            sfi_obs::metrics().cache_hits.inc();
        } else {
            sfi_obs::metrics().cache_misses.inc();
        }
        if let Some(capacity) = config.event_buffer {
            sfi_obs::events().set_capacity(capacity);
        }
        sfi_obs::alerts::alerts().install(sfi_obs::default_rules(
            config.alert_queue_depth,
            config.alert_hold_seconds,
            config.alert_drop_rate,
        ));
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(PrometheusListener::start(addr)?),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let scheduler_config = SchedulerConfig {
            threads: config.threads,
            max_concurrent_jobs: config.max_concurrent_jobs.max(1),
            checkpoint_dir: config.checkpoint_dir.clone(),
        };
        if !config.quiet {
            println!("sfi-serve listening on {addr}");
            println!(
                "characterization: {} (fingerprint {:016x})",
                if cache_hit {
                    "cache hit"
                } else {
                    "cache miss, computed"
                },
                config.study.fingerprint()
            );
            println!(
                "scheduler: {} concurrent job(s) × {} thread(s), queued quota {}, \
                 running quota {}, result cap {}",
                scheduler_config.max_concurrent_jobs,
                scheduler_config.threads_per_job(),
                match config.max_queued_per_client {
                    Some(n) => n.to_string(),
                    None => "unlimited".into(),
                },
                match config.max_running_per_client {
                    Some(n) => n.to_string(),
                    None => "unlimited".into(),
                },
                match config.result_cap_bytes {
                    Some(n) => format!("{n} bytes"),
                    None => "unlimited".into(),
                },
            );
            if let Some(listener) = &metrics_listener {
                println!(
                    "metrics: Prometheus exposition on {}",
                    listener.local_addr()
                );
            }
        }

        // Journal recovery happens before the scheduler thread exists, so
        // restored jobs are queued (and their seed cells attached) before
        // anything can be dispatched.  The replay is compacted into a
        // fresh journal so the file does not grow across generations.
        let journal_state = match &config.state_dir {
            Some(state_dir) => {
                let records = crate::journal::replay_file(state_dir)?;
                let recovered = crate::journal::recover(&records);
                let compacted = crate::journal::compaction_records(&recovered);
                let journal = crate::journal::Journal::rewrite(state_dir, &compacted)?;
                Some((Arc::new(journal), recovered))
            }
            None => None,
        };
        let mut table = JobTable::with_limits(config.limits());
        if let Some((journal, _)) = &journal_state {
            table = table.with_journal(journal.clone());
        }
        let table = Arc::new(table);
        if let Some((journal, recovered)) = journal_state {
            let total = recovered.len();
            let live = recovered
                .iter()
                .filter(|job| job.terminal.is_none())
                .count();
            for job in recovered {
                let spec = if job.terminal.is_none() {
                    instantiate_recovered(&study, &job.spec)
                } else {
                    None
                };
                table.restore(job, spec);
            }
            if !config.quiet && total > 0 {
                println!(
                    "journal: recovered {total} job(s) ({live} live) from {}",
                    journal.path().display()
                );
            }
        }
        let scheduler = {
            let study = study.clone();
            let table = table.clone();
            let scheduler_config = scheduler_config.clone();
            thread::spawn(move || jobs::run_scheduler(study, table, scheduler_config))
        };

        let stopping = Arc::new(AtomicBool::new(false));
        let conn_timeout = if config.conn_timeout_seconds > 0.0 {
            Some(Duration::from_secs_f64(config.conn_timeout_seconds))
        } else {
            None
        };
        let max_connections = config.max_connections;
        let accept = {
            let context = Arc::new(Context {
                study,
                table: table.clone(),
                scheduler: scheduler_config,
                cache_hit,
                metrics_enabled: metrics_listener.is_some(),
                addr,
                drain_timeout: Duration::from_secs_f64(config.drain_timeout_seconds.max(0.0)),
                drainer_spawned: AtomicBool::new(false),
            });
            let stopping = stopping.clone();
            let live_connections = Arc::new(AtomicUsize::new(0));
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    // Deadlines apply to every read and write on the
                    // connection, so a dead or stalled peer cannot pin a
                    // handler thread (or a connection slot) forever.
                    if let Some(timeout) = conn_timeout {
                        let _ = stream.set_read_timeout(Some(timeout));
                        let _ = stream.set_write_timeout(Some(timeout));
                    }
                    let slot = ConnectionSlot(live_connections.clone());
                    if let Some(cap) = max_connections {
                        if live_connections.fetch_add(1, Ordering::SeqCst) >= cap {
                            let mut stream = stream;
                            let _ = reply(
                                &mut stream,
                                &Response::error(
                                    ErrorCode::QuotaExceeded,
                                    format!("the daemon is serving {cap} connections; retry later"),
                                ),
                            );
                            drop(slot);
                            continue;
                        }
                    } else {
                        live_connections.fetch_add(1, Ordering::SeqCst);
                    }
                    let context = context.clone();
                    let stopping = stopping.clone();
                    thread::spawn(move || {
                        let _slot = slot;
                        let peer = stream.peer_addr().ok();
                        if let Err(err) = handle_connection(stream, &context, &stopping) {
                            // A peer that goes silent past the deadline is
                            // disconnected and counted, not logged as an
                            // error.
                            if err.kind() == io::ErrorKind::WouldBlock
                                || err.kind() == io::ErrorKind::TimedOut
                            {
                                sfi_obs::metrics().conn_timeouts.inc();
                            } else if err.kind() != io::ErrorKind::UnexpectedEof
                                && err.kind() != io::ErrorKind::BrokenPipe
                                && err.kind() != io::ErrorKind::ConnectionReset
                            {
                                // Disconnects are routine; only log real
                                // errors.
                                eprintln!("sfi-serve: connection {peer:?}: {err}");
                            }
                        }
                    });
                }
            })
        };

        Ok(Server {
            addr,
            table,
            accept: Some(accept),
            scheduler: Some(scheduler),
            stopping,
            cache_hit,
            metrics: metrics_listener,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the characterization came from the persistent cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The bound Prometheus listener address, if `metrics_addr` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(PrometheusListener::local_addr)
    }

    /// Parks until the daemon shuts down (via a client `shutdown` request
    /// or [`Server::shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates a local shutdown and waits for the daemon to exit.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.table.stop();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server must not leave detached daemon threads running.
        self.stopping.store(true, Ordering::SeqCst);
        self.table.stop();
        let _ = TcpStream::connect(self.addr);
        self.join_threads();
    }
}

fn reply(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    write_frame(writer, &response.to_json())
}

fn unknown_job(writer: &mut TcpStream, job: u64) -> io::Result<()> {
    reply(
        writer,
        &Response::error(ErrorCode::UnknownJob, format!("unknown job {job}")),
    )
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn handle_connection(
    stream: TcpStream,
    context: &Arc<Context>,
    stopping: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader)? {
            None => return Ok(()),
            Some(Ok(frame)) => frame,
            Some(Err(WireError(message))) => {
                reply(
                    &mut writer,
                    &Response::error(ErrorCode::BadRequest, message),
                )?;
                continue;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(WireError(message)) => {
                reply(
                    &mut writer,
                    &Response::error(ErrorCode::BadRequest, message),
                )?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                let study = &context.study;
                let config = study.config();
                let limits = context.table.limits();
                let totals = context.table.totals();
                let info = ServerInfo {
                    v: PROTOCOL_VERSION,
                    study_fingerprint: config.fingerprint(),
                    sta_limit_mhz: study.sta_limit_mhz(config.nominal_vdd),
                    nominal_vdd: config.nominal_vdd,
                    voltages: config.voltages.clone(),
                    characterization_cache_hit: context.cache_hit,
                    jobs: context.table.job_count(),
                    running_jobs: context.table.running_count(),
                    max_concurrent_jobs: context.scheduler.max_concurrent_jobs,
                    threads_per_job: context.scheduler.threads_per_job(),
                    max_queued_per_client: limits.max_queued_per_client,
                    max_running_per_client: limits.max_running_per_client,
                    result_cap_bytes: limits.result_cap_bytes,
                    retained_result_bytes: context.table.retained_bytes(),
                    metrics_enabled: context.metrics_enabled,
                    preemptions_total: totals.preemptions,
                    evictions_total: totals.evictions,
                    events_dropped_total: sfi_obs::events().dropped(),
                    draining: context.table.draining(),
                };
                reply(&mut writer, &Response::Pong(info))?;
            }
            Request::Submit(submit) => {
                let client = submit.client.as_deref().unwrap_or("anonymous");
                if let Err(response) = verify_guest_programs(&submit.spec.benchmarks) {
                    reply(&mut writer, &response)?;
                    continue;
                }
                match validate_voltages(&context.study, &submit.spec)
                    .and_then(|()| submit.spec.instantiate())
                {
                    Ok(spec) => {
                        let total_cells = spec.cells().len();
                        let fingerprint = spec.fingerprint();
                        // The instantiated spec travels into the job table;
                        // the scheduler runs it as-is instead of
                        // re-instantiating from the definition.  The wire
                        // definition is what the journal records, since
                        // that is what a restarted daemon re-instantiates.
                        let spec_doc = if context.table.journal().is_some() {
                            Some(submit.spec.to_json())
                        } else {
                            None
                        };
                        match context.table.submit_keyed(
                            spec,
                            submit.priority,
                            client,
                            submit.idempotency_key.as_deref(),
                            spec_doc.as_ref(),
                        ) {
                            Ok(job) => reply(
                                &mut writer,
                                &Response::Submitted {
                                    job,
                                    total_cells,
                                    fingerprint,
                                    priority: submit.priority,
                                },
                            )?,
                            Err(jobs::SubmitRejected::QuotaExceeded(message)) => reply(
                                &mut writer,
                                &Response::error(ErrorCode::QuotaExceeded, message),
                            )?,
                            Err(jobs::SubmitRejected::ShuttingDown) => reply(
                                &mut writer,
                                &Response::error(
                                    ErrorCode::ShuttingDown,
                                    "the daemon is shutting down",
                                ),
                            )?,
                            Err(jobs::SubmitRejected::Draining) => reply(
                                &mut writer,
                                &Response::error(
                                    ErrorCode::Draining,
                                    "the daemon is draining and refuses new jobs",
                                ),
                            )?,
                        }
                    }
                    Err(WireError(message)) => {
                        reply(
                            &mut writer,
                            &Response::error(ErrorCode::BadRequest, message),
                        )?;
                    }
                }
            }
            Request::Status(job) => match context.table.status(job) {
                Some(status) => reply(&mut writer, &Response::Status(status))?,
                None => unknown_job(&mut writer, job)?,
            },
            Request::Stream(job) => stream_job(&mut writer, context, job)?,
            Request::Result(job) => match context.table.result(job) {
                ResultFetch::Document(document) => {
                    let frame = Response::ResultDoc { job, document };
                    // A result document aggregating many large cells can
                    // exceed what read_frame accepts; send an actionable
                    // error instead of a frame the client cannot read.
                    let line = frame.to_json().to_string();
                    if line.len() >= crate::protocol::MAX_FRAME_BYTES {
                        reply(
                            &mut writer,
                            &Response::error(
                                ErrorCode::ResultTooLarge,
                                format!(
                                    "result document of job {job} is {} bytes, above the \
                                     frame limit; fetch it cell by cell with 'stream'",
                                    line.len()
                                ),
                            ),
                        )?;
                    } else {
                        use std::io::Write as _;
                        writer.write_all(line.as_bytes())?;
                        writer.write_all(b"\n")?;
                        writer.flush()?;
                    }
                }
                ResultFetch::Evicted => reply(
                    &mut writer,
                    &Response::error(
                        ErrorCode::ResultEvicted,
                        format!("the result of job {job} was evicted by the retention cap"),
                    ),
                )?,
                ResultFetch::NotReady => reply(
                    &mut writer,
                    &Response::error(
                        ErrorCode::NoResult,
                        format!("job {job} has no retained result"),
                    ),
                )?,
                ResultFetch::Unknown => unknown_job(&mut writer, job)?,
            },
            Request::Poff(request) => {
                let response = run_poff(context, &request);
                reply(&mut writer, &response)?;
            }
            Request::Metrics => {
                let snapshot = metrics::snapshot_to_json(&sfi_obs::metrics().snapshot());
                reply(&mut writer, &Response::Metrics { snapshot })?;
            }
            Request::Events { limit, job } => {
                let ring = sfi_obs::events();
                let limit = limit.unwrap_or(DEFAULT_EVENT_LIMIT) as usize;
                let events = ring.recent(limit, job);
                reply(
                    &mut writer,
                    &Response::Events {
                        events: metrics::events_to_json(&events),
                        dropped: ring.dropped(),
                    },
                )?;
            }
            Request::Trace { limit, job } => {
                // Handler threads may hold un-flushed span buffers; flush
                // this one so its own frames are visible, then snapshot.
                sfi_obs::span::flush_thread();
                let store = sfi_obs::span::trace();
                let limit = limit.unwrap_or(DEFAULT_TRACE_LIMIT) as usize;
                let records = store.snapshot(limit, job);
                reply(
                    &mut writer,
                    &Response::Trace {
                        spans: metrics::trace_to_json(&records),
                        dropped: store.dropped(),
                    },
                )?;
            }
            Request::Alerts => {
                let statuses = sfi_obs::alerts::alerts().evaluate(&sfi_obs::metrics().snapshot());
                reply(
                    &mut writer,
                    &Response::Alerts {
                        alerts: metrics::alerts_to_json(&statuses),
                    },
                )?;
            }
            Request::Cancel(job) => {
                if context.table.cancel(job) {
                    reply(&mut writer, &Response::Cancelled { job })?;
                } else {
                    unknown_job(&mut writer, job)?;
                }
            }
            Request::Drain => {
                let running_jobs = context.table.running_count();
                context.table.drain();
                // One drainer thread per daemon, however many clients ask:
                // it waits for the running set to empty (or the timeout),
                // then shuts the daemon down.  Queued jobs stay journaled
                // for the successor.
                if !context.drainer_spawned.swap(true, Ordering::SeqCst) {
                    let context = context.clone();
                    let stopping = stopping.clone();
                    thread::spawn(move || {
                        let drained = context.table.wait_drained(context.drain_timeout);
                        if !drained {
                            eprintln!(
                                "sfi-serve: drain timeout after {:.1}s; cancelling running jobs",
                                context.drain_timeout.as_secs_f64()
                            );
                        }
                        stopping.store(true, Ordering::SeqCst);
                        context.table.stop();
                        // Unblock the accept loop so the daemon can exit.
                        let _ = TcpStream::connect(context.addr);
                    });
                }
                reply(&mut writer, &Response::DrainStarted { running_jobs })?;
            }
            Request::Shutdown => {
                stopping.store(true, Ordering::SeqCst);
                context.table.stop();
                reply(&mut writer, &Response::Bye)?;
                // Unblock the accept loop so the daemon can exit.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

/// Rejects campaign cells whose fault model needs a characterization this
/// daemon does not have, so the failure surfaces as a clean `error` frame
/// at submit time instead of a failed job at run time.
fn validate_voltages(study: &CaseStudy, def: &crate::wire::CampaignDef) -> Result<(), WireError> {
    let voltages = &study.config().voltages;
    for (index, cell) in def.cells.iter().enumerate() {
        let needs_characterization = matches!(
            cell.model,
            sfi_core::FaultModel::StaPeriodViolation
                | sfi_core::FaultModel::StaWithNoise
                | sfi_core::FaultModel::StatisticalDta
        );
        if needs_characterization && !voltages.iter().any(|&v| (v - cell.vdd).abs() < 1e-9) {
            return Err(WireError(format!(
                "cell {index}: voltage {} V is not characterized by this daemon \
                 (available: {voltages:?})",
                cell.vdd
            )));
        }
    }
    Ok(())
}

/// Re-instantiates a journaled wire definition during restart recovery.
///
/// `None` means the job cannot be resurrected on this daemon — the
/// definition no longer parses, names an uncharacterized voltage, or
/// fails instantiation — and it is restored as failed instead of queued.
fn instantiate_recovered(study: &CaseStudy, spec: &Json) -> Option<sfi_campaign::CampaignSpec> {
    let def = crate::wire::CampaignDef::from_json(spec).ok()?;
    validate_voltages(study, &def).ok()?;
    verify_guest_programs(&def.benchmarks).ok()?;
    def.instantiate().ok()
}

/// Streams job cells in completion order, then the terminating `end`.
fn stream_job(writer: &mut TcpStream, context: &Context, job: u64) -> io::Result<()> {
    let mut index = 0usize;
    loop {
        match context.table.next_cell(job, index) {
            NextCell::Cell(cell) => {
                reply(writer, &Response::Cell { job, index, cell })?;
                index += 1;
            }
            NextCell::End(state) => {
                return reply(
                    writer,
                    &Response::End {
                        job,
                        state,
                        streamed_cells: index,
                    },
                );
            }
            NextCell::Evicted => {
                return reply(
                    writer,
                    &Response::error(
                        ErrorCode::ResultEvicted,
                        format!("the cells of job {job} were evicted by the retention cap"),
                    ),
                );
            }
            NextCell::Unknown => {
                return unknown_job(writer, job);
            }
        }
    }
}

/// Statically verifies every guest program among the given benchmark
/// definitions *before* anything is instantiated, so a hostile program is
/// rejected before its construction-time golden run can even start.
///
/// Built-in recipes pass through untouched.  The first guest program that
/// fails to decode yields a plain `bad_request`; the first one with
/// error-level analyzer findings yields a `bad_request` whose structured
/// `detail` payload lists every finding (warnings included, so the
/// submitter sees the full report).
fn verify_guest_programs(defs: &[BenchmarkDef]) -> Result<(), Box<Response>> {
    for (index, def) in defs.iter().enumerate() {
        let BenchmarkDef::Program {
            words,
            dmem_words,
            fi_window,
            ..
        } = def
        else {
            continue;
        };
        let program = match sfi_isa::Program::from_words(words) {
            Ok(program) => program,
            Err(error) => {
                return Err(Box::new(Response::error(
                    ErrorCode::BadRequest,
                    format!("benchmark {index}: guest program does not decode: {error}"),
                )));
            }
        };
        let config =
            sfi_verify::VerifyConfig::new(*dmem_words).with_fi_window(fi_window.0..fi_window.1);
        let report = sfi_verify::verify(&program, &config);
        if report.has_errors() {
            return Err(Box::new(Response::error_with_detail(
                ErrorCode::BadRequest,
                format!(
                    "benchmark {index}: guest program rejected by static verification \
                     ({} error(s), {} warning(s))",
                    report.error_count(),
                    report.warning_count()
                ),
                verification_detail(index, &report),
            )));
        }
    }
    Ok(())
}

/// The structured `detail` payload of a verification rejection.
fn verification_detail(benchmark: usize, report: &sfi_verify::Report) -> Json {
    let findings = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::obj([
                ("code", Json::Str(d.rule.code().into())),
                ("severity", Json::Str(d.severity().to_string())),
                ("start_pc", Json::Num(f64::from(d.span.start))),
                ("end_pc", Json::Num(f64::from(d.span.end))),
                ("message", Json::Str(d.message.clone())),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::Str("verification".into())),
        ("benchmark", Json::Num(benchmark as f64)),
        ("findings", Json::Arr(findings)),
    ])
}

/// Runs a PoFF bisection synchronously on the handler thread (the engine
/// underneath still parallelizes each evaluated cell's trials within one
/// job's thread budget).
fn run_poff(context: &Context, request: &PoffRequest) -> Response {
    if !context
        .study
        .config()
        .voltages
        .iter()
        .any(|&v| (v - request.vdd).abs() < 1e-9)
    {
        return Response::error(
            ErrorCode::BadRequest,
            format!(
                "voltage {} V is not characterized by this daemon",
                request.vdd
            ),
        );
    }
    if let Err(response) = verify_guest_programs(std::slice::from_ref(&request.benchmark)) {
        return *response;
    }
    let benchmark = match request.benchmark.instantiate() {
        Ok(benchmark) => benchmark,
        Err(WireError(message)) => return Response::error(ErrorCode::BadRequest, message),
    };
    let engine = CampaignEngine::new().with_threads(context.scheduler.threads_per_job());
    let search = PoffSearch {
        lo_mhz: request.lo_mhz,
        hi_mhz: request.hi_mhz,
        resolution_mhz: request.resolution_mhz,
        budget: TrialBudget::fixed(request.trials),
    };
    let base_point = OperatingPoint::new(request.lo_mhz, request.vdd)
        .with_noise_sigma_mv(request.noise_sigma_mv);
    let outcome = adaptive_poff(
        &engine,
        &context.study,
        benchmark,
        request.model,
        base_point,
        search,
        request.seed,
    );
    Response::Poff(PoffReply {
        poff_mhz: outcome.poff_mhz,
        cells_evaluated: outcome.cells_evaluated,
        evaluated: outcome
            .evaluated
            .iter()
            .map(|point| PoffPoint {
                freq_mhz: point.freq_mhz,
                correct_fraction: point.summary.correct_fraction(),
                finished_fraction: point.summary.finished_fraction(),
            })
            .collect(),
    })
}
