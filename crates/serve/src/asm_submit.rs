//! Assemble-and-submit support: turns a `.s` text-assembly source into a
//! one-cell `program` campaign definition, and maps the verification
//! gate's rejection payload back to assembly source lines.
//!
//! This is the glue `sfi-client submit FILE.s` uses; it lives in the
//! library so loopback tests can drive the exact same path.

use crate::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
use sfi_asm::Assembly;
use sfi_core::json::Json;
use sfi_core::FaultModel;

/// Campaign-cell parameters for an assembled submission (everything the
/// `.s` file itself cannot express).
#[derive(Debug, Clone, PartialEq)]
pub struct AsmCellParams {
    /// Fault model of the single cell.
    pub model: FaultModel,
    /// Cell clock frequency in MHz.
    pub freq_mhz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Voltage-noise sigma in millivolts.
    pub noise_sigma_mv: f64,
    /// Monte-Carlo trials of the cell.
    pub trials: usize,
    /// Campaign seed, also stamped into the program recipe.
    pub seed: u64,
    /// Data-memory words when the source has no `.dmem` directive.
    pub default_dmem_words: usize,
}

impl Default for AsmCellParams {
    fn default() -> Self {
        AsmCellParams {
            model: FaultModel::StatisticalDta,
            freq_mhz: 100.0,
            vdd: 0.7,
            noise_sigma_mv: 0.0,
            trials: 20,
            seed: 1,
            default_dmem_words: 4_096,
        }
    }
}

/// Assembles `source` and wraps it into a one-benchmark, one-cell
/// campaign definition.
///
/// Returns the definition together with the [`Assembly`] so callers can
/// map later findings back through its line table.
///
/// # Errors
///
/// Assembly errors come back pre-rendered with caret context against
/// `path`; a missing `.output` directive is an error because the golden
/// run has no result region to compare without it.
pub fn campaign_from_asm(
    name: &str,
    path: &str,
    source: &str,
    params: &AsmCellParams,
) -> Result<(CampaignDef, Assembly), String> {
    let assembly = sfi_asm::assemble(source).map_err(|e| e.render(path, source))?;
    let output = assembly.output.ok_or_else(|| {
        format!("{path}: a submission needs a .output LO:HI directive (the dmem region holding the result)")
    })?;
    let mut def = CampaignDef::new(name, params.seed);
    let benchmark = def.add_benchmark(BenchmarkDef::Program {
        words: assembly.program.to_words(),
        dmem_words: assembly.resolved_dmem_words(params.default_dmem_words),
        fi_window: assembly.resolved_fi_window(),
        input: assembly.input.clone(),
        output,
        seed: params.seed,
    });
    def.cells.push(CellDef {
        benchmark,
        model: params.model,
        freq_mhz: params.freq_mhz,
        vdd: params.vdd,
        noise_sigma_mv: params.noise_sigma_mv,
        budget: BudgetDef::fixed(params.trials),
    });
    Ok((def, assembly))
}

/// Maps the findings of a `verification` rejection `detail` payload back
/// to assembly source lines, one rendered `path:line: CODE message` per
/// finding.
///
/// Findings whose pc does not map (for example on a benchmark that was
/// not assembled from this source) degrade to `path: CODE message`.
pub fn findings_with_lines(path: &str, assembly: &Assembly, detail: &Json) -> Vec<String> {
    let Some(findings) = detail.get("findings").and_then(Json::as_arr) else {
        return Vec::new();
    };
    findings
        .iter()
        .map(|finding| {
            let code = finding.get("code").and_then(Json::as_str).unwrap_or("V???");
            let message = finding
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no message)");
            let line = finding
                .get("start_pc")
                .and_then(Json::as_u64)
                .and_then(|pc| u32::try_from(pc).ok())
                .and_then(|pc| assembly.line_for_pc(pc));
            match line {
                Some(line) => format!("{path}:{line}: {code} {message}"),
                None => format!("{path}: {code} {message}"),
            }
        })
        .collect()
}

/// Whether a server rejection `detail` payload is a verification report
/// (the submission gate's typed rejection).
pub fn is_verification_detail(detail: &Json) -> bool {
    detail.get("kind").and_then(Json::as_str) == Some("verification")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
.dmem 8
.input 5
.output 1:2
l.lwz  r3, 0(r0)
l.addi r3, r3, 1
l.sw   4(r0), r3
";

    #[test]
    fn campaigns_wrap_the_assembled_program() {
        let params = AsmCellParams {
            trials: 7,
            seed: 11,
            ..AsmCellParams::default()
        };
        let (def, assembly) = campaign_from_asm("t", "t.s", SOURCE, &params).expect("builds");
        assert_eq!(def.seed, 11);
        assert_eq!(def.cells.len(), 1);
        assert_eq!(def.benchmarks.len(), 1);
        match &def.benchmarks[0] {
            BenchmarkDef::Program {
                words,
                dmem_words,
                input,
                output,
                seed,
                ..
            } => {
                assert_eq!(*words, assembly.program.to_words());
                assert_eq!(*dmem_words, 8);
                assert_eq!(*input, vec![5]);
                assert_eq!(*output, (1, 2));
                assert_eq!(*seed, 11);
            }
            other => panic!("expected a program benchmark, got {other:?}"),
        }
    }

    #[test]
    fn missing_output_directive_is_an_error() {
        let err = campaign_from_asm("t", "t.s", "l.nop\n", &AsmCellParams::default()).unwrap_err();
        assert!(err.contains(".output"), "{err}");
    }

    #[test]
    fn assembly_errors_are_rendered_with_carets() {
        let err = campaign_from_asm(
            "t",
            "t.s",
            ".output 1:2\nl.frob r1\n",
            &AsmCellParams::default(),
        )
        .unwrap_err();
        assert!(err.contains("t.s:2"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn rejection_findings_map_back_to_source_lines() {
        let (_, assembly) =
            campaign_from_asm("t", "t.s", SOURCE, &AsmCellParams::default()).expect("builds");
        // A synthetic verification payload pointing at pc 1 (line 5).
        let detail = Json::parse(
            r#"{"kind":"verification","findings":[
                {"code":"V004","severity":"error","message":"reads r7","start_pc":1,"end_pc":1},
                {"code":"V009","severity":"error","message":"empty","start_pc":99,"end_pc":99}
            ]}"#,
        )
        .expect("parses");
        assert!(is_verification_detail(&detail));
        let lines = findings_with_lines("t.s", &assembly, &detail);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "t.s:5: V004 reads r7");
        assert_eq!(
            lines[1], "t.s: V009 empty",
            "unmappable pc degrades gracefully"
        );
    }
}
