//! Serve mode: a long-lived campaign daemon with a JSON wire protocol.
//!
//! The batch binaries answer one-shot questions by re-running the whole
//! pipeline from a cold process.  This crate turns the reproduction into a
//! *service*: a daemon ([`server::Server`], shipped as the `sfi-serve`
//! binary) builds the characterized [`sfi_core::CaseStudy`] once — warm
//! from the persistent characterization cache when possible — and then
//! answers campaign queries over TCP until told to shut down.
//!
//! * [`wire`] — the serializable campaign description
//!   ([`wire::CampaignDef`]): benchmarks by name and parameters, cells as
//!   (benchmark, fault model, operating point, budget), convertible to a
//!   [`sfi_campaign::CampaignSpec`] on the server.
//! * [`protocol`] — the framing and message vocabulary: one JSON document
//!   per line, typed [`protocol::Request`] and [`protocol::Response`]
//!   frames (`submit` / `status` / `stream` / `poff` / `cancel` /
//!   `shutdown`, streamed per-cell results in the campaign checkpoint
//!   format, machine-readable error codes).  The frozen, versioned wire
//!   reference lives in `docs/PROTOCOL.md`; a doc-sync test keeps it and
//!   these types in lockstep.
//! * [`jobs`] — the in-daemon job table and multi-job scheduler:
//!   priority classes (`low`/`normal`/`high`, FIFO within a class), up
//!   to `--max-concurrent-jobs` jobs running at once on thread-budgeted
//!   [`sfi_campaign::CampaignEngine`]s, per-client queued/running
//!   quotas, cooperative preemption with bit-identical resume, and LRU
//!   eviction of retained results under a byte cap.
//! * [`journal`] — the durable job journal behind `--state-dir`: an
//!   append-only, fsync'd, CRC-framed log of every job transition.  A
//!   restarted daemon replays it (tolerating a torn tail), requeues
//!   interrupted jobs with their completed cells as seeds, and — because
//!   the engine is deterministic — produces results byte-identical to an
//!   uninterrupted run.
//! * [`server`] / [`client`] — the daemon and the typed client library
//!   (shipped as the `sfi-client` binary).  The client includes
//!   [`client::RetryPolicy`] / [`client::RetryingClient`]: capped
//!   exponential backoff with deterministic jitter, transparent
//!   reconnection, and idempotency-keyed resubmission.
//! * [`metrics`] — the observability surface: the `metrics`/`events`
//!   frame encodings over the global `sfi_obs` registry, and the
//!   optional Prometheus text-exposition listener (`--metrics-addr`).
//! * [`chaos`] — a fault-injecting TCP proxy for robustness tests:
//!   deterministic delays, mid-frame disconnects and byte corruption
//!   between a client and the daemon.
//!
//! Everything is `std::net` + worker threads — the workspace is offline
//! and dependency-free by design.
//!
//! # Quickstart
//!
//! ```
//! use sfi_serve::client::Client;
//! use sfi_serve::server::{ServeConfig, Server};
//! use sfi_serve::wire::{BenchmarkDef, BudgetDef, CampaignDef, CellDef};
//! use sfi_core::FaultModel;
//!
//! let server = Server::start(ServeConfig::fast_for_tests()).expect("daemon starts");
//! let mut client = Client::connect(server.local_addr()).expect("connects");
//!
//! let info = client.ping().expect("pong");
//! let mut def = CampaignDef::new("quickstart", 7);
//! let median = def.add_benchmark(BenchmarkDef::Median { values: 21, seed: 3 });
//! def.cells.push(CellDef {
//!     benchmark: median,
//!     model: FaultModel::StatisticalDta,
//!     freq_mhz: info.sta_limit_mhz * 0.95,
//!     vdd: 0.7,
//!     noise_sigma_mv: 10.0,
//!     budget: BudgetDef::fixed(2),
//! });
//!
//! let ticket = client.submit(&def).expect("accepted");
//! let outcome = client.stream(ticket.job, |_cell| {}).expect("streams");
//! assert_eq!(outcome, "done");
//! client.shutdown().expect("daemon exits");
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm_submit;
pub mod chaos;
pub mod client;
pub mod jobs;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod wire;
