//! The daemon's observability surface: JSON encodings of registry
//! snapshots and event rings for the `metrics`/`events` wire frames, and
//! the optional Prometheus text-exposition listener (`--metrics-addr`).
//!
//! The wire encoding follows the workspace JSON conventions: 64-bit
//! integers travel as decimal strings (JSON numbers are doubles and lose
//! precision past 2^53 — counters of simulated cycles get there), and
//! non-finite histogram bounds are spelled out (`"+Inf"`) because the
//! canonical encoder maps non-finite floats to `null`.

use sfi_core::json::Json;
use sfi_obs::{AlertStatus, Event, FieldValue, Sample, SampleValue, Snapshot, TraceRecord};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Formats a histogram upper bound the way Prometheus spells `le` labels.
fn le_string(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".into()
    } else {
        format!("{bound}")
    }
}

fn sample_to_json(sample: &Sample) -> Json {
    let labels = Json::obj(
        sample
            .labels
            .iter()
            .map(|(name, value)| (*name, Json::Str(value.clone())))
            .collect::<Vec<_>>(),
    );
    let value = match &sample.value {
        SampleValue::Counter(v) => Json::Str(v.to_string()),
        SampleValue::Gauge(v) => Json::Num(*v as f64),
        SampleValue::Histogram(h) => Json::obj([
            (
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(le, count)| {
                            Json::obj([
                                ("le", Json::Str(le_string(le))),
                                ("count", Json::Str(count.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sum", Json::Num(h.sum)),
            ("count", Json::Str(h.count.to_string())),
        ]),
    };
    Json::obj([("labels", labels), ("value", value)])
}

/// Encodes a registry snapshot as the `metrics` frame's `snapshot` member:
/// `{"families": [{"name", "help", "kind", "samples": [...]}]}`.
pub fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    Json::obj([(
        "families",
        Json::Arr(
            snapshot
                .families
                .iter()
                .map(|family| {
                    Json::obj([
                        ("name", Json::Str(family.name.into())),
                        ("help", Json::Str(family.help.into())),
                        ("kind", Json::Str(family.kind.as_str().into())),
                        (
                            "samples",
                            Json::Arr(family.samples.iter().map(sample_to_json).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Encodes one structured event: timestamp, kind, optional job/cell span
/// ids, and the free-form fields.
pub fn event_to_json(event: &Event) -> Json {
    let mut pairs = vec![
        ("ts_us", Json::Str(event.ts_us.to_string())),
        ("kind", Json::Str(event.kind.into())),
    ];
    if let Some(job) = event.job {
        pairs.push(("job", Json::Str(job.to_string())));
    }
    if let Some(cell) = event.cell {
        pairs.push(("cell", Json::Str(cell.to_string())));
    }
    pairs.push((
        "fields",
        Json::obj(
            event
                .fields
                .iter()
                .map(|(name, value)| {
                    let encoded = match value {
                        FieldValue::U64(v) => Json::Str(v.to_string()),
                        FieldValue::F64(v) => Json::Num(*v),
                        FieldValue::Str(v) => Json::Str(v.clone()),
                    };
                    (*name, encoded)
                })
                .collect::<Vec<_>>(),
        ),
    ));
    Json::obj(pairs)
}

/// Encodes a batch of events (oldest first) as the `events` frame's
/// `events` member.
pub fn events_to_json(events: &[Event]) -> Json {
    Json::Arr(events.iter().map(event_to_json).collect())
}

/// Encodes one trace record for the `trace` frame's `spans` member.
///
/// The `ph` member keeps the Chrome trace-event phase vocabulary (`"X"`
/// complete span, `"C"` counter series) so clients can convert records to
/// a `chrome://tracing` file mechanically; timestamps and span ids travel
/// as decimal strings per the workspace u64 convention.
fn trace_record_to_json(record: &TraceRecord) -> Json {
    match record {
        TraceRecord::Span(span) => {
            let mut pairs = vec![
                ("ph", Json::Str("X".into())),
                ("name", Json::Str(span.name.into())),
                ("cat", Json::Str(span.cat.into())),
                ("tid", Json::Num(span.tid as f64)),
                ("ts_us", Json::Str(span.start_us.to_string())),
                ("dur_us", Json::Str(span.dur_us.to_string())),
                ("id", Json::Str(span.id.to_string())),
                ("parent", Json::Str(span.parent.to_string())),
            ];
            if let Some(job) = span.job {
                pairs.push(("job", Json::Str(job.to_string())));
            }
            pairs.push((
                "args",
                Json::obj(
                    span.args
                        .iter()
                        .map(|(name, value)| {
                            let encoded = match value {
                                FieldValue::U64(v) => Json::Str(v.to_string()),
                                FieldValue::F64(v) => Json::Num(*v),
                                FieldValue::Str(v) => Json::Str(v.clone()),
                            };
                            (*name, encoded)
                        })
                        .collect::<Vec<_>>(),
                ),
            ));
            Json::obj(pairs)
        }
        TraceRecord::Counter(counter) => {
            let mut pairs = vec![
                ("ph", Json::Str("C".into())),
                ("name", Json::Str(counter.name.into())),
                ("tid", Json::Num(counter.tid as f64)),
                ("ts_us", Json::Str(counter.ts_us.to_string())),
            ];
            if let Some(job) = counter.job {
                pairs.push(("job", Json::Str(job.to_string())));
            }
            pairs.push((
                "series",
                Json::obj(
                    counter
                        .series
                        .iter()
                        .map(|&(name, value)| (name, Json::Num(value)))
                        .collect::<Vec<_>>(),
                ),
            ));
            Json::obj(pairs)
        }
    }
}

/// Encodes a batch of trace records (oldest first) as the `trace` frame's
/// `spans` member.
pub fn trace_to_json(records: &[TraceRecord]) -> Json {
    Json::Arr(records.iter().map(trace_record_to_json).collect())
}

/// Encodes alert-rule statuses as the `alerts` frame's `alerts` member.
pub fn alerts_to_json(statuses: &[AlertStatus]) -> Json {
    Json::Arr(
        statuses
            .iter()
            .map(|status| {
                Json::obj([
                    ("rule", Json::Str(status.rule.clone())),
                    ("family", Json::Str(status.family.clone())),
                    ("kind", Json::Str(status.kind.into())),
                    ("threshold", Json::Num(status.threshold)),
                    (
                        "value",
                        if status.value.is_finite() {
                            Json::Num(status.value)
                        } else {
                            Json::Null
                        },
                    ),
                    ("firing", Json::Bool(status.firing)),
                    (
                        "since_us",
                        match status.since_us {
                            Some(us) => Json::Str(us.to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("fired_total", Json::Str(status.fired_total.to_string())),
                    (
                        "resolved_total",
                        Json::Str(status.resolved_total.to_string()),
                    ),
                ])
            })
            .collect(),
    )
}

/// A minimal HTTP/1.x listener serving the daemon's observability routes:
/// `GET /metrics` (Prometheus text exposition), `GET /healthz` (liveness
/// JSON), `GET /trace` (Chrome trace-event JSON of the trace store) and
/// `GET /alerts` (alert-rule statuses).  Unknown paths get 404, non-GET
/// methods 405.
///
/// One thread, one connection at a time: scrapes are a few kilobytes every
/// few seconds, and the snapshot itself is lock-free, so there is nothing
/// to parallelize.  Dropping the listener stops the thread.
pub struct PrometheusListener {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PrometheusListener {
    /// Binds `addr` (port 0 for ephemeral) and starts serving scrapes.
    pub fn start(addr: &str) -> io::Result<PrometheusListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let handle = {
            let stopping = stopping.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = serve_scrape(stream);
                }
            })
        };
        Ok(PrometheusListener {
            addr,
            stopping,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for PrometheusListener {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Answers one request: parses the request line, routes on method and
/// path, drains the remaining headers, writes one response and closes.
///
/// The listener serves one connection at a time, so a silent peer would
/// wedge every later scrape; a fixed deadline bounds the damage.
fn serve_scrape(stream: TcpStream) -> io::Result<()> {
    let deadline = Some(std::time::Duration::from_secs(10));
    stream.set_read_timeout(deadline)?;
    stream.set_write_timeout(deadline)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; none of them affect routing.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    // Route on the path alone; ignore any `?query` suffix.
    let target = parts.next().unwrap_or("");
    let path = target.split('?').next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed; only GET is served\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                sfi_obs::prometheus::CONTENT_TYPE,
                sfi_obs::prometheus::render(&sfi_obs::metrics().snapshot()),
            ),
            "/healthz" => ("200 OK", "application/json", healthz_body()),
            "/trace" => (
                "200 OK",
                "application/json",
                sfi_obs::chrome_trace_json(&sfi_obs::span::trace().snapshot(usize::MAX, None)),
            ),
            "/alerts" => {
                let statuses = sfi_obs::alerts::alerts().evaluate(&sfi_obs::metrics().snapshot());
                ("200 OK", "application/json", {
                    let mut text = alerts_to_json(&statuses).to_string();
                    text.push('\n');
                    text
                })
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /healthz, /trace or /alerts\n".to_string(),
            ),
        }
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// The `/healthz` body: uptime plus scheduler liveness gauges, readable by
/// humans and machine-checkable by the CI smoke.
fn healthz_body() -> String {
    let metrics = sfi_obs::metrics();
    let queued: i64 = metrics
        .sched_queue_depth
        .iter()
        .map(sfi_obs::Gauge::get)
        .sum();
    let uptime = sfi_obs::clock::now_micros() as f64 / 1e6;
    let draining = metrics.draining.get() != 0;
    let doc = Json::obj([
        (
            "status",
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("draining", Json::Bool(draining)),
        ("uptime_seconds", Json::Num((uptime * 1e3).round() / 1e3)),
        ("queued_jobs", Json::Num(queued as f64)),
        (
            "running_jobs",
            Json::Num(metrics.sched_running.get() as f64),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn snapshot_encodes_counters_as_decimal_strings() {
        sfi_obs::metrics().trials.inc();
        let doc = snapshot_to_json(&sfi_obs::metrics().snapshot());
        let families = doc.get("families").and_then(Json::as_arr).expect("array");
        let trials = families
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some("sfi_trials_total"))
            .expect("sfi_trials_total present");
        assert_eq!(trials.get("kind").and_then(Json::as_str), Some("counter"));
        let samples = trials.get("samples").and_then(Json::as_arr).expect("array");
        let value = samples[0].get("value").expect("value");
        let count: u64 = value.as_str().expect("string").parse().expect("decimal");
        assert!(count >= 1);
    }

    #[test]
    fn histogram_bounds_spell_infinity() {
        sfi_obs::metrics().job_wait_seconds.observe(0.002);
        let doc = snapshot_to_json(&sfi_obs::metrics().snapshot());
        let text = doc.to_string();
        assert!(text.contains("\"+Inf\""), "{text}");
        // The canonical encoder must never see a non-finite number.
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn events_encode_span_ids_and_fields() {
        let event = Event::new("unit_test").job(7).cell(3).field("bytes", 42u64);
        let doc = event_to_json(&event);
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("unit_test"));
        assert_eq!(doc.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("cell").and_then(Json::as_u64), Some(3));
        let fields = doc.get("fields").expect("fields");
        assert_eq!(fields.get("bytes").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn trace_records_encode_with_phase_discriminators() {
        use sfi_obs::{CounterRecord, SpanRecord};
        let records = [
            TraceRecord::Span(SpanRecord {
                id: 9,
                parent: 2,
                name: "trial",
                cat: "engine",
                tid: 3,
                job: Some(7),
                start_us: 100,
                dur_us: 42,
                args: vec![("cell", FieldValue::U64(1))],
            }),
            TraceRecord::Counter(CounterRecord {
                name: "worker_utilization",
                tid: 3,
                job: None,
                ts_us: 150,
                series: vec![("busy_us", 40.0)],
            }),
        ];
        let doc = trace_to_json(&records);
        let arr = doc.as_arr().expect("array");
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(arr[0].get("ts_us").and_then(Json::as_u64), Some(100));
        assert_eq!(arr[0].get("dur_us").and_then(Json::as_u64), Some(42));
        assert_eq!(arr[0].get("job").and_then(Json::as_u64), Some(7));
        let args = arr[0].get("args").expect("args");
        assert_eq!(args.get("cell").and_then(Json::as_u64), Some(1));
        assert_eq!(arr[1].get("ph").and_then(Json::as_str), Some("C"));
        assert!(arr[1].get("job").is_none(), "untagged counter omits job");
        let series = arr[1].get("series").expect("series");
        assert_eq!(series.get("busy_us").and_then(Json::as_f64), Some(40.0));
        // The document survives the canonical encoder round trip.
        assert!(Json::parse(&doc.to_string()).is_ok());
    }

    #[test]
    fn alert_statuses_encode_state_and_counters() {
        let statuses = [sfi_obs::AlertStatus {
            rule: "scheduler_queue_saturated".into(),
            family: "sfi_sched_queue_depth".into(),
            kind: "gauge_above",
            threshold: 8.0,
            value: 11.0,
            firing: true,
            since_us: Some(1_000_000),
            fired_total: 2,
            resolved_total: 1,
        }];
        let doc = alerts_to_json(&statuses);
        let status = &doc.as_arr().expect("array")[0];
        assert_eq!(status.get("firing").and_then(Json::as_bool), Some(true));
        assert_eq!(
            status.get("since_us").and_then(Json::as_u64),
            Some(1_000_000)
        );
        assert_eq!(status.get("fired_total").and_then(Json::as_u64), Some(2));
        assert_eq!(
            status.get("kind").and_then(Json::as_str),
            Some("gauge_above")
        );
    }

    fn http_get(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(request.as_bytes()).expect("writes");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("reads");
        response
    }

    #[test]
    fn listener_routes_healthz_trace_and_rejections() {
        let listener = PrometheusListener::start("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr();

        let health = http_get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        let body = health.split("\r\n\r\n").nth(1).expect("has body");
        let doc = Json::parse(body.trim()).expect("healthz is JSON");
        // The drain gauge is process-global and other tests may flip it,
        // so assert the status/draining members agree rather than pin one.
        let draining = doc.get("draining").and_then(Json::as_bool).expect("bool");
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some(if draining { "draining" } else { "ok" })
        );
        assert!(doc.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(doc.get("queued_jobs").is_some());
        assert!(doc.get("running_jobs").is_some());

        let trace = http_get(addr, "GET /trace HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(trace.starts_with("HTTP/1.1 200 OK\r\n"), "{trace}");
        let body = trace.split("\r\n\r\n").nth(1).expect("has body");
        assert!(Json::parse(body).expect("trace is JSON").as_arr().is_some());

        let alerts = http_get(addr, "GET /alerts HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(alerts.starts_with("HTTP/1.1 200 OK\r\n"), "{alerts}");
        let body = alerts.split("\r\n\r\n").nth(1).expect("has body");
        assert!(Json::parse(body.trim())
            .expect("alerts is JSON")
            .as_arr()
            .is_some());

        let missing = http_get(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            missing.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{missing}"
        );

        let posted = http_get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            posted.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{posted}"
        );
    }

    #[test]
    fn prometheus_listener_serves_a_wellformed_scrape() {
        sfi_obs::metrics().trials.inc();
        let listener = PrometheusListener::start("127.0.0.1:0").expect("binds");
        let mut stream = TcpStream::connect(listener.local_addr()).expect("connects");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("writes");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("reads");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains(sfi_obs::prometheus::CONTENT_TYPE));
        let body = response.split("\r\n\r\n").nth(1).expect("has body");
        assert!(body.contains("# TYPE sfi_trials_total counter"), "{body}");
        assert!(body.contains("sfi_trials_total "), "{body}");
    }
}
