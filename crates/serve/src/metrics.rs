//! The daemon's observability surface: JSON encodings of registry
//! snapshots and event rings for the `metrics`/`events` wire frames, and
//! the optional Prometheus text-exposition listener (`--metrics-addr`).
//!
//! The wire encoding follows the workspace JSON conventions: 64-bit
//! integers travel as decimal strings (JSON numbers are doubles and lose
//! precision past 2^53 — counters of simulated cycles get there), and
//! non-finite histogram bounds are spelled out (`"+Inf"`) because the
//! canonical encoder maps non-finite floats to `null`.

use sfi_core::json::Json;
use sfi_obs::{Event, FieldValue, Sample, SampleValue, Snapshot};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Formats a histogram upper bound the way Prometheus spells `le` labels.
fn le_string(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".into()
    } else {
        format!("{bound}")
    }
}

fn sample_to_json(sample: &Sample) -> Json {
    let labels = Json::obj(
        sample
            .labels
            .iter()
            .map(|(name, value)| (*name, Json::Str(value.clone())))
            .collect::<Vec<_>>(),
    );
    let value = match &sample.value {
        SampleValue::Counter(v) => Json::Str(v.to_string()),
        SampleValue::Gauge(v) => Json::Num(*v as f64),
        SampleValue::Histogram(h) => Json::obj([
            (
                "buckets",
                Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(le, count)| {
                            Json::obj([
                                ("le", Json::Str(le_string(le))),
                                ("count", Json::Str(count.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sum", Json::Num(h.sum)),
            ("count", Json::Str(h.count.to_string())),
        ]),
    };
    Json::obj([("labels", labels), ("value", value)])
}

/// Encodes a registry snapshot as the `metrics` frame's `snapshot` member:
/// `{"families": [{"name", "help", "kind", "samples": [...]}]}`.
pub fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    Json::obj([(
        "families",
        Json::Arr(
            snapshot
                .families
                .iter()
                .map(|family| {
                    Json::obj([
                        ("name", Json::Str(family.name.into())),
                        ("help", Json::Str(family.help.into())),
                        ("kind", Json::Str(family.kind.as_str().into())),
                        (
                            "samples",
                            Json::Arr(family.samples.iter().map(sample_to_json).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Encodes one structured event: timestamp, kind, optional job/cell span
/// ids, and the free-form fields.
pub fn event_to_json(event: &Event) -> Json {
    let mut pairs = vec![
        ("ts_us", Json::Str(event.ts_us.to_string())),
        ("kind", Json::Str(event.kind.into())),
    ];
    if let Some(job) = event.job {
        pairs.push(("job", Json::Str(job.to_string())));
    }
    if let Some(cell) = event.cell {
        pairs.push(("cell", Json::Str(cell.to_string())));
    }
    pairs.push((
        "fields",
        Json::obj(
            event
                .fields
                .iter()
                .map(|(name, value)| {
                    let encoded = match value {
                        FieldValue::U64(v) => Json::Str(v.to_string()),
                        FieldValue::F64(v) => Json::Num(*v),
                        FieldValue::Str(v) => Json::Str(v.clone()),
                    };
                    (*name, encoded)
                })
                .collect::<Vec<_>>(),
        ),
    ));
    Json::obj(pairs)
}

/// Encodes a batch of events (oldest first) as the `events` frame's
/// `events` member.
pub fn events_to_json(events: &[Event]) -> Json {
    Json::Arr(events.iter().map(event_to_json).collect())
}

/// A minimal HTTP/1.x listener serving the Prometheus text exposition of
/// the global registry on every request.
///
/// One thread, one connection at a time: scrapes are a few kilobytes every
/// few seconds, and the snapshot itself is lock-free, so there is nothing
/// to parallelize.  Dropping the listener stops the thread.
pub struct PrometheusListener {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PrometheusListener {
    /// Binds `addr` (port 0 for ephemeral) and starts serving scrapes.
    pub fn start(addr: &str) -> io::Result<PrometheusListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let handle = {
            let stopping = stopping.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = serve_scrape(stream);
                }
            })
        };
        Ok(PrometheusListener {
            addr,
            stopping,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for PrometheusListener {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Answers one scrape: drains the request head, renders the registry.
fn serve_scrape(stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Consume the request line and headers up to the blank line; the
    // method and path are irrelevant — every request gets the metrics.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let body = sfi_obs::prometheus::render(&sfi_obs::metrics().snapshot());
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        sfi_obs::prometheus::CONTENT_TYPE,
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn snapshot_encodes_counters_as_decimal_strings() {
        sfi_obs::metrics().trials.inc();
        let doc = snapshot_to_json(&sfi_obs::metrics().snapshot());
        let families = doc.get("families").and_then(Json::as_arr).expect("array");
        let trials = families
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some("sfi_trials_total"))
            .expect("sfi_trials_total present");
        assert_eq!(trials.get("kind").and_then(Json::as_str), Some("counter"));
        let samples = trials.get("samples").and_then(Json::as_arr).expect("array");
        let value = samples[0].get("value").expect("value");
        let count: u64 = value.as_str().expect("string").parse().expect("decimal");
        assert!(count >= 1);
    }

    #[test]
    fn histogram_bounds_spell_infinity() {
        sfi_obs::metrics().job_wait_seconds.observe(0.002);
        let doc = snapshot_to_json(&sfi_obs::metrics().snapshot());
        let text = doc.to_string();
        assert!(text.contains("\"+Inf\""), "{text}");
        // The canonical encoder must never see a non-finite number.
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn events_encode_span_ids_and_fields() {
        let event = Event::new("unit_test").job(7).cell(3).field("bytes", 42u64);
        let doc = event_to_json(&event);
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("unit_test"));
        assert_eq!(doc.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("cell").and_then(Json::as_u64), Some(3));
        let fields = doc.get("fields").expect("fields");
        assert_eq!(fields.get("bytes").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn prometheus_listener_serves_a_wellformed_scrape() {
        sfi_obs::metrics().trials.inc();
        let listener = PrometheusListener::start("127.0.0.1:0").expect("binds");
        let mut stream = TcpStream::connect(listener.local_addr()).expect("connects");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("writes");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("reads");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains(sfi_obs::prometheus::CONTENT_TYPE));
        let body = response.split("\r\n\r\n").nth(1).expect("has body");
        assert!(body.contains("# TYPE sfi_trials_total counter"), "{body}");
        assert!(body.contains("sfi_trials_total "), "{body}");
    }
}
