//! Never-panics fuzzing of the static analyzer.
//!
//! `sfi_verify::verify` sits on the untrusted-submission path: whatever a
//! client manages to get past wire decoding must produce diagnostics, never
//! a panic or an arithmetic overflow (these tests run with debug
//! assertions, so overflow would abort the test). Hostile shapes covered:
//! empty programs, self-branches, branch offsets at the 26-bit extremes,
//! out-of-bounds memory offsets, degenerate `dmem`/`fi_window` configs,
//! and arbitrary word streams filtered through `decode`.

use proptest::prelude::*;
use sfi_isa::{Instruction, Program, Reg};
use sfi_verify::{verify, Rule, VerifyConfig};

/// Runs `verify` under a spread of benign and degenerate configs.
fn verify_all_configs(program: &Program) {
    let len = program.len() as u32;
    let configs = [
        VerifyConfig::new(0),
        VerifyConfig::new(1),
        VerifyConfig::new(64),
        VerifyConfig::new(usize::MAX / 8),
        VerifyConfig::new(64).with_fi_window(0..len.max(1)),
        VerifyConfig::new(64).with_fi_window(len..len + 10),
        #[allow(clippy::reversed_empty_ranges)]
        VerifyConfig::new(64).with_fi_window(7..2),
        VerifyConfig::new(64).with_fi_window(0..u32::MAX),
    ];
    for config in &configs {
        let report = verify(program, config);
        // Sanity: counters are consistent, not just "did not panic".
        assert!(report.reachable_blocks <= report.blocks);
        assert!(report.reachable_instructions <= report.instructions);
        assert_eq!(report.instructions, program.len());
    }
}

#[test]
fn empty_program_yields_v009_and_no_panic() {
    let program = Program::new(vec![]);
    let report = verify(&program, &VerifyConfig::new(0));
    assert_eq!(report.findings(Rule::V009).count(), 1);
    verify_all_configs(&program);
}

#[test]
fn self_branches_and_tight_loops() {
    let hostile = [
        vec![Instruction::J { offset: -1 }],
        vec![Instruction::Bf { offset: -1 }],
        vec![Instruction::Bnf { offset: -1 }],
        vec![Instruction::Jal { offset: -1 }],
        vec![Instruction::J { offset: 0 }, Instruction::J { offset: -2 }],
    ];
    for instructions in hostile {
        let program = Program::new(instructions);
        let report = verify(&program, &VerifyConfig::new(64));
        assert!(
            report.has_loops || !report.diagnostics.is_empty(),
            "a self-loop must be visible in the report: {report:?}"
        );
        verify_all_configs(&program);
    }
    // `l.jr` targets are dynamic: the analyzer treats them conservatively
    // (no loop claim), but must still not panic on a lone register jump.
    verify_all_configs(&Program::new(vec![Instruction::Jr { ra: Reg(0) }]));
}

#[test]
fn branch_offsets_at_the_26_bit_extremes_are_diagnosed() {
    const MAX26: i32 = (1 << 25) - 1;
    const MIN26: i32 = -(1 << 25);
    for offset in [MAX26, MIN26, MAX26 - 1, MIN26 + 1] {
        let program = Program::new(vec![
            Instruction::Sfeq {
                ra: Reg(0),
                rb: Reg(0),
            },
            Instruction::Bf { offset },
            Instruction::Nop,
        ]);
        let report = verify(&program, &VerifyConfig::new(64));
        assert!(
            report.findings(Rule::V001).count() >= 1,
            "offset {offset} must be flagged as dangling"
        );
        verify_all_configs(&program);
    }
}

#[test]
fn oversized_memory_offsets_are_diagnosed_not_fatal() {
    let program = Program::new(vec![
        Instruction::Sw {
            ra: Reg(0),
            rb: Reg(0),
            offset: i16::MAX,
        },
        Instruction::Sw {
            ra: Reg(0),
            rb: Reg(0),
            offset: i16::MIN,
        },
        Instruction::Lwz {
            rd: Reg(1),
            ra: Reg(0),
            offset: i16::MIN,
        },
    ]);
    let report = verify(&program, &VerifyConfig::new(1));
    assert!(report.has_errors(), "out-of-bounds accesses must error");
    verify_all_configs(&program);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Arbitrary word streams: whatever survives `decode` must verify
    /// without panicking under every config.
    #[test]
    fn decoded_word_streams_never_panic_the_verifier(
        words in prop::collection::vec(any::<u32>(), 0..48)
    ) {
        let instructions: Vec<Instruction> =
            words.iter().filter_map(|&w| sfi_isa::decode(w).ok()).collect();
        verify_all_configs(&Program::new(instructions));
    }

    /// Valid-by-construction control-flow soup: branches with arbitrary
    /// in-range offsets pointing anywhere (including outside the program).
    #[test]
    fn control_flow_soup_never_panics(
        offsets in prop::collection::vec(-(1i32 << 25)..(1i32 << 25), 1..24),
        flavors in prop::collection::vec(0u8..4, 1..24),
    ) {
        let instructions: Vec<Instruction> = offsets
            .iter()
            .zip(flavors.iter().chain(std::iter::repeat(&0)))
            .map(|(&offset, &flavor)| match flavor {
                0 => Instruction::Bf { offset },
                1 => Instruction::Bnf { offset },
                2 => Instruction::J { offset },
                _ => Instruction::Jal { offset },
            })
            .collect();
        verify_all_configs(&Program::new(instructions));
    }
}
