//! Every built-in benchmark kernel must verify completely clean — zero
//! errors *and* zero warnings. This is the same bar CI enforces through
//! `sfi-lint`, expressed as a test so it fails close to the offending
//! kernel change.

use sfi_verify::{verify, VerifyConfig};

#[test]
fn all_builtin_kernels_verify_clean() {
    let suite = sfi_kernels::extended_suite(3);
    assert!(suite.len() >= 9, "expected the full workload zoo");
    for bench in &suite {
        let config = VerifyConfig::new(bench.dmem_words()).with_fi_window(bench.fi_window());
        let report = verify(bench.program(), &config);
        let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(
            report.is_clean(),
            "kernel `{}` has findings:\n{}",
            bench.name(),
            rendered.join("\n")
        );
        assert!(report.reachable_instructions > 0);
        assert!(report.mix.total() == report.reachable_instructions);
    }
}

#[test]
fn builtin_kernels_report_sensible_statistics() {
    for bench in sfi_kernels::extended_suite(3) {
        let config = VerifyConfig::new(bench.dmem_words()).with_fi_window(bench.fi_window());
        let report = verify(bench.program(), &config);
        // Every kernel iterates, so the watchdog estimate must defer to the
        // dynamic budget, and the mix must contain both compute and control.
        assert!(report.has_loops, "kernel `{}` should loop", bench.name());
        assert_eq!(report.max_straightline_cycles, None);
        assert!(report.mix.compute_fraction() > 0.0);
        assert!(report.mix.control_fraction() > 0.0);
        assert!(report.reachable_blocks >= 2);
    }
}
