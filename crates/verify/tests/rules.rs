//! One minimal bad program per analyzer rule, asserting the stable rule
//! code, severity and pc span of each finding.

use sfi_isa::{Instruction, Program, ProgramBuilder, Reg};
use sfi_verify::{verify, Diagnostic, Rule, Severity, Span, VerifyConfig};

fn config() -> VerifyConfig {
    VerifyConfig::new(64)
}

fn sole_finding(report: &sfi_verify::Report, rule: Rule) -> Diagnostic {
    let matching: Vec<_> = report.findings(rule).cloned().collect();
    assert_eq!(
        matching.len(),
        1,
        "expected exactly one {rule} finding, got: {:?}",
        report.diagnostics
    );
    matching[0].clone()
}

/// A well-formed epilogue: set a register and fall off the end normally.
fn set_flag() -> Instruction {
    Instruction::Sfeq {
        ra: Reg(0),
        rb: Reg(0),
    }
}

#[test]
fn v001_dangling_branch_target() {
    let program = Program::new(vec![
        set_flag(),
        Instruction::Bf { offset: 100 },
        Instruction::Nop,
    ]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V001);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.span, Span::at(1));
    assert!(report.has_errors());

    // Backward out-of-range targets are caught too.
    let program = Program::new(vec![Instruction::J { offset: -5 }]);
    let report = verify(&program, &config());
    assert_eq!(sole_finding(&report, Rule::V001).span, Span::at(0));
}

#[test]
fn v001_jump_to_exit_is_legal() {
    // target == len is the normal exit, not a dangling target.
    let program = Program::new(vec![Instruction::J { offset: 0 }]);
    let report = verify(&program, &config());
    assert!(report.is_clean(), "findings: {:?}", report.diagnostics);
}

#[test]
fn v002_fall_through_off_end_unreachable() {
    // `l.j -1` spins forever: the exit at pc == 1 is unreachable.
    let program = Program::new(vec![Instruction::J { offset: -1 }]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V002);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.span, Span::range(0, 1));
    assert!(report.has_loops);
    assert_eq!(report.max_straightline_cycles, None);
}

#[test]
fn v003_unreachable_block() {
    // The jump skips pc 1..3; that block is dead code (a warning).
    let program = Program::new(vec![
        Instruction::J { offset: 2 },
        Instruction::Addi {
            rd: Reg(3),
            ra: Reg(0),
            imm: 1,
        },
        Instruction::Nop,
        Instruction::Nop,
    ]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V003);
    assert_eq!(d.severity(), Severity::Warning);
    assert_eq!(d.span, Span::range(1, 3));
    assert!(!report.has_errors());
    assert!(!report.is_clean());
    // Dead code is excluded from the mix statistics.
    assert_eq!(report.reachable_instructions, 2);
    assert_eq!(report.mix.total(), 2);
}

#[test]
fn v004_read_of_never_written_register() {
    let program = Program::new(vec![Instruction::Add {
        rd: Reg(3),
        ra: Reg(4),
        rb: Reg(5),
    }]);
    let report = verify(&program, &config());
    let findings: Vec<_> = report.findings(Rule::V004).cloned().collect();
    assert_eq!(findings.len(), 2, "both r4 and r5 are never written");
    assert!(findings.iter().all(|d| d.severity() == Severity::Error));
    assert!(findings.iter().all(|d| d.span == Span::at(0)));
    assert!(report.findings(Rule::V005).next().is_none());
}

#[test]
fn v005_read_before_write_is_a_warning() {
    // r3 is written later, but the first read may happen before it.
    let program = Program::new(vec![
        Instruction::Addi {
            rd: Reg(4),
            ra: Reg(3),
            imm: 1,
        },
        Instruction::Addi {
            rd: Reg(3),
            ra: Reg(0),
            imm: 7,
        },
    ]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V005);
    assert_eq!(d.severity(), Severity::Warning);
    assert_eq!(d.span, Span::at(0));
    assert!(!report.has_errors());
}

#[test]
fn v005_initialized_on_every_path_is_clean() {
    // Both arms of the diamond write r3 before the join reads it.
    let mut p = ProgramBuilder::new();
    p.push(set_flag());
    let else_arm = p.forward_label();
    let join = p.forward_label();
    p.branch_if_not_flag(else_arm);
    p.push(Instruction::Addi {
        rd: Reg(3),
        ra: Reg(0),
        imm: 1,
    });
    p.jump(join);
    p.bind(else_arm);
    p.push(Instruction::Addi {
        rd: Reg(3),
        ra: Reg(0),
        imm: 2,
    });
    p.bind(join);
    p.push(Instruction::Addi {
        rd: Reg(4),
        ra: Reg(3),
        imm: 0,
    });
    let report = verify(&p.build(), &config());
    assert!(report.is_clean(), "findings: {:?}", report.diagnostics);
}

#[test]
fn v006_branch_without_flag_definition() {
    let program = Program::new(vec![Instruction::Bf { offset: 0 }, Instruction::Nop]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V006);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.span, Span::at(0));
}

#[test]
fn v006_flag_defined_on_only_one_path() {
    // Path A defines the flag, path B does not: still an error at the join.
    let mut p = ProgramBuilder::new();
    p.push(set_flag());
    let skip = p.forward_label();
    p.branch_if_flag(skip);
    p.push(Instruction::Addi {
        rd: Reg(3),
        ra: Reg(0),
        imm: 1,
    });
    p.bind(skip);
    // Re-test the flag after a join where one predecessor (the fall-through
    // arm) carried a definition and the other didn't... both carry it here
    // since l.sf* dominates; so clear the dominator by jumping over it.
    let program = p.build();
    let report = verify(&program, &config());
    assert!(report.is_clean());

    // An actual partial definition, using the call/return model of `l.jal`
    // (successors = target and fall-through) to fork without a branch:
    // the direct-call path reaches the `l.bf` with the flag undefined,
    // the fall-through path defines it first.
    let program = Program::new(vec![
        Instruction::Jal { offset: 1 }, // succs: pc 2 (target) and pc 1 (fall)
        set_flag(),                     // only the fall-through path defines the flag
        Instruction::Bf { offset: 0 },
        Instruction::Nop,
    ]);
    let report = verify(&program, &config());
    let d = sole_finding(&report, Rule::V006);
    assert_eq!(d.span, Span::at(2));
}

#[test]
fn v007_oob_constant_store() {
    // dmem is 64 words = 256 bytes; byte address 256 is one past the end.
    let mut p = ProgramBuilder::new();
    p.load_immediate(Reg(3), 256);
    p.push(Instruction::Sw {
        ra: Reg(3),
        rb: Reg(0),
        offset: 0,
    });
    let report = verify(&p.build(), &config());
    let d = sole_finding(&report, Rule::V007);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.span, Span::at(2));
    assert!(d.message.contains("outside the declared data memory"));
}

#[test]
fn v007_misaligned_constant_load() {
    let mut p = ProgramBuilder::new();
    p.push(Instruction::Addi {
        rd: Reg(3),
        ra: Reg(0),
        imm: 2,
    });
    p.push(Instruction::Lwz {
        rd: Reg(4),
        ra: Reg(3),
        offset: 0,
    });
    let report = verify(&p.build(), &config());
    let d = sole_finding(&report, Rule::V007);
    assert_eq!(d.span, Span::at(1));
    assert!(d.message.contains("not word-aligned"));
}

#[test]
fn v007_in_bounds_constant_access_is_clean() {
    let mut p = ProgramBuilder::new();
    p.load_immediate(Reg(3), 252); // last word of a 64-word dmem
    p.push(Instruction::Lwz {
        rd: Reg(4),
        ra: Reg(3),
        offset: 0,
    });
    let report = verify(&p.build(), &config());
    assert!(report.is_clean(), "findings: {:?}", report.diagnostics);
}

#[test]
fn v008_fi_window_past_end() {
    let program = Program::new(vec![Instruction::Nop, Instruction::Nop]);
    let report = verify(&program, &config().with_fi_window(0..5));
    let d = sole_finding(&report, Rule::V008);
    assert_eq!(d.severity(), Severity::Error);
    assert!(d.message.contains("past the end"));

    let report = verify(&program, &config().with_fi_window(1..1));
    assert!(sole_finding(&report, Rule::V008).message.contains("empty"));
}

#[test]
fn v008_fi_window_over_dead_code_only() {
    let program = Program::new(vec![
        Instruction::J { offset: 1 }, // skips pc 1
        Instruction::Nop,             // dead
        Instruction::Nop,
    ]);
    let report = verify(&program, &config().with_fi_window(1..2));
    let d = sole_finding(&report, Rule::V008);
    assert!(d.message.contains("no reachable instruction"));
}

#[test]
fn v009_empty_program() {
    let report = verify(&Program::default(), &config());
    let d = sole_finding(&report, Rule::V009);
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(report.instructions, 0);
}

#[test]
fn loop_free_program_gets_cycle_bound() {
    let program = Program::new(vec![
        set_flag(),
        Instruction::Bf { offset: 1 },
        Instruction::Nop,
        Instruction::Nop,
    ]);
    let report = verify(&program, &config());
    assert!(report.is_clean(), "findings: {:?}", report.diagnostics);
    assert!(!report.has_loops);
    // Longest arm is the fall-through: sfeq (1) + bf (1+2) + two nops (2) = 6.
    assert_eq!(report.max_straightline_cycles, Some(6));
}

#[test]
fn diagnostics_are_ordered_and_rendered() {
    let program = Program::new(vec![
        Instruction::Bf { offset: 100 }, // V001 + V006 at pc 0
        Instruction::Add {
            rd: Reg(3),
            ra: Reg(7),
            rb: Reg(0),
        }, // V004 at pc 1
    ]);
    let report = verify(&program, &config());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.code()).collect();
    assert_eq!(codes, ["V001", "V006", "V004"]);
    let rendered = report.diagnostics[0].to_string();
    assert!(rendered.starts_with("error [V001 dangling-branch-target] pc 0:"));
    assert_eq!(report.error_count(), 3);
    assert_eq!(report.warning_count(), 0);
}

#[test]
fn rule_metadata_is_stable() {
    assert_eq!(Rule::ALL.len(), 9);
    for (i, rule) in Rule::ALL.iter().enumerate() {
        assert_eq!(rule.code(), format!("V{:03}", i + 1));
    }
    assert_eq!(Rule::V003.severity(), Severity::Warning);
    assert_eq!(Rule::V005.severity(), Severity::Warning);
    assert_eq!(
        Rule::ALL
            .iter()
            .filter(|r| r.severity() == Severity::Error)
            .count(),
        7
    );
}

#[test]
fn call_return_idiom_verifies_clean() {
    // l.jal / l.jr r9: the callee is reachable, r9 is defined by the call,
    // and execution returns to the fall-through and exits.
    let mut p = ProgramBuilder::new();
    let sub = p.forward_label();
    p.jump_and_link(sub);
    let done = p.forward_label();
    p.jump(done);
    p.bind(sub);
    p.push(Instruction::Addi {
        rd: Reg(3),
        ra: Reg(0),
        imm: 42,
    });
    p.push(Instruction::Jr {
        ra: Instruction::LINK_REGISTER,
    });
    p.bind(done);
    let report = verify(&p.build(), &config());
    assert!(report.is_clean(), "findings: {:?}", report.diagnostics);
}
