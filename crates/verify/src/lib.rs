//! Static verification of guest programs, in the style of an eBPF verifier.
//!
//! The fault-injection statistics are conditioned on instruction class and
//! program behaviour, so every trial's validity rests on the guest
//! [`Program`] being well-formed. A malformed program discovered
//! *dynamically* burns a watchdog budget per trial and reports NaN metrics;
//! this crate discovers the same defects *statically*, once, before a
//! program reaches the scheduler, and reports them as typed diagnostics.
//!
//! The analyzer runs a fixed pass pipeline over the program:
//!
//! 1. **CFG construction** — basic blocks with `target = pc + 1 + offset`
//!    branch semantics; out-of-range targets are rejected ([`Rule::V001`]).
//! 2. **Reachability** — unreachable blocks are dead code ([`Rule::V003`]);
//!    a program whose exit (`pc == len`, the only normal termination) is
//!    unreachable can never finish ([`Rule::V002`]).
//! 3. **Register dataflow** — a forward definitely-initialized analysis.
//!    Reads of registers never written anywhere are errors ([`Rule::V004`]);
//!    reads that merely may happen before the first write are warnings
//!    ([`Rule::V005`]), because registers architecturally reset to zero.
//! 4. **Flag dataflow** — conditional branches must be dominated by a
//!    `l.sf*` flag definition on every path ([`Rule::V006`]).
//! 5. **Constant-address memory checks** — a local constant propagation
//!    resolves statically-known load/store addresses and checks them
//!    against the declared data-memory size and word alignment
//!    ([`Rule::V007`]).
//! 6. **Loop detection and watchdog estimate** — back edges mark the
//!    program as looping; loop-free programs get a conservative
//!    worst-case cycle bound (every control transfer taken, with the
//!    default branch penalty).
//! 7. **Instruction-mix statistics** — per-[`InstructionKind`] and
//!    per-[`AluClass`] counts over reachable code (the paper's Table 1
//!    compute/control weights, derived statically).
//!
//! Every diagnostic carries a [`Span`] of program counters, a
//! [`Severity`], and a stable [`Rule`] code (`V001`…) that wire clients
//! and CI can match on.
//!
//! # Never-panics contract
//!
//! [`verify`] is total: for **any** decodable program and **any**
//! [`VerifyConfig`] — empty programs, self-branches, offsets at the
//! encoding extremes, degenerate or reversed fault windows, zero-sized
//! data memories — it returns a [`Report`] and never panics or overflows.
//! It runs on the untrusted submission path, so a crash here is a
//! denial-of-service primitive; the contract is enforced by the fuzz suite
//! in `tests/fuzz_verify.rs`.
//!
//! # Example
//!
//! ```
//! use sfi_isa::{Instruction, Program, Reg};
//! use sfi_verify::{verify, Rule, VerifyConfig};
//!
//! // `l.bf` branches far outside the two-instruction program.
//! let program = Program::new(vec![
//!     Instruction::Sfeq { ra: Reg(0), rb: Reg(0) },
//!     Instruction::Bf { offset: 100 },
//! ]);
//! let report = verify(&program, &VerifyConfig::new(64));
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].rule, Rule::V001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod dataflow;

use sfi_isa::{AluClass, Instruction, InstructionKind, Program};
use std::fmt;
use std::ops::Range;

/// How serious a finding is.
///
/// Severity policy: anything that makes trial statistics meaningless or
/// lets a program escape its declared resources is an **error** (the serve
/// submission gate rejects it); stylistic or fragile-but-well-defined
/// constructs are **warnings** (CI still refuses them for the built-in
/// kernels, but submitted programs run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but well-defined behaviour.
    Warning,
    /// The program is broken; running it cannot produce meaningful trials.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of an analyzer rule.
///
/// Codes are append-only: a rule keeps its code forever so wire clients
/// and CI can match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Branch or jump target outside the program.
    V001,
    /// The program exit (`pc == len`) is unreachable from entry.
    V002,
    /// Unreachable (dead) code.
    V003,
    /// Read of a register that is never written anywhere in the program.
    V004,
    /// Read of a register that may not have been written yet on some path.
    V005,
    /// Conditional branch whose flag may be undefined on some path.
    V006,
    /// Constant-address load/store out of bounds or misaligned.
    V007,
    /// Declared fault-injection window invalid or covering no reachable code.
    V008,
    /// Empty program.
    V009,
}

impl Rule {
    /// All rules, in code order.
    pub const ALL: [Rule; 9] = [
        Rule::V001,
        Rule::V002,
        Rule::V003,
        Rule::V004,
        Rule::V005,
        Rule::V006,
        Rule::V007,
        Rule::V008,
        Rule::V009,
    ];

    /// The stable rule code, e.g. `"V001"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::V001 => "V001",
            Rule::V002 => "V002",
            Rule::V003 => "V003",
            Rule::V004 => "V004",
            Rule::V005 => "V005",
            Rule::V006 => "V006",
            Rule::V007 => "V007",
            Rule::V008 => "V008",
            Rule::V009 => "V009",
        }
    }

    /// Short human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::V001 => "dangling-branch-target",
            Rule::V002 => "exit-unreachable",
            Rule::V003 => "unreachable-code",
            Rule::V004 => "never-written-register",
            Rule::V005 => "maybe-uninitialized-read",
            Rule::V006 => "branch-without-flag",
            Rule::V007 => "oob-constant-address",
            Rule::V008 => "fi-window-invalid",
            Rule::V009 => "empty-program",
        }
    }

    /// The fixed severity of findings under this rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::V003 | Rule::V005 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A half-open range of program counters a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// First program counter covered.
    pub start: u32,
    /// One past the last program counter covered.
    pub end: u32,
}

impl Span {
    /// A span covering the single instruction at `pc`.
    pub fn at(pc: u32) -> Self {
        Span {
            start: pc,
            end: pc + 1,
        }
    }

    /// A span covering `start..end`.
    pub fn range(start: u32, end: u32) -> Self {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end <= self.start + 1 {
            write!(f, "pc {}", self.start)
        } else {
            write!(f, "pc {}..{}", self.start, self.end)
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// The program counters the finding refers to.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, span: Span, message: String) -> Self {
        Diagnostic {
            rule,
            span,
            message,
        }
    }

    /// The severity of this finding (fixed per rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity(),
            self.rule.code(),
            self.rule.name(),
            self.span,
            self.message
        )
    }
}

/// What the analyzer should verify the program against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Declared data-memory size in 32-bit words; constant addresses are
    /// checked against `dmem_words * 4` bytes.
    pub dmem_words: usize,
    /// Declared fault-injection window (instruction addresses), if any.
    pub fi_window: Option<Range<u32>>,
}

impl VerifyConfig {
    /// A configuration checking against `dmem_words` words of data memory.
    pub fn new(dmem_words: usize) -> Self {
        VerifyConfig {
            dmem_words,
            fi_window: None,
        }
    }

    /// Also checks that `fi_window` is valid and covers reachable code.
    pub fn with_fi_window(mut self, fi_window: Range<u32>) -> Self {
        self.fi_window = Some(fi_window);
        self
    }
}

/// Per-[`InstructionKind`] and per-[`AluClass`] counts over reachable code.
///
/// These are the paper's Table 1 compute/control weights, derived
/// statically instead of from an execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstructionMix {
    /// ALU (arithmetic/logic/shift/compare) instructions.
    pub alu: usize,
    /// Word loads.
    pub load: usize,
    /// Word stores.
    pub store: usize,
    /// Conditional branches.
    pub branch: usize,
    /// Unconditional jumps.
    pub jump: usize,
    /// No-ops.
    pub nop: usize,
    /// Per-ALU-class counts, indexed parallel to [`AluClass::ALL`].
    pub alu_classes: [usize; 15],
}

impl InstructionMix {
    /// Counts one instruction.
    fn record(&mut self, instruction: &Instruction) {
        match instruction.kind() {
            InstructionKind::Alu => self.alu += 1,
            InstructionKind::Load => self.load += 1,
            InstructionKind::Store => self.store += 1,
            InstructionKind::Branch => self.branch += 1,
            InstructionKind::Jump => self.jump += 1,
            InstructionKind::Nop => self.nop += 1,
        }
        if let Some(class) = instruction.alu_class() {
            let idx = AluClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("class is in ALL");
            self.alu_classes[idx] += 1;
        }
    }

    /// Total number of instructions counted.
    pub fn total(&self) -> usize {
        self.alu + self.load + self.store + self.branch + self.jump + self.nop
    }

    /// Count for one ALU class.
    pub fn class_count(&self, class: AluClass) -> usize {
        let idx = AluClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class is in ALL");
        self.alu_classes[idx]
    }

    /// Fraction of instructions doing compute work (ALU + load + store).
    pub fn compute_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.alu + self.load + self.store) as f64 / total as f64
    }

    /// Fraction of instructions doing control flow (branches + jumps).
    pub fn control_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.branch + self.jump) as f64 / total as f64
    }
}

/// The result of verifying one program.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// All findings, ordered by span start then rule code.
    pub diagnostics: Vec<Diagnostic>,
    /// Instruction-mix statistics over reachable instructions.
    pub mix: InstructionMix,
    /// Total number of instructions in the program.
    pub instructions: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of basic blocks reachable from entry.
    pub reachable_blocks: usize,
    /// Number of instructions inside reachable blocks.
    pub reachable_instructions: usize,
    /// Whether the reachable control-flow graph contains a cycle.
    pub has_loops: bool,
    /// Conservative worst-case cycle count for loop-free programs (every
    /// control transfer taken, branch penalty included); `None` when the
    /// program loops or cannot exit, in which case only the dynamic
    /// watchdog bounds execution.
    pub max_straightline_cycles: Option<u64>,
}

impl Report {
    /// Number of error-level findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-level findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Whether any error-level finding was reported.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the program verified without any finding at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings under one rule.
    pub fn findings(&self, rule: Rule) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }
}

/// Branch penalty assumed by the worst-case cycle estimate, matching the
/// simulator's default `RunConfig::branch_penalty`.
pub const BRANCH_PENALTY_CYCLES: u64 = 2;

/// Runs the full pass pipeline over `program`.
pub fn verify(program: &Program, config: &VerifyConfig) -> Report {
    let mut diagnostics = Vec::new();
    let n = program.len() as u32;

    if program.is_empty() {
        diagnostics.push(Diagnostic::new(
            Rule::V009,
            Span::range(0, 0),
            "the program contains no instructions".to_string(),
        ));
        return Report {
            diagnostics,
            mix: InstructionMix::default(),
            instructions: 0,
            blocks: 0,
            reachable_blocks: 0,
            reachable_instructions: 0,
            has_loops: false,
            max_straightline_cycles: Some(0),
        };
    }

    let cfg = cfg::build(program, &mut diagnostics);

    for block in cfg.blocks.iter().filter(|b| !b.reachable) {
        diagnostics.push(Diagnostic::new(
            Rule::V003,
            Span::range(block.start, block.end),
            format!(
                "dead code: no control-flow path from entry reaches {}",
                Span::range(block.start, block.end)
            ),
        ));
    }

    if !cfg.exit_reachable {
        diagnostics.push(Diagnostic::new(
            Rule::V002,
            Span::range(0, n),
            format!(
                "the program can never terminate normally: no reachable path \
                 falls through to pc {n} (the only normal exit)"
            ),
        ));
    }

    dataflow::check(program, &cfg, config.dmem_words, &mut diagnostics);

    if let Some(window) = &config.fi_window {
        check_fi_window(window, n, &cfg, &mut diagnostics);
    }

    let mut mix = InstructionMix::default();
    let mut reachable_instructions = 0usize;
    for block in cfg.blocks.iter().filter(|b| b.reachable) {
        for pc in block.start..block.end {
            mix.record(&program.instructions()[pc as usize]);
            reachable_instructions += 1;
        }
    }

    let max_straightline_cycles = if cfg.has_loops || !cfg.exit_reachable {
        None
    } else {
        Some(cfg::longest_path_cycles(program, &cfg))
    };

    diagnostics.sort_by_key(|d| (d.span.start, d.rule));

    Report {
        diagnostics,
        mix,
        instructions: program.len(),
        blocks: cfg.blocks.len(),
        reachable_blocks: cfg.blocks.iter().filter(|b| b.reachable).count(),
        reachable_instructions,
        has_loops: cfg.has_loops,
        max_straightline_cycles,
    }
}

fn check_fi_window(window: &Range<u32>, n: u32, cfg: &cfg::Cfg, diags: &mut Vec<Diagnostic>) {
    let span = Span::range(window.start.min(n), window.end.min(n));
    if window.start >= window.end {
        diags.push(Diagnostic::new(
            Rule::V008,
            span,
            format!(
                "fi_window {}..{} is empty; no instruction can ever be faulted",
                window.start, window.end
            ),
        ));
        return;
    }
    if window.end > n {
        diags.push(Diagnostic::new(
            Rule::V008,
            span,
            format!(
                "fi_window {}..{} extends past the end of the program ({n} instructions)",
                window.start, window.end
            ),
        ));
        return;
    }
    let covers_reachable = cfg
        .blocks
        .iter()
        .filter(|b| b.reachable)
        .any(|b| b.start < window.end && window.start < b.end);
    if !covers_reachable {
        diags.push(Diagnostic::new(
            Rule::V008,
            span,
            format!(
                "fi_window {}..{} covers no reachable instruction; every trial \
                 would be a guaranteed no-fault run",
                window.start, window.end
            ),
        ));
    }
}
