//! Forward dataflow over the CFG: definitely-initialized registers, flag
//! definedness, and a block-local constant propagation that resolves
//! statically-known load/store addresses for bounds checking.

use crate::cfg::{Cfg, EXIT};
use crate::{Diagnostic, Rule, Span};
use sfi_isa::{Instruction, Program, Reg};

/// Abstract state at one program point: a bitmask of registers that are
/// definitely written on every path from entry, plus whether the branch
/// flag is definitely defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    regs: u32,
    flag: bool,
}

impl State {
    /// The lattice top (before any path constrains the state): everything
    /// assumed initialized, so that the meet only ever removes facts.
    const TOP: State = State {
        regs: u32::MAX,
        flag: true,
    };

    /// Entry state: only the hard-wired `r0` is initialized, the flag is
    /// architecturally cleared but *treated* as undefined so programs
    /// cannot silently rely on its reset value.
    const ENTRY: State = State {
        regs: 1,
        flag: false,
    };

    fn meet(self, other: State) -> State {
        State {
            regs: self.regs & other.regs,
            flag: self.flag && other.flag,
        }
    }

    fn has(self, reg: Reg) -> bool {
        reg.is_valid() && self.regs & (1u32 << reg.0) != 0
    }

    fn define(&mut self, reg: Reg) {
        if reg.is_valid() {
            self.regs |= 1u32 << reg.0;
        }
    }
}

/// Applies one block's effect on the abstract state (definitions only;
/// reads are checked in the reporting pass).
fn transfer(program: &Program, start: u32, end: u32, mut state: State) -> State {
    for pc in start..end {
        let instr = program.instructions()[pc as usize];
        if let Some(rd) = instr.destination() {
            state.define(rd);
        }
        if instr.writes_flag() {
            state.flag = true;
        }
    }
    state
}

/// Runs the register/flag dataflow and constant-address memory checks,
/// appending [`Rule::V004`], [`Rule::V005`], [`Rule::V006`] and
/// [`Rule::V007`] findings.
pub(crate) fn check(program: &Program, cfg: &Cfg, dmem_words: usize, diags: &mut Vec<Diagnostic>) {
    let nblocks = cfg.blocks.len();

    // Union of all registers written anywhere in reachable code; reads of
    // registers outside this set can never observe a written value.
    let mut ever_written = 1u32; // r0 is hard-wired.
    for block in cfg.blocks.iter().filter(|b| b.reachable) {
        for pc in block.start..block.end {
            if let Some(rd) = program.instructions()[pc as usize].destination() {
                if rd.is_valid() {
                    ever_written |= 1u32 << rd.0;
                }
            }
        }
    }

    // Predecessor lists over the reachable subgraph.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (idx, block) in cfg.blocks.iter().enumerate().filter(|(_, b)| b.reachable) {
        for &s in &block.succs {
            if s != EXIT {
                preds[s].push(idx);
            }
        }
    }

    // Round-robin fixpoint: states only ever move down the lattice.
    let mut inputs = vec![State::TOP; nblocks];
    inputs[0] = State::ENTRY;
    loop {
        let mut changed = false;
        for idx in (0..nblocks).filter(|&i| cfg.blocks[i].reachable) {
            let mut input = if idx == 0 { State::ENTRY } else { State::TOP };
            for &p in &preds[idx] {
                let out = transfer(program, cfg.blocks[p].start, cfg.blocks[p].end, inputs[p]);
                input = input.meet(out);
            }
            if input != inputs[idx] {
                inputs[idx] = input;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass with the converged states; constant propagation is
    // block-local (registers reset to "unknown" at each block entry).
    for (idx, block) in cfg.blocks.iter().enumerate().filter(|(_, b)| b.reachable) {
        let mut state = inputs[idx];
        let mut consts: [Option<u32>; 32] = [None; 32];
        consts[0] = Some(0);
        for pc in block.start..block.end {
            let instr = program.instructions()[pc as usize];

            let [a, b] = instr.sources();
            for (slot, src) in [a, b].into_iter().enumerate() {
                let Some(src) = src else { continue };
                if src.is_zero() || !src.is_valid() {
                    continue;
                }
                if slot == 1 && a == Some(src) {
                    continue; // same register in both operand slots
                }
                if !state.has(src) {
                    if ever_written & (1u32 << src.0) == 0 {
                        diags.push(Diagnostic::new(
                            Rule::V004,
                            Span::at(pc),
                            format!(
                                "`{instr}` at pc {pc} reads {src}, which is never \
                                 written anywhere in the program"
                            ),
                        ));
                    } else {
                        diags.push(Diagnostic::new(
                            Rule::V005,
                            Span::at(pc),
                            format!(
                                "`{instr}` at pc {pc} may read {src} before it is \
                                 first written (registers reset to 0, but relying \
                                 on that is fragile)"
                            ),
                        ));
                    }
                }
            }

            if instr.reads_flag() && !state.flag {
                diags.push(Diagnostic::new(
                    Rule::V006,
                    Span::at(pc),
                    format!(
                        "`{instr}` at pc {pc} tests the branch flag, but no `l.sf*` \
                         defines it on every path from entry"
                    ),
                ));
            }

            check_memory_access(instr, pc, &consts, dmem_words, diags);
            step_consts(instr, pc, &mut consts);

            if let Some(rd) = instr.destination() {
                state.define(rd);
            }
            if instr.writes_flag() {
                state.flag = true;
            }
        }
    }
}

/// Reports [`Rule::V007`] when a load/store address is statically known
/// and escapes the declared data memory or is misaligned.
fn check_memory_access(
    instr: Instruction,
    pc: u32,
    consts: &[Option<u32>; 32],
    dmem_words: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let (ra, offset) = match instr {
        Instruction::Lwz { ra, offset, .. } | Instruction::Sw { ra, offset, .. } => (ra, offset),
        _ => return,
    };
    let Some(base) = reg_const(consts, ra) else {
        return;
    };
    let addr = base.wrapping_add(offset as i32 as u32);
    if addr % 4 != 0 {
        diags.push(Diagnostic::new(
            Rule::V007,
            Span::at(pc),
            format!(
                "`{instr}` at pc {pc} accesses byte address {addr}, which is not \
                 word-aligned"
            ),
        ));
    } else if (addr / 4) as usize >= dmem_words {
        diags.push(Diagnostic::new(
            Rule::V007,
            Span::at(pc),
            format!(
                "`{instr}` at pc {pc} accesses byte address {addr}, outside the \
                 declared data memory ({dmem_words} words = {} bytes)",
                dmem_words * 4
            ),
        ));
    }
}

fn reg_const(consts: &[Option<u32>; 32], reg: Reg) -> Option<u32> {
    if reg.is_valid() {
        consts[reg.0 as usize]
    } else {
        None
    }
}

fn set_const(consts: &mut [Option<u32>; 32], reg: Reg, value: Option<u32>) {
    // Writes to r0 are architecturally ignored; it stays constant zero.
    if reg.is_valid() && !reg.is_zero() {
        consts[reg.0 as usize] = value;
    }
}

/// Evaluates one instruction over the block-local constant lattice.
fn step_consts(instr: Instruction, pc: u32, consts: &mut [Option<u32>; 32]) {
    use Instruction::*;
    let bin = |consts: &[Option<u32>; 32], ra: Reg, rb: Reg, f: fn(u32, u32) -> u32| {
        Some(f(reg_const(consts, ra)?, reg_const(consts, rb)?))
    };
    let un = |consts: &[Option<u32>; 32], ra: Reg, f: &dyn Fn(u32) -> u32| {
        Some(f(reg_const(consts, ra)?))
    };
    match instr {
        Add { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, u32::wrapping_add)),
        Sub { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, u32::wrapping_sub)),
        And { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, |a, b| a & b)),
        Or { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, |a, b| a | b)),
        Xor { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, |a, b| a ^ b)),
        Mul { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, u32::wrapping_mul)),
        Sll { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, |a, b| a << (b % 32))),
        Srl { rd, ra, rb } => set_const(consts, rd, bin(consts, ra, rb, |a, b| a >> (b % 32))),
        Sra { rd, ra, rb } => set_const(
            consts,
            rd,
            bin(consts, ra, rb, |a, b| ((a as i32) >> (b % 32)) as u32),
        ),
        Addi { rd, ra, imm } => set_const(
            consts,
            rd,
            un(consts, ra, &|a| a.wrapping_add(imm as i32 as u32)),
        ),
        Andi { rd, ra, imm } => set_const(consts, rd, un(consts, ra, &|a| a & u32::from(imm))),
        Ori { rd, ra, imm } => set_const(consts, rd, un(consts, ra, &|a| a | u32::from(imm))),
        Xori { rd, ra, imm } => set_const(consts, rd, un(consts, ra, &|a| a ^ u32::from(imm))),
        Muli { rd, ra, imm } => set_const(
            consts,
            rd,
            un(consts, ra, &|a| a.wrapping_mul(imm as i32 as u32)),
        ),
        Slli { rd, ra, shamt } => set_const(
            consts,
            rd,
            un(consts, ra, &|a| a.wrapping_shl(u32::from(shamt))),
        ),
        Srli { rd, ra, shamt } => set_const(
            consts,
            rd,
            un(consts, ra, &|a| a.wrapping_shr(u32::from(shamt))),
        ),
        Srai { rd, ra, shamt } => set_const(
            consts,
            rd,
            un(consts, ra, &|a| ((a as i32) >> (shamt % 32)) as u32),
        ),
        Movhi { rd, imm } => set_const(consts, rd, Some(u32::from(imm) << 16)),
        Lwz { rd, .. } => set_const(consts, rd, None),
        // The link register holds the return address in instruction words.
        Jal { .. } => set_const(consts, Instruction::LINK_REGISTER, Some(pc + 1)),
        Sfeq { .. }
        | Sfne { .. }
        | Sfltu { .. }
        | Sfgeu { .. }
        | Sfgtu { .. }
        | Sfleu { .. }
        | Sflts { .. }
        | Sfges { .. }
        | Sfgts { .. }
        | Sfles { .. }
        | Sw { .. }
        | Bf { .. }
        | Bnf { .. }
        | J { .. }
        | Jr { .. }
        | Nop => {}
    }
}
