//! Basic-block control-flow graph construction, reachability, loop
//! detection and the worst-case cycle bound for loop-free programs.

use crate::{Diagnostic, Rule, Span, BRANCH_PENALTY_CYCLES};
use sfi_isa::{Instruction, InstructionKind, Program};

/// Sentinel successor index for the program exit (`pc == len`).
pub(crate) const EXIT: usize = usize::MAX;

/// A maximal straight-line run of instructions.
#[derive(Debug)]
pub(crate) struct Block {
    /// First program counter of the block.
    pub start: u32,
    /// One past the last program counter of the block.
    pub end: u32,
    /// Successor block indices ([`EXIT`] for the program exit).
    pub succs: Vec<usize>,
    /// Whether the block is reachable from entry.
    pub reachable: bool,
}

/// The control-flow graph of one program.
#[derive(Debug)]
pub(crate) struct Cfg {
    /// Blocks in address order (block 0 is the entry).
    pub blocks: Vec<Block>,
    /// Whether any reachable block has an exit edge.
    pub exit_reachable: bool,
    /// Whether the reachable subgraph contains a cycle.
    pub has_loops: bool,
}

impl Cfg {
    /// Index of the block starting at `pc` (which must be a leader).
    fn block_at(&self, pc: u32) -> usize {
        self.blocks
            .binary_search_by_key(&pc, |b| b.start)
            .expect("edge targets are block leaders")
    }
}

/// Builds the CFG, recording out-of-range targets as [`Rule::V001`].
///
/// Modelling choices for the two dynamic control instructions:
/// `l.jal` is treated as a call — both its target and its fall-through
/// (the return point) are successors; `l.jr` is treated as a return — its
/// only successor is the program exit. This matches the call/return idiom
/// the ISA supports (`l.jal` writes `r9`, `l.jr r9` returns) and keeps the
/// definitely-initialized analysis sound for it: the callee can only add
/// register definitions, never remove them.
pub(crate) fn build(program: &Program, diags: &mut Vec<Diagnostic>) -> Cfg {
    let instrs = program.instructions();
    let n = instrs.len();

    // Pass 1: leaders. Every branch/jump target and every instruction
    // after a control transfer starts a block; so does the entry.
    let mut leader = vec![false; n];
    leader[0] = true;
    for (pc, instr) in instrs.iter().enumerate() {
        if let Some(offset) = instr.relative_offset() {
            let target = pc as i64 + 1 + i64::from(offset);
            if (0..n as i64).contains(&target) {
                leader[target as usize] = true;
            } else if target != n as i64 {
                diags.push(Diagnostic::new(
                    Rule::V001,
                    Span::at(pc as u32),
                    format!(
                        "`{instr}` at pc {pc} targets {target}, outside the program \
                         (valid targets are 0..={n}; {n} is the exit)"
                    ),
                ));
            }
        }
        let is_control = matches!(
            instr.kind(),
            InstructionKind::Branch | InstructionKind::Jump
        );
        if is_control && pc + 1 < n {
            leader[pc + 1] = true;
        }
    }

    // Pass 2: block extents.
    let mut blocks = Vec::new();
    let mut start = 0u32;
    for (pc, &leads) in leader.iter().enumerate().skip(1) {
        if leads {
            blocks.push(Block {
                start,
                end: pc as u32,
                succs: Vec::new(),
                reachable: false,
            });
            start = pc as u32;
        }
    }
    blocks.push(Block {
        start,
        end: n as u32,
        succs: Vec::new(),
        reachable: false,
    });

    let mut cfg = Cfg {
        blocks,
        exit_reachable: false,
        has_loops: false,
    };

    // Pass 3: edges. Out-of-range targets (already diagnosed) get no edge.
    for idx in 0..cfg.blocks.len() {
        let last_pc = cfg.blocks[idx].end - 1;
        let last = instrs[last_pc as usize];
        let mut succs = Vec::new();
        let add = |succs: &mut Vec<usize>, cfg: &Cfg, target: i64| {
            if target == n as i64 {
                succs.push(EXIT);
            } else if (0..n as i64).contains(&target) {
                succs.push(cfg.block_at(target as u32));
            }
        };
        let fall = i64::from(last_pc) + 1;
        match last {
            Instruction::Bf { offset } | Instruction::Bnf { offset } => {
                add(&mut succs, &cfg, fall);
                add(&mut succs, &cfg, fall + i64::from(offset));
            }
            Instruction::J { offset } => {
                add(&mut succs, &cfg, fall + i64::from(offset));
            }
            Instruction::Jal { offset } => {
                add(&mut succs, &cfg, fall + i64::from(offset));
                add(&mut succs, &cfg, fall);
            }
            Instruction::Jr { .. } => succs.push(EXIT),
            _ => add(&mut succs, &cfg, fall),
        }
        succs.dedup();
        cfg.blocks[idx].succs = succs;
    }

    // Pass 4: reachability (iterative DFS from the entry block).
    let mut stack = vec![0usize];
    cfg.blocks[0].reachable = true;
    while let Some(idx) = stack.pop() {
        for s in cfg.blocks[idx].succs.clone() {
            if s == EXIT {
                cfg.exit_reachable = true;
            } else if !cfg.blocks[s].reachable {
                cfg.blocks[s].reachable = true;
                stack.push(s);
            }
        }
    }

    // Pass 5: back-edge detection over the reachable subgraph
    // (iterative three-color DFS).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; cfg.blocks.len()];
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = Color::Gray;
    while let Some(&(idx, next)) = stack.last() {
        if next < cfg.blocks[idx].succs.len() {
            stack.last_mut().expect("stack is non-empty").1 += 1;
            let s = cfg.blocks[idx].succs[next];
            if s == EXIT {
                continue;
            }
            match color[s] {
                Color::White => {
                    color[s] = Color::Gray;
                    stack.push((s, 0));
                }
                Color::Gray => cfg.has_loops = true,
                Color::Black => {}
            }
        } else {
            color[idx] = Color::Black;
            stack.pop();
        }
    }

    cfg
}

/// Worst-case cycle count over the (acyclic, exiting) reachable CFG:
/// longest entry→exit path where every instruction costs one cycle and
/// every control transfer additionally pays [`BRANCH_PENALTY_CYCLES`].
///
/// Only meaningful when [`Cfg::has_loops`] is false and
/// [`Cfg::exit_reachable`] is true.
pub(crate) fn longest_path_cycles(program: &Program, cfg: &Cfg) -> u64 {
    fn block_cycles(program: &Program, block: &Block) -> u64 {
        (block.start..block.end)
            .map(|pc| {
                let kind = program.instructions()[pc as usize].kind();
                match kind {
                    InstructionKind::Branch | InstructionKind::Jump => 1 + BRANCH_PENALTY_CYCLES,
                    _ => 1,
                }
            })
            .sum()
    }

    // Memoized longest path to exit per block; the graph is a DAG.
    fn longest_from(
        program: &Program,
        cfg: &Cfg,
        idx: usize,
        memo: &mut [Option<Option<u64>>],
    ) -> Option<u64> {
        if let Some(cached) = memo[idx] {
            return cached;
        }
        let own = block_cycles(program, &cfg.blocks[idx]);
        let mut best: Option<u64> = None;
        for &s in &cfg.blocks[idx].succs {
            let tail = if s == EXIT {
                Some(0)
            } else {
                longest_from(program, cfg, s, memo)
            };
            if let Some(t) = tail {
                best = Some(best.map_or(t, |b: u64| b.max(t)));
            }
        }
        // Blocks from which the exit is unreachable contribute nothing.
        let result = best.map(|b| b + own);
        memo[idx] = Some(result);
        result
    }

    let mut memo = vec![None; cfg.blocks.len()];
    longest_from(program, cfg, 0, &mut memo).unwrap_or(0)
}
